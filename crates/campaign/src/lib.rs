//! Multi-stage attack campaign engine.
//!
//! This crate closes the loop the paper argues for: it takes the
//! *textual* associations the search layer mines (CAPEC → CWE → CVE
//! exploit chains matched against model attributes) and asks the only
//! question that matters for a cyber-physical system — *what happens to
//! the plant?*
//!
//! The pipeline has two halves:
//!
//! * the **chain compiler** ([`compile_chains`]) attaches every mined
//!   [`cpssec_search::ExploitChain`] to the component whose match set
//!   produced it, pairs it with a testbed attack scenario via CWE/CAPEC
//!   provenance, and lays the model's entry-point→target shortest path
//!   down as an ordered stage plan (initial access → pivots → actuate);
//! * the **executor/scorer** ([`run_campaign`]) replays each executable
//!   plan as a staged injection on the event-driven kernel — stages gate
//!   on observed deliveries, so a firewall that denies the pivot stops
//!   the campaign cold — and scores the outcome as
//!   [`CampaignVerdict::ReachedHazard`], [`CampaignVerdict::Contained`],
//!   or [`CampaignVerdict::TextualOnly`].
//!
//! Campaigns are deterministic: per-chain seeds derive from the campaign
//! seed with SplitMix64, records come back in compile order regardless
//! of thread count, and [`records_hash`] pins the whole run to a single
//! FNV-1a value.
//!
//! # Examples
//!
//! ```
//! use cpssec_campaign::{run_campaign, verdict_counts, CampaignRun, Testbed};
//!
//! let mut run = CampaignRun::new(Testbed::Centrifuge, 42);
//! run.chain_limit = 4; // keep the doctest quick
//! let records = run_campaign(&run);
//! let (reached, contained, textual) = verdict_counts(&records);
//! assert_eq!(reached + contained + textual, records.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod execute;

pub use compile::{compile_chains, compile_chains_with, ChainPlan, Testbed};
pub use execute::{
    records_hash, run_campaign, run_campaign_with_progress, score, verdict_counts, CampaignRun,
    CampaignVerdict, ChainRecord,
};
