//! The chain compiler: matched exploit chains → ordered stage plans.
//!
//! For every component of the model, the compiler takes the exploit
//! chains mined from that component's match set and decides how — and
//! whether — each chain can be *executed* on the testbed:
//!
//! 1. the chain attaches to the component whose matches produced it;
//! 2. a testbed scenario is looked up whose `target_component` is that
//!    component and whose CWE or CAPEC provenance contains the chain's
//!    weakness or pattern (first match in library order wins);
//! 3. the stage plan is the model's shortest entry-point→component path:
//!    initial access at the entry, one pivot per intermediate component,
//!    actuation at the target.
//!
//! A chain with no matching scenario or no topological path compiles to
//! a *textual-only* plan: the association holds on paper, but nothing
//! executable follows from it — exactly the distinction the paper says
//! pure attack-vector matching cannot make.

use core::fmt;

use cpssec_attackdb::Corpus;
use cpssec_model::{Fidelity, SystemModel};
use cpssec_scada::attacks::{all_scenarios, AttackScenario};
use cpssec_scada::water::all_water_scenarios;
use cpssec_search::{exploit_chains, ExploitChain, SearchEngine};

/// Which testbed a campaign compiles against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Testbed {
    /// The particle separation centrifuge (the paper's §3 system).
    Centrifuge,
    /// The chlorine dosing loop of the water-treatment plant.
    Water,
}

impl Testbed {
    /// Every testbed, in canonical order.
    pub const ALL: [Testbed; 2] = [Testbed::Centrifuge, Testbed::Water];

    /// Canonical name — matches the built-in model ids the server and
    /// CLI use ("scada", "water").
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Testbed::Centrifuge => "scada",
            Testbed::Water => "water",
        }
    }

    /// Parses a canonical name back to a testbed.
    #[must_use]
    pub fn parse(name: &str) -> Option<Testbed> {
        Testbed::ALL.into_iter().find(|t| t.as_str() == name)
    }

    /// The testbed's system model.
    #[must_use]
    pub fn model(self) -> SystemModel {
        match self {
            Testbed::Centrifuge => cpssec_scada::model::scada_model(),
            Testbed::Water => cpssec_scada::water::water_model(),
        }
    }

    /// The testbed's attack scenario library, in lookup order.
    #[must_use]
    pub fn scenario_library(self) -> Vec<AttackScenario> {
        match self {
            Testbed::Centrifuge => all_scenarios(),
            Testbed::Water => all_water_scenarios(),
        }
    }
}

impl fmt::Display for Testbed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One compiled chain: where it attaches, what it can execute, and how
/// it gets there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPlan {
    /// The mined exploit chain.
    pub chain: ExploitChain,
    /// The component whose match set produced the chain.
    pub component: String,
    /// The scenario that executes the chain, when one applies.
    pub scenario: Option<String>,
    /// Entry-point→component path (stage plan); empty when the topology
    /// offers no route.
    pub path: Vec<String>,
}

impl ChainPlan {
    /// Whether the chain compiled to something executable: a scenario
    /// attached AND a topological route exists.
    #[must_use]
    pub fn is_executable(&self) -> bool {
        self.scenario.is_some() && !self.path.is_empty()
    }

    /// Canonical one-line form, used for byte-identity checks:
    /// `chain|component|scenario|path`.
    #[must_use]
    pub fn canonical_line(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.chain,
            self.component,
            self.scenario.as_deref().unwrap_or("-"),
            self.path.join(">"),
        )
    }
}

/// Compiles every matched chain of the model into a stage plan, in
/// deterministic order (component name, then chain order).
///
/// `limit_per_component` caps the chains mined per component (the
/// [`exploit_chains`] cap). Matching runs at implementation fidelity —
/// the level at which CVE-bearing attributes exist.
#[must_use]
pub fn compile_chains(
    model: &SystemModel,
    corpus: &Corpus,
    scenarios: &[AttackScenario],
    limit_per_component: usize,
) -> Vec<ChainPlan> {
    compile_chains_with(model, corpus, scenarios, limit_per_component, false)
}

/// [`compile_chains`] with an explicit parallelism switch for the model
/// match pass. The output is byte-identical either way ([`SearchEngine`]'s
/// parallel fan-out is order-preserving); the switch exists so campaign
/// callers on many-core hosts can use it and tests can pin the identity.
#[must_use]
pub fn compile_chains_with(
    model: &SystemModel,
    corpus: &Corpus,
    scenarios: &[AttackScenario],
    limit_per_component: usize,
    parallel: bool,
) -> Vec<ChainPlan> {
    let engine = SearchEngine::build(corpus);
    let matches = if parallel {
        engine.par_match_model(model, Fidelity::Implementation)
    } else {
        engine.match_model(model, Fidelity::Implementation)
    };
    let entry = model.entry_points().first().copied();

    let mut plans = Vec::new();
    for (component, set) in matches {
        for chain in exploit_chains(&set, corpus, limit_per_component) {
            let weakness = chain.weakness.to_string();
            let pattern = chain.pattern.to_string();
            let scenario = scenarios
                .iter()
                .find(|s| {
                    s.target_component == component
                        && (s.weakness_ids.contains(&weakness) || s.pattern_ids.contains(&pattern))
                })
                .map(|s| s.name.clone());
            let path = match (entry, model.component_id(&component)) {
                (Some(entry), Some(target)) => model
                    .shortest_path(entry, target)
                    .map(|ids| {
                        ids.iter()
                            .filter_map(|id| model.component(*id))
                            .map(|c| c.name().to_owned())
                            .collect()
                    })
                    .unwrap_or_default(),
                _ => Vec::new(),
            };
            plans.push(ChainPlan {
                chain,
                component: component.clone(),
                scenario,
                path,
            });
        }
    }
    plans.sort_by(|a, b| (&a.component, a.chain).cmp(&(&b.component, b.chain)));
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;

    #[test]
    fn testbed_names_round_trip() {
        for testbed in Testbed::ALL {
            assert_eq!(Testbed::parse(testbed.as_str()), Some(testbed));
        }
        assert_eq!(Testbed::parse("centrifuge"), None);
    }

    #[test]
    fn centrifuge_compiles_executable_and_textual_plans() {
        let testbed = Testbed::Centrifuge;
        let corpus = seed_corpus();
        let plans = compile_chains(&testbed.model(), &corpus, &testbed.scenario_library(), 100);
        assert!(!plans.is_empty());
        assert!(plans.iter().any(ChainPlan::is_executable));
        assert!(plans.iter().any(|p| !p.is_executable()));
        // The Triton-style chains on the SIS compile to the SIS-disable
        // scenario through the CWE-306 provenance.
        assert!(plans.iter().any(|p| {
            p.component == "SIS platform"
                && p.scenario.as_deref() == Some("sis-disable-command-injection")
        }));
        // Chains on the firewall match textually but nothing executes
        // there: the distinction the verdict taxonomy is built on.
        assert!(plans
            .iter()
            .filter(|p| p.component == "Control firewall")
            .all(|p| p.scenario.is_none()));
    }

    #[test]
    fn water_compiles_executable_and_textual_plans() {
        let testbed = Testbed::Water;
        let corpus = seed_corpus();
        let plans = compile_chains(&testbed.model(), &corpus, &testbed.scenario_library(), 100);
        assert!(plans.iter().any(ChainPlan::is_executable));
        assert!(plans.iter().any(|p| !p.is_executable()));
        // CWE-400 chains on the dosing PLC execute the DoS scenario.
        assert!(plans.iter().any(|p| {
            p.component == "dosing plc" && p.scenario.as_deref() == Some("dosing-dos")
        }));
    }

    #[test]
    fn executable_paths_start_at_the_entry_point() {
        for testbed in Testbed::ALL {
            let corpus = seed_corpus();
            let model = testbed.model();
            let entry = model.entry_points()[0];
            let entry_name = model.component(entry).unwrap().name();
            for plan in compile_chains(&model, &corpus, &testbed.scenario_library(), 100) {
                if plan.is_executable() {
                    assert_eq!(plan.path.first().map(String::as_str), Some(entry_name));
                    assert_eq!(
                        plan.path.last().map(String::as_str),
                        Some(plan.component.as_str())
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_compile_is_byte_identical() {
        let testbed = Testbed::Centrifuge;
        let corpus = seed_corpus();
        let library = testbed.scenario_library();
        let serial: Vec<String> =
            compile_chains_with(&testbed.model(), &corpus, &library, 50, false)
                .iter()
                .map(ChainPlan::canonical_line)
                .collect();
        let parallel: Vec<String> =
            compile_chains_with(&testbed.model(), &corpus, &library, 50, true)
                .iter()
                .map(ChainPlan::canonical_line)
                .collect();
        assert_eq!(serial, parallel);
    }
}
