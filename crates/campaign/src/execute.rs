//! The campaign executor and scorer.
//!
//! Every compiled chain runs as a staged injection on the event kernel
//! (see [`cpssec_scada::staged`]) with its own [`derive_seed`]-derived
//! sensor seed, fanned out over [`run_fleet`] so the records come back
//! in chain order and are identical at any thread count. The scorer
//! collapses each run to one of three verdicts:
//!
//! * [`CampaignVerdict::ReachedHazard`] — a hazard monitor latched;
//! * [`CampaignVerdict::Contained`] — some stage never fired (a firewall
//!   blocked the route), or every stage fired and a barrier (safety
//!   system or the process envelope itself) absorbed the actuation;
//! * [`CampaignVerdict::TextualOnly`] — the chain matched the model but
//!   compiled to nothing executable.

use core::fmt;
use std::sync::atomic::AtomicU64;

use cpssec_attackdb::seed::seed_corpus;
use cpssec_model::fnv1a_64;
use cpssec_scada::staged::{run_staged_centrifuge, run_staged_water, StagedOutcome, StagedSpec};
use cpssec_sim::run_fleet;

use crate::compile::{compile_chains_with, ChainPlan, Testbed};

/// Parameters of one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRun {
    /// The testbed to compile against and execute on.
    pub testbed: Testbed,
    /// Campaign seed; every chain's sensor seed derives from it.
    pub seed: u64,
    /// Worker threads (never affects results).
    pub threads: usize,
    /// Per-stage adversary dwell, ticks.
    pub dwell: u64,
    /// Simulation horizon per chain, ticks.
    pub max_ticks: u64,
    /// Chains mined per component.
    pub chain_limit: usize,
}

impl CampaignRun {
    /// A run over a testbed with the default dwell (200), horizon
    /// (6000), per-component chain cap (64), and one thread per core.
    #[must_use]
    pub fn new(testbed: Testbed, seed: u64) -> Self {
        CampaignRun {
            testbed,
            seed,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            dwell: 200,
            max_ticks: 6000,
            chain_limit: 64,
        }
    }
}

/// The consequence-level verdict on one chain.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CampaignVerdict {
    /// The staged campaign drove the plant into a hazard.
    ReachedHazard {
        /// The hazard monitor that latched.
        hazard: String,
        /// Ticks from the actuation stage firing to the hazard.
        time_to_hazard: u64,
    },
    /// The campaign was stopped short of a hazard.
    Contained {
        /// Index of the stage at which progress ended: the first stage
        /// that never fired, or the stage count when every stage fired
        /// but a barrier absorbed the actuation.
        blocked_at_stage: usize,
        /// What contained it: the name of the unfired stage, or
        /// `safety-instrumented-system` / `process-envelope` when all
        /// stages ran.
        barrier: String,
    },
    /// Matched the model textually; nothing executable follows.
    TextualOnly,
}

impl CampaignVerdict {
    /// The verdict kind, kebab-case.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignVerdict::ReachedHazard { .. } => "reached-hazard",
            CampaignVerdict::Contained { .. } => "contained",
            CampaignVerdict::TextualOnly => "textual-only",
        }
    }
}

impl fmt::Display for CampaignVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignVerdict::ReachedHazard {
                hazard,
                time_to_hazard,
            } => write!(f, "reached-hazard:{hazard}@{time_to_hazard}"),
            CampaignVerdict::Contained {
                blocked_at_stage,
                barrier,
            } => write!(f, "contained:{barrier}@{blocked_at_stage}"),
            CampaignVerdict::TextualOnly => f.write_str("textual-only"),
        }
    }
}

/// The outcome of one chain — everything the report layer needs, and
/// nothing scheduling-dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainRecord {
    /// Chain index within the campaign (compile order).
    pub index: u64,
    /// The derived per-chain seed.
    pub seed: u64,
    /// The chain, in `CVE -> CWE -> CAPEC` display form.
    pub chain: String,
    /// The component the chain attached to.
    pub component: String,
    /// The scenario that executed it, when one applied.
    pub scenario: Option<String>,
    /// Stage names of the plan (empty for textual-only chains).
    pub stages: Vec<String>,
    /// The consequence verdict.
    pub verdict: CampaignVerdict,
}

impl ChainRecord {
    /// Canonical record line; the campaign hash is computed over these.
    #[must_use]
    pub fn record_line(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.index,
            self.seed,
            self.chain,
            self.component,
            self.scenario.as_deref().unwrap_or("-"),
            self.stages.len(),
            self.verdict,
        )
    }
}

/// FNV-1a hash over all canonical record lines — the campaign identity
/// pinned by tests and CI at multiple thread counts.
#[must_use]
pub fn records_hash(records: &[ChainRecord]) -> u64 {
    let mut text = String::new();
    for record in records {
        text.push_str(&record.record_line());
        text.push('\n');
    }
    fnv1a_64(text.as_bytes())
}

/// Counts records per verdict kind: `(reached, contained, textual)`.
#[must_use]
pub fn verdict_counts(records: &[ChainRecord]) -> (usize, usize, usize) {
    let mut reached = 0;
    let mut contained = 0;
    let mut textual = 0;
    for record in records {
        match record.verdict {
            CampaignVerdict::ReachedHazard { .. } => reached += 1,
            CampaignVerdict::Contained { .. } => contained += 1,
            CampaignVerdict::TextualOnly => textual += 1,
        }
    }
    (reached, contained, textual)
}

/// Scores one staged outcome into a verdict.
#[must_use]
pub fn score(outcome: &StagedOutcome) -> CampaignVerdict {
    if outcome.reached_hazard() {
        let hazard = outcome
            .hazard
            .as_ref()
            .map(|h| h.hazard.clone())
            .unwrap_or_default();
        CampaignVerdict::ReachedHazard {
            hazard,
            time_to_hazard: outcome.time_to_hazard().unwrap_or(0),
        }
    } else if let Some(blocked) = outcome.first_blocked() {
        CampaignVerdict::Contained {
            blocked_at_stage: blocked,
            barrier: outcome
                .stages
                .get(blocked)
                .cloned()
                .unwrap_or_else(|| "unknown-stage".to_owned()),
        }
    } else {
        CampaignVerdict::Contained {
            blocked_at_stage: outcome.stages.len(),
            barrier: if outcome.emergency_stopped {
                "safety-instrumented-system".to_owned()
            } else {
                "process-envelope".to_owned()
            },
        }
    }
}

fn execute_plan(run: &CampaignRun, plan: &ChainPlan, index: u64, seed: u64) -> ChainRecord {
    let base = ChainRecord {
        index,
        seed,
        chain: plan.chain.to_string(),
        component: plan.component.clone(),
        scenario: plan.scenario.clone(),
        stages: Vec::new(),
        verdict: CampaignVerdict::TextualOnly,
    };
    if !plan.is_executable() {
        return base;
    }
    let library = run.testbed.scenario_library();
    let Some(attack) = library
        .iter()
        .find(|s| Some(&s.name) == plan.scenario.as_ref())
    else {
        return base;
    };
    let spec = StagedSpec::new(plan.path.clone())
        .with_dwell(run.dwell)
        .with_max_ticks(run.max_ticks)
        .with_sensor_seed(seed);
    let outcome = match run.testbed {
        Testbed::Centrifuge => run_staged_centrifuge(attack, &spec),
        Testbed::Water => run_staged_water(attack, &spec),
    };
    ChainRecord {
        stages: outcome.stages.clone(),
        verdict: score(&outcome),
        ..base
    }
}

/// Compiles and runs the whole campaign; records come back in chain
/// order and are identical at any thread count.
#[must_use]
pub fn run_campaign(run: &CampaignRun) -> Vec<ChainRecord> {
    run_campaign_with_progress(run, None)
}

/// [`run_campaign`] with an optional live progress counter, incremented
/// once per completed chain (poll it from another thread).
#[must_use]
pub fn run_campaign_with_progress(
    run: &CampaignRun,
    progress: Option<&AtomicU64>,
) -> Vec<ChainRecord> {
    let corpus = seed_corpus();
    let plans = compile_chains_with(
        &run.testbed.model(),
        &corpus,
        &run.testbed.scenario_library(),
        run.chain_limit,
        run.threads > 1,
    );
    run_fleet(
        plans.len() as u64,
        run.seed,
        run.threads,
        progress,
        |index, seed| execute_plan(run, &plans[index as usize], index, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(testbed: Testbed, threads: usize) -> CampaignRun {
        CampaignRun {
            threads,
            chain_limit: 8,
            ..CampaignRun::new(testbed, 0xCA3)
        }
    }

    #[test]
    fn verdict_display_is_canonical() {
        let reached = CampaignVerdict::ReachedHazard {
            hazard: "rotor-overspeed".into(),
            time_to_hazard: 103,
        };
        assert_eq!(reached.to_string(), "reached-hazard:rotor-overspeed@103");
        assert_eq!(reached.kind(), "reached-hazard");
        let contained = CampaignVerdict::Contained {
            blocked_at_stage: 3,
            barrier: "actuate:SIS platform".into(),
        };
        assert_eq!(contained.to_string(), "contained:actuate:SIS platform@3");
        assert_eq!(CampaignVerdict::TextualOnly.to_string(), "textual-only");
    }

    #[test]
    fn centrifuge_campaign_distinguishes_all_three_verdicts() {
        let records = run_campaign(&quick(Testbed::Centrifuge, 4));
        let (reached, contained, textual) = verdict_counts(&records);
        assert!(reached > 0, "{records:?}");
        assert!(contained > 0, "{records:?}");
        assert!(textual > 0, "{records:?}");
        assert_eq!(reached + contained + textual, records.len());
    }

    #[test]
    fn water_campaign_distinguishes_all_three_verdicts() {
        let records = run_campaign(&quick(Testbed::Water, 4));
        let (reached, contained, textual) = verdict_counts(&records);
        assert!(reached > 0, "{records:?}");
        assert!(contained > 0, "{records:?}");
        assert!(textual > 0, "{records:?}");
    }

    #[test]
    fn records_are_identical_at_any_thread_count() {
        let one = run_campaign(&quick(Testbed::Centrifuge, 1));
        let four = run_campaign(&quick(Testbed::Centrifuge, 4));
        assert_eq!(one, four);
        assert_eq!(records_hash(&one), records_hash(&four));
    }

    #[test]
    fn textual_only_chains_carry_no_stages() {
        let records = run_campaign(&quick(Testbed::Centrifuge, 2));
        for record in &records {
            match record.verdict {
                CampaignVerdict::TextualOnly => assert!(record.stages.is_empty()),
                _ => assert!(!record.stages.is_empty()),
            }
        }
    }
}
