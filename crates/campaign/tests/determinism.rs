//! Campaign determinism and Table-1-style verdict partitions.
//!
//! The pinned hashes here are the campaign identities CI re-checks at
//! multiple thread counts; if a deliberate change to the testbeds or
//! the compiler moves them, re-pin from `cpssec campaign <testbed>`.

use cpssec_attackdb::seed::seed_corpus;
use cpssec_campaign::{
    compile_chains_with, records_hash, run_campaign, verdict_counts, CampaignRun, ChainPlan,
    Testbed,
};
use proptest::prelude::*;

fn full_run(testbed: Testbed, threads: usize) -> CampaignRun {
    CampaignRun {
        threads,
        ..CampaignRun::new(testbed, 42)
    }
}

#[test]
fn centrifuge_verdict_partition_is_pinned() {
    let records = run_campaign(&full_run(Testbed::Centrifuge, 1));
    assert_eq!(records.len(), 47);
    assert_eq!(verdict_counts(&records), (5, 2, 40));
    assert_eq!(
        format!("{:016x}", records_hash(&records)),
        "a56a84ca63b8d320"
    );
}

#[test]
fn water_verdict_partition_is_pinned() {
    let records = run_campaign(&full_run(Testbed::Water, 1));
    assert_eq!(records.len(), 42);
    assert_eq!(verdict_counts(&records), (5, 4, 33));
    assert_eq!(
        format!("{:016x}", records_hash(&records)),
        "16c6925f7d6602de"
    );
}

#[test]
fn water_campaign_is_thread_count_invariant() {
    let one = run_campaign(&full_run(Testbed::Water, 1));
    let four = run_campaign(&full_run(Testbed::Water, 4));
    assert_eq!(one, four);
}

proptest! {
    /// Stage plans are byte-identical across repeated runs and across the
    /// serial/parallel match paths, at any per-component chain cap.
    #[test]
    fn compile_is_deterministic(limit in 1usize..40, parallel in any::<bool>()) {
        let corpus = seed_corpus();
        for testbed in Testbed::ALL {
            let model = testbed.model();
            let library = testbed.scenario_library();
            let lines = |par: bool| -> Vec<String> {
                compile_chains_with(&model, &corpus, &library, limit, par)
                    .iter()
                    .map(ChainPlan::canonical_line)
                    .collect()
            };
            let first = lines(parallel);
            prop_assert_eq!(&first, &lines(parallel), "repeat run diverged");
            prop_assert_eq!(&first, &lines(!parallel), "parallel path diverged");
        }
    }
}
