//! Intrinsic safety faults — no adversary required.
//!
//! The paper's framing: "undesired physical consequences are the primary
//! loss we mitigate against regardless of the nature of its origin
//! (intrinsic safety fault or attack)". This module provides fault
//! counterparts to the attack scenarios in [`crate::attacks`]: a stuck or
//! drifting temperature probe, and a degraded chiller. Running them through
//! the same harness shows the same hazardous plant states arising without
//! any adversary — which is exactly why the paper wants safety and
//! security analyzed in one framework.

use cpssec_sim::{BusRequest, BusResponse, Injector, Tick, UnitId};

use crate::addresses::{self, temp_sensor};

/// One intrinsic fault.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultMode {
    /// The temperature probe freezes at a fixed reading.
    StuckTemperatureProbe {
        /// The frozen reading, in 0.1 °C counts.
        value_x10: u16,
        /// When the probe sticks.
        from: Tick,
    },
    /// The probe's calibration drifts linearly (readings fall behind the
    /// real temperature).
    DriftingTemperatureProbe {
        /// Drift rate in 0.1 °C counts per tick (negative reads low).
        rate_x10_per_tick: f64,
        /// When the drift starts.
        from: Tick,
    },
    /// The chiller's physical effectiveness drops.
    ChillerDegradation {
        /// Remaining effectiveness in `[0, 1]`.
        efficiency: f64,
        /// When the degradation occurs.
        from: Tick,
    },
}

/// A named fault scenario, mirroring [`crate::AttackScenario`] minus the
/// adversary metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Short stable identifier.
    pub name: String,
    /// Prose description of the failure story.
    pub description: String,
    /// The faults to inject.
    pub faults: Vec<FaultMode>,
}

/// A probe stuck at an in-window reading — physically indistinguishable,
/// to every controller, from the sensor-spoof *attack*.
#[must_use]
pub fn stuck_temperature_probe(from: Tick) -> FaultScenario {
    FaultScenario {
        name: "stuck-temperature-probe".into(),
        description: "the probe freezes at 35.0 °C; the thermal loop and the SIS both act \
                      on the frozen value while the real temperature runs away"
            .into(),
        faults: vec![FaultMode::StuckTemperatureProbe {
            value_x10: 350,
            from,
        }],
    }
}

/// A slowly drifting probe: readings fall behind reality.
#[must_use]
pub fn drifting_temperature_probe(from: Tick, rate_x10_per_tick: f64) -> FaultScenario {
    FaultScenario {
        name: "drifting-temperature-probe".into(),
        description: "the probe's calibration drifts low; the thermal loop under-cools \
                      late, the SIS margin erodes"
            .into(),
        faults: vec![FaultMode::DriftingTemperatureProbe {
            rate_x10_per_tick,
            from,
        }],
    }
}

/// A chiller that loses most of its capacity — the fault twin of the
/// cooling denial-of-service attack.
#[must_use]
pub fn chiller_degradation(from: Tick, efficiency: f64) -> FaultScenario {
    FaultScenario {
        name: "chiller-degradation".into(),
        description: "the chiller loses capacity; commands are delivered but the physics \
                      no longer follows"
            .into(),
        faults: vec![FaultMode::ChillerDegradation { efficiency, from }],
    }
}

/// Every built-in fault scenario at its default timing.
#[must_use]
pub fn all_fault_scenarios() -> Vec<FaultScenario> {
    vec![
        stuck_temperature_probe(Tick::new(100)),
        drifting_temperature_probe(Tick::new(500), -0.05),
        chiller_degradation(Tick::new(500), 0.05),
    ]
}

/// Bus-level image of a stuck/drifting probe: rewrites temperature read
/// responses exactly like a spoofing adversary would — the physics of a
/// broken sensor and of a spoofed one are the same, which is the point.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SensorFaultInjector {
    name: String,
    dst: UnitId,
    address: u16,
    from: Tick,
    stuck_value: Option<u16>,
    drift_rate: f64,
}

impl SensorFaultInjector {
    pub(crate) fn stuck(value_x10: u16, from: Tick) -> Self {
        SensorFaultInjector {
            name: "fault:stuck-probe".into(),
            dst: addresses::TEMP_SENSOR,
            address: temp_sensor::TEMPERATURE_X10,
            from,
            stuck_value: Some(value_x10),
            drift_rate: 0.0,
        }
    }

    pub(crate) fn drifting(rate_x10_per_tick: f64, from: Tick) -> Self {
        SensorFaultInjector {
            name: "fault:drifting-probe".into(),
            dst: addresses::TEMP_SENSOR,
            address: temp_sensor::TEMPERATURE_X10,
            from,
            stuck_value: None,
            drift_rate: rate_x10_per_tick,
        }
    }
}

impl Injector for SensorFaultInjector {
    fn name(&self) -> &str {
        &self.name
    }

    fn intercept_response(&mut self, now: Tick, request: &BusRequest, response: &mut BusResponse) {
        if now < self.from
            || request.dst != self.dst
            || request.function.is_write()
            || request.address != self.address
        {
            return;
        }
        if let BusResponse::Ok(values) = response {
            for value in values.iter_mut() {
                if let Some(stuck) = self.stuck_value {
                    *value = stuck;
                } else {
                    let elapsed = (now - self.from) as f64;
                    let offset = self.drift_rate * elapsed;
                    let drifted = (f64::from(*value) + offset).clamp(0.0, f64::from(u16::MAX));
                    *value = drifted as u16;
                }
            }
        }
    }
}

/// Applies scheduled plant-level faults (equipment degradation) at their
/// tick. Registered as a bus-silent device so it shares the kernel's
/// deterministic scheduling.
#[derive(Debug)]
pub(crate) struct FaultScheduler {
    chiller_events: Vec<(Tick, f64)>,
    now: Tick,
}

impl FaultScheduler {
    pub(crate) fn new(chiller_events: Vec<(Tick, f64)>) -> Self {
        FaultScheduler {
            chiller_events,
            now: Tick::ZERO,
        }
    }
}

impl cpssec_sim::Device<crate::CentrifugePlant> for FaultScheduler {
    fn unit_id(&self) -> UnitId {
        UnitId::new(250)
    }

    fn name(&self) -> &str {
        "fault-scheduler"
    }

    fn poll(&mut self, plant: &mut crate::CentrifugePlant, _outbox: &mut cpssec_sim::Outbox) {
        self.now = self.now.next();
        for (at, efficiency) in &self.chiller_events {
            if *at == self.now {
                plant.set_chiller_efficiency(*efficiency);
            }
        }
    }

    fn handle(
        &mut self,
        _plant: &mut crate::CentrifugePlant,
        _request: &BusRequest,
    ) -> BusResponse {
        BusResponse::exception(cpssec_sim::ExceptionCode::IllegalFunction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProductQuality, ScadaConfig, ScadaHarness};

    fn run(fault: &FaultScenario, ticks: u64) -> crate::BatchReport {
        let mut harness = ScadaHarness::with_fault(ScadaConfig::default(), fault);
        harness.run_batch_for(ticks)
    }

    #[test]
    fn stuck_probe_ends_like_the_spoof_attack() {
        let fault = run(&stuck_temperature_probe(Tick::new(100)), 12_000);
        let mut spoofed = ScadaHarness::with_attack(
            ScadaConfig::default(),
            &crate::attacks::sensor_spoof(Tick::new(100)),
        );
        let attack = spoofed.run_batch_for(12_000);
        // Identical consequence: the plant cannot tell fault from attack.
        assert_eq!(fault.product, attack.product);
        assert_eq!(fault.exploded, attack.exploded);
        let fault_hazards: Vec<&str> = fault.hazards.iter().map(|h| h.hazard.as_str()).collect();
        let attack_hazards: Vec<&str> = attack.hazards.iter().map(|h| h.hazard.as_str()).collect();
        assert_eq!(fault_hazards, attack_hazards);
    }

    #[test]
    fn chiller_degradation_is_caught_by_the_sis() {
        let report = run(&chiller_degradation(Tick::new(500), 0.05), 12_000);
        assert!(report.emergency_stopped, "{report:?}");
        assert!(!report.exploded);
        assert_ne!(report.product, ProductQuality::Nominal);
    }

    #[test]
    fn drifting_probe_erodes_the_window() {
        // Readings drift low, so the loop under-cools and the real
        // temperature leaves the window high.
        let report = run(&drifting_temperature_probe(Tick::new(500), -0.05), 12_000);
        assert_ne!(report.product, ProductQuality::Nominal, "{report:?}");
        assert!(report.window_max_temperature_c > 40.0 || report.emergency_stopped);
    }

    #[test]
    fn mild_degradation_is_absorbed_by_the_loop() {
        // 80% remaining capacity: the thermal PI simply commands more.
        let report = run(&chiller_degradation(Tick::new(500), 0.8), 4_010);
        assert_eq!(report.product, ProductQuality::Nominal, "{report:?}");
        assert!(!report.emergency_stopped);
    }

    #[test]
    fn fault_scenarios_all_have_names_and_faults() {
        for scenario in all_fault_scenarios() {
            assert!(!scenario.name.is_empty());
            assert!(!scenario.faults.is_empty());
        }
    }
}
