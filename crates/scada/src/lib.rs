//! The particle separation centrifuge demonstration (§3 of the paper).
//!
//! This crate builds the paper's use case twice, from the same constants:
//!
//! * as a **running closed-loop simulation** ([`ScadaHarness`]) on top of
//!   [`cpssec_sim`] — programming workstation, control firewall, BPCS,
//!   SIS, temperature sensor, cooling unit, and the centrifuge itself,
//!   talking MODBUS-style over the fieldbus; and
//! * as a **system model** ([`model::scada_model`]) on top of
//!   [`cpssec_model`] — the Fig 1 topology with the Table 1 attributes at
//!   their appropriate fidelity levels.
//!
//! The physical envelope follows the paper: separation is highly sensitive
//! to temperature (too low → viscous product; too high → unstable solution,
//! explosion/fire), rotor speed must stay within ±20 rpm of the set point
//! for a useful product, the centrifuge reaches at most 10,000 rpm and
//! regulates to ±1 rpm.
//!
//! Attack scenarios ([`attacks`]) connect matched attack vectors (e.g.
//! CWE-78 OS command injection on the BPCS/SIS platforms, the Triton-style
//! safety-system disable) to their physical consequences.
//!
//! # Examples
//!
//! ```
//! use cpssec_scada::{ScadaConfig, ScadaHarness, ProductQuality};
//!
//! let mut harness = ScadaHarness::new(ScadaConfig::default());
//! let report = harness.run_batch();
//! assert_eq!(report.product, ProductQuality::Nominal);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addresses;
pub mod attacks;
mod bpcs;
pub mod campaign;
mod devices;
pub mod faults;
pub mod model;
mod physics;
mod sis;
pub mod staged;
mod system;
pub mod water;
mod workstation;

pub use attacks::{AttackEffect, AttackScenario};
pub use bpcs::Bpcs;
pub use campaign::{
    run_campaign, run_campaign_with_progress, run_scenario, AttackClass, CampaignSpec,
    ScenarioRecord,
};
pub use devices::{CentrifugeDrive, CoolingUnit, TemperatureSensor};
pub use faults::{FaultMode, FaultScenario};
pub use physics::CentrifugePlant;
pub use sis::Sis;
pub use staged::{run_staged_centrifuge, run_staged_water, StagedOutcome, StagedSpec};
pub use system::{BatchReport, ProductQuality, ScadaConfig, ScadaHarness};
pub use water::{
    all_water_scenarios, water_model, WaterConfig, WaterHarness, WaterPlant, WaterQuality,
    WaterReport,
};
pub use workstation::Workstation;
