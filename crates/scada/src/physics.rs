//! Centrifuge plant physics.
//!
//! A two-state lumped model calibrated to the paper's envelope:
//!
//! * **rotor speed** ω (rpm): first-order lag toward the drive command,
//!   `dω/dt = (u · ω_drive_max − ω) / τ_rotor`, with `ω_drive_max` slightly
//!   above the rated 10,000 rpm so the rated point is reachable;
//! * **solution temperature** T (°C): frictional heating growing with ω²,
//!   chiller cooling proportional to the command and the temperature lift,
//!   and slow ambient coupling:
//!   `dT/dt = q_fric (ω/ω_ref)² − q_cool u_cool (T − T_chill)/ΔT_ref +
//!   (T_amb − T)/τ_amb`.
//!
//! Above [`CentrifugePlant::EXPLOSION_TEMP`] the solution becomes unstable
//! and the plant latches `exploded` — the paper's "explosion/fire" outcome.
//! An emergency-stop latch forces the drive to zero and the chiller to full.

use cpssec_sim::Plant;

/// The physical centrifuge and solution.
#[derive(Debug, Clone, PartialEq)]
pub struct CentrifugePlant {
    speed_rpm: f64,
    temperature_c: f64,
    drive: f64,
    cooling: f64,
    chiller_efficiency: f64,
    estop: bool,
    exploded: bool,
}

impl CentrifugePlant {
    /// Rated maximum rotor speed (paper: "maximal rotational speed of
    /// 10,000 rpm").
    pub const MAX_RPM: f64 = 10_000.0;
    /// Speed the drive reaches at full command (headroom above rated).
    pub const DRIVE_MAX_RPM: f64 = 10_400.0;
    /// Rotor time constant in seconds.
    pub const ROTOR_TAU_S: f64 = 4.0;
    /// Ambient temperature in °C.
    pub const AMBIENT_C: f64 = 22.0;
    /// Chiller coolant temperature in °C.
    pub const CHILL_C: f64 = 5.0;
    /// Lower edge of the productive separation window in °C (below:
    /// "the separation will not be productive and the result is a viscous
    /// product").
    pub const WINDOW_LOW_C: f64 = 30.0;
    /// Upper edge of the productive separation window in °C.
    pub const WINDOW_HIGH_C: f64 = 40.0;
    /// Temperature at which the solution composition becomes unstable.
    pub const EXPLOSION_TEMP: f64 = 60.0;
    /// Frictional heating at rated speed, °C/s.
    const FRICTION_HEAT: f64 = 0.15;
    /// Full-command cooling rate at reference lift, °C/s.
    const COOLING_RATE: f64 = 0.5;
    /// Reference temperature lift for the cooling term, °C.
    const COOLING_REF_LIFT: f64 = 30.0;
    /// Ambient coupling time constant, seconds.
    const AMBIENT_TAU_S: f64 = 600.0;

    /// A cold, idle plant at ambient temperature.
    #[must_use]
    pub fn new() -> Self {
        CentrifugePlant {
            speed_rpm: 0.0,
            temperature_c: Self::AMBIENT_C,
            drive: 0.0,
            cooling: 0.0,
            chiller_efficiency: 1.0,
            estop: false,
            exploded: false,
        }
    }

    /// Current rotor speed in rpm.
    #[must_use]
    pub fn speed_rpm(&self) -> f64 {
        self.speed_rpm
    }

    /// Current solution temperature in °C.
    #[must_use]
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Current drive command in `[0, 1]`.
    #[must_use]
    pub fn drive(&self) -> f64 {
        self.drive
    }

    /// Current cooling command in `[0, 1]`.
    #[must_use]
    pub fn cooling(&self) -> f64 {
        self.cooling
    }

    /// Sets the drive command (clamped to `[0, 1]`; ignored after an
    /// emergency stop).
    pub fn set_drive(&mut self, drive: f64) {
        if !self.estop {
            self.drive = drive.clamp(0.0, 1.0);
        }
    }

    /// Sets the cooling command (clamped to `[0, 1]`; ignored after an
    /// emergency stop, which forces full cooling).
    pub fn set_cooling(&mut self, cooling: f64) {
        if !self.estop {
            self.cooling = cooling.clamp(0.0, 1.0);
        }
    }

    /// Degrades (or restores) the chiller's physical effectiveness — an
    /// intrinsic equipment fault, independent of any command. `1.0` is
    /// healthy, `0.0` is a complete failure. Clamped to `[0, 1]`.
    pub fn set_chiller_efficiency(&mut self, efficiency: f64) {
        self.chiller_efficiency = efficiency.clamp(0.0, 1.0);
    }

    /// The chiller's current physical effectiveness.
    #[must_use]
    pub fn chiller_efficiency(&self) -> f64 {
        self.chiller_efficiency
    }

    /// Trips the emergency stop: drive to zero, chiller to full, latched.
    pub fn emergency_stop(&mut self) {
        self.estop = true;
        self.drive = 0.0;
        self.cooling = 1.0;
    }

    /// Whether the emergency stop has been tripped.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.estop
    }

    /// Whether the solution went unstable (latched).
    #[must_use]
    pub fn has_exploded(&self) -> bool {
        self.exploded
    }

    /// Whether the temperature is inside the productive separation window.
    #[must_use]
    pub fn in_temperature_window(&self) -> bool {
        (Self::WINDOW_LOW_C..=Self::WINDOW_HIGH_C).contains(&self.temperature_c)
    }
}

impl Default for CentrifugePlant {
    fn default() -> Self {
        CentrifugePlant::new()
    }
}

impl Plant for CentrifugePlant {
    fn integrate(&mut self, dt: f64) {
        // Rotor.
        let target = self.drive * Self::DRIVE_MAX_RPM;
        self.speed_rpm += (target - self.speed_rpm) / Self::ROTOR_TAU_S * dt;
        if self.speed_rpm < 0.0 {
            self.speed_rpm = 0.0;
        }
        // Temperature.
        let ratio = self.speed_rpm / Self::MAX_RPM;
        let heating = Self::FRICTION_HEAT * ratio * ratio;
        let cooling = Self::COOLING_RATE
            * self.cooling
            * self.chiller_efficiency
            * ((self.temperature_c - Self::CHILL_C) / Self::COOLING_REF_LIFT).max(0.0);
        let ambient = (Self::AMBIENT_C - self.temperature_c) / Self::AMBIENT_TAU_S;
        self.temperature_c += (heating - cooling + ambient) * dt;
        if self.temperature_c >= Self::EXPLOSION_TEMP {
            self.exploded = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(plant: &mut CentrifugePlant, seconds: f64) {
        let dt = 0.1;
        let steps = (seconds / dt) as usize;
        for _ in 0..steps {
            plant.integrate(dt);
        }
    }

    #[test]
    fn idle_plant_stays_at_ambient() {
        let mut p = CentrifugePlant::new();
        run(&mut p, 300.0);
        assert!((p.temperature_c() - CentrifugePlant::AMBIENT_C).abs() < 0.1);
        assert_eq!(p.speed_rpm(), 0.0);
    }

    #[test]
    fn full_drive_approaches_drive_max() {
        let mut p = CentrifugePlant::new();
        p.set_drive(1.0);
        run(&mut p, 60.0);
        assert!((p.speed_rpm() - CentrifugePlant::DRIVE_MAX_RPM).abs() < 10.0);
    }

    #[test]
    fn spinning_without_cooling_heats_past_the_window() {
        let mut p = CentrifugePlant::new();
        p.set_drive(0.77); // ~8000 rpm
        run(&mut p, 400.0);
        assert!(p.temperature_c() > CentrifugePlant::WINDOW_HIGH_C);
    }

    #[test]
    fn sustained_uncooled_spin_explodes() {
        let mut p = CentrifugePlant::new();
        p.set_drive(1.0);
        run(&mut p, 900.0);
        assert!(p.has_exploded());
        // The latch survives cooling down.
        p.set_drive(0.0);
        p.set_cooling(1.0);
        run(&mut p, 300.0);
        assert!(p.has_exploded());
    }

    #[test]
    fn cooling_counteracts_heating() {
        let mut p = CentrifugePlant::new();
        p.set_drive(0.77);
        p.set_cooling(0.5);
        run(&mut p, 600.0);
        assert!(
            p.temperature_c() < CentrifugePlant::WINDOW_LOW_C,
            "temp {}",
            p.temperature_c()
        );
        assert!(!p.has_exploded());
    }

    #[test]
    fn emergency_stop_latches_and_blocks_commands() {
        let mut p = CentrifugePlant::new();
        p.set_drive(1.0);
        run(&mut p, 30.0);
        p.emergency_stop();
        assert!(p.is_stopped());
        assert_eq!(p.drive(), 0.0);
        assert_eq!(p.cooling(), 1.0);
        // Commands after the stop are ignored.
        p.set_drive(1.0);
        p.set_cooling(0.0);
        assert_eq!(p.drive(), 0.0);
        assert_eq!(p.cooling(), 1.0);
        run(&mut p, 60.0);
        assert!(p.speed_rpm() < 100.0);
    }

    #[test]
    fn commands_are_clamped() {
        let mut p = CentrifugePlant::new();
        p.set_drive(7.0);
        assert_eq!(p.drive(), 1.0);
        p.set_cooling(-3.0);
        assert_eq!(p.cooling(), 0.0);
    }

    #[test]
    fn window_predicate_matches_constants() {
        let mut p = CentrifugePlant::new();
        assert!(!p.in_temperature_window()); // ambient 22 < 30
        p.temperature_c = 35.0;
        assert!(p.in_temperature_window());
        p.temperature_c = 40.5;
        assert!(!p.in_temperature_window());
    }

    #[test]
    fn integration_is_deterministic() {
        let run_once = || {
            let mut p = CentrifugePlant::new();
            p.set_drive(0.8);
            p.set_cooling(0.2);
            run(&mut p, 120.0);
            (p.speed_rpm().to_bits(), p.temperature_c().to_bits())
        };
        assert_eq!(run_once(), run_once());
    }
}
