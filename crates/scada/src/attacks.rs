//! Attack scenarios: from matched attack vectors to physical consequences.
//!
//! Each scenario names the attack vectors it instantiates (CWE/CAPEC
//! identifiers as strings, so this crate stays decoupled from the corpus
//! crate), the model component it targets, and a list of concrete
//! [`AttackEffect`]s the harness applies when assembling the system. The
//! paper's §3 narrative — CWE-78 command injection on the BPCS/SIS
//! platforms "manifesting in destruction of the manufactured product or
//! damage to the centrifuge itself", and the Triton incident "where malware
//! was used to disable the safety systems" — maps to
//! [`command_injection_bpcs`], [`sis_disable_overtemp`] and friends.

use cpssec_sim::{
    DropMatching, Firewall, FirewallAction, FirewallRule, RegisterOverride, ResponseOverride,
    Simulation, Tick, TickWindow,
};

use crate::addresses::{self, centrifuge, cooling, sis, temp_sensor};
use crate::workstation::{ScheduledWrite, Workstation};
use crate::CentrifugePlant;

/// One concrete effect of a scenario on the assembled system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackEffect {
    /// Rewrite write requests to `(dst, address)` to carry `value`.
    ForceRegister {
        /// Target unit.
        dst: cpssec_sim::UnitId,
        /// Target register.
        address: u16,
        /// Forced value.
        value: u16,
        /// Active from this tick on.
        from: Tick,
    },
    /// Forge read responses from `(dst, address)` to return `value`.
    SpoofResponse {
        /// Spoofed unit.
        dst: cpssec_sim::UnitId,
        /// Spoofed register.
        address: u16,
        /// Forged value.
        value: u16,
        /// Active from this tick on.
        from: Tick,
    },
    /// Drop write requests to `dst`.
    DropWrites {
        /// Target unit.
        dst: cpssec_sim::UnitId,
        /// Active from this tick on.
        from: Tick,
    },
    /// Disable the control firewall entirely.
    DisableFirewall,
    /// Add a firewall rule allowing workstation writes to the SIS (the
    /// engineering-access misconfiguration Triton exploited).
    AllowWorkstationToSis,
    /// Scripted writes from the (compromised) workstation.
    CompromisedWorkstation(Vec<ScheduledWrite>),
}

/// A named attack scenario with its vector provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackScenario {
    /// Short stable identifier (e.g. `bpcs-command-injection`).
    pub name: String,
    /// Prose description of the attack story.
    pub description: String,
    /// Weakness identifiers this scenario instantiates (e.g. `CWE-78`).
    pub weakness_ids: Vec<String>,
    /// Attack pattern identifiers (e.g. `CAPEC-88`).
    pub pattern_ids: Vec<String>,
    /// The model component the attack lands on (must match a component
    /// name in [`crate::model::scada_model`]).
    pub target_component: String,
    /// Concrete effects on the assembled system.
    pub effects: Vec<AttackEffect>,
}

/// Applies a scenario's effects while the harness is assembled. Returns the
/// (possibly modified) firewall and workstation; injectors are registered
/// on the simulation directly.
pub(crate) fn apply_effects(
    attack: &AttackScenario,
    mut firewall: Firewall,
    mut workstation: Workstation,
    sim: &mut Simulation<CentrifugePlant>,
) -> (Firewall, Workstation) {
    for effect in &attack.effects {
        match effect {
            AttackEffect::ForceRegister {
                dst,
                address,
                value,
                from,
            } => sim.add_injector(RegisterOverride::new(
                attack.name.clone(),
                TickWindow::from(*from),
                *dst,
                *address,
                *value,
            )),
            AttackEffect::SpoofResponse {
                dst,
                address,
                value,
                from,
            } => sim.add_injector(ResponseOverride::new(
                attack.name.clone(),
                TickWindow::from(*from),
                *dst,
                *address,
                *value,
            )),
            AttackEffect::DropWrites { dst, from } => sim.add_injector(
                DropMatching::new(attack.name.clone(), TickWindow::from(*from), Some(*dst))
                    .writes_only(),
            ),
            AttackEffect::DisableFirewall => firewall.set_enabled(false),
            AttackEffect::AllowWorkstationToSis => {
                // Prepend so it wins over the default-deny evaluation order.
                firewall = Firewall::new(FirewallAction::Deny)
                    .with_rule(
                        FirewallRule::any(FirewallAction::Allow)
                            .from_src(addresses::WORKSTATION)
                            .to_dst(addresses::SIS),
                    )
                    .merged_with(firewall);
            }
            AttackEffect::CompromisedWorkstation(writes) => {
                workstation = workstation.with_malicious_writes(writes.clone());
            }
        }
    }
    (firewall, workstation)
}

/// CWE-78 / CAPEC-88 — OS command injection on the BPCS platform.
///
/// "An upstream attacker may inject all or part of an operating system
/// command onto an externally influenced input for the BPCS … disrupting
/// or manipulating the platform's operation" (§3). At the bus level the
/// injected command manifests as the BPCS's set point writes to the
/// centrifuge being forced to an overspeed value. With the SIS armed, the
/// expected outcome is a safety trip and a ruined batch; the attack
/// demonstrates product loss, not a hazard.
#[must_use]
pub fn command_injection_bpcs(from: Tick) -> AttackScenario {
    command_injection_bpcs_with(from, 10_500)
}

/// [`command_injection_bpcs`] with an explicit forced set point —
/// the magnitude axis of Monte-Carlo sweeps.
#[must_use]
pub fn command_injection_bpcs_with(from: Tick, overspeed_rpm: u16) -> AttackScenario {
    AttackScenario {
        name: "bpcs-command-injection".into(),
        description: "injected OS command on the BPCS forces centrifuge set point writes \
                      to an overspeed value"
            .into(),
        weakness_ids: vec!["CWE-78".into(), "CWE-20".into()],
        pattern_ids: vec!["CAPEC-88".into(), "CAPEC-248".into()],
        target_component: "BPCS platform".into(),
        effects: vec![AttackEffect::ForceRegister {
            dst: addresses::CENTRIFUGE,
            address: centrifuge::SETPOINT_RPM,
            value: overspeed_rpm,
            from,
        }],
    }
}

/// CAPEC-441 / CWE-306 — Triton-style disable of the safety system, then
/// the same command injection as [`command_injection_bpcs`].
///
/// With the SIS disabled through the unauthenticated engineering write,
/// the overspeed proceeds unchecked: rotor destruction.
#[must_use]
pub fn command_injection_with_sis_disabled(disable_at: Tick, inject_from: Tick) -> AttackScenario {
    command_injection_with_sis_disabled_with(disable_at, inject_from, 10_500)
}

/// [`command_injection_with_sis_disabled`] with an explicit forced set
/// point — the magnitude axis of Monte-Carlo sweeps.
#[must_use]
pub fn command_injection_with_sis_disabled_with(
    disable_at: Tick,
    inject_from: Tick,
    overspeed_rpm: u16,
) -> AttackScenario {
    AttackScenario {
        name: "sis-disable-command-injection".into(),
        description: "compromised workstation disables the SIS through its engineering \
                      register, then injected commands overspeed the centrifuge"
            .into(),
        weakness_ids: vec!["CWE-306".into(), "CWE-78".into()],
        pattern_ids: vec!["CAPEC-441".into(), "CAPEC-88".into()],
        target_component: "SIS platform".into(),
        effects: vec![
            AttackEffect::AllowWorkstationToSis,
            AttackEffect::CompromisedWorkstation(vec![ScheduledWrite {
                at: disable_at,
                dst: addresses::SIS,
                address: sis::ENABLED,
                value: 0,
            }]),
            AttackEffect::ForceRegister {
                dst: addresses::CENTRIFUGE,
                address: centrifuge::SETPOINT_RPM,
                value: overspeed_rpm,
                from: inject_from,
            },
        ],
    }
}

/// CAPEC-441 / CWE-306 + CWE-400 — disable the SIS, then suppress cooling:
/// the solution overheats to instability (the paper's "explosion/fire").
#[must_use]
pub fn sis_disable_overtemp(disable_at: Tick, suppress_from: Tick) -> AttackScenario {
    AttackScenario {
        name: "sis-disable-overtemperature".into(),
        description: "Triton-style SIS disable followed by forcing the chiller command to \
                      zero; the solution heats past the instability threshold"
            .into(),
        weakness_ids: vec!["CWE-306".into(), "CWE-400".into()],
        pattern_ids: vec!["CAPEC-441".into(), "CAPEC-153".into()],
        target_component: "SIS platform".into(),
        effects: vec![
            AttackEffect::AllowWorkstationToSis,
            AttackEffect::CompromisedWorkstation(vec![ScheduledWrite {
                at: disable_at,
                dst: addresses::SIS,
                address: sis::ENABLED,
                value: 0,
            }]),
            AttackEffect::ForceRegister {
                dst: addresses::COOLING,
                address: cooling::COMMAND_PERMILLE,
                value: 0,
                from: suppress_from,
            },
        ],
    }
}

/// CAPEC-148 / CWE-311 — spoof the shared temperature probe at a benign
/// value; both the BPCS and the blind SIS act on falsified data while the
/// real temperature runs away.
#[must_use]
pub fn sensor_spoof(from: Tick) -> AttackScenario {
    sensor_spoof_with(from, 350)
}

/// [`sensor_spoof`] with an explicit forged reading (tenths of °C) —
/// the magnitude axis of Monte-Carlo sweeps.
#[must_use]
pub fn sensor_spoof_with(from: Tick, value_x10: u16) -> AttackScenario {
    AttackScenario {
        name: "temperature-sensor-spoof".into(),
        description: "adversary-in-the-middle forges the temperature probe readings at a \
                      constant in-window value; the thermal loop stops cooling and the SIS \
                      is blind to the excursion"
            .into(),
        weakness_ids: vec!["CWE-311".into(), "CWE-20".into()],
        pattern_ids: vec!["CAPEC-148".into(), "CAPEC-94".into()],
        target_component: "Temperature sensor".into(),
        effects: vec![AttackEffect::SpoofResponse {
            dst: addresses::TEMP_SENSOR,
            address: temp_sensor::TEMPERATURE_X10,
            value: value_x10,
            from,
        }],
    }
}

/// CAPEC-153 / CWE-20 — tamper the operator set point just beyond the
/// product tolerance: no hazard, but the batch is quietly ruined.
#[must_use]
pub fn setpoint_tamper(from: Tick) -> AttackScenario {
    setpoint_tamper_with(from, 8050)
}

/// [`setpoint_tamper`] with an explicit tampered set point — the
/// magnitude axis of Monte-Carlo sweeps.
#[must_use]
pub fn setpoint_tamper_with(from: Tick, setpoint_rpm: u16) -> AttackScenario {
    AttackScenario {
        name: "setpoint-tamper".into(),
        description: "operator set point writes are rewritten +50 rpm — inside every \
                      safety margin, outside the ±20 rpm product tolerance"
            .into(),
        weakness_ids: vec!["CWE-20".into()],
        pattern_ids: vec!["CAPEC-153".into()],
        target_component: "BPCS platform".into(),
        effects: vec![AttackEffect::ForceRegister {
            dst: addresses::BPCS,
            address: crate::addresses::bpcs::OPERATOR_SETPOINT_RPM,
            value: setpoint_rpm,
            from,
        }],
    }
}

/// CAPEC-125 / CWE-400 — denial of service on the chiller command path;
/// the SIS catches the excursion and trips (product lost, plant safe).
#[must_use]
pub fn cooling_dos(from: Tick) -> AttackScenario {
    AttackScenario {
        name: "cooling-dos".into(),
        description: "write requests to the cooling unit are flooded/dropped; temperature \
                      rises until the SIS trips the emergency stop"
            .into(),
        weakness_ids: vec!["CWE-400".into()],
        pattern_ids: vec!["CAPEC-125".into()],
        target_component: "BPCS platform".into(),
        effects: vec![AttackEffect::DropWrites {
            dst: addresses::COOLING,
            from,
        }],
    }
}

/// CAPEC-153 / CWE-20 — force the chiller to full: the solution never
/// reaches the separation window and the product comes out viscous.
#[must_use]
pub fn chiller_tamper(from: Tick) -> AttackScenario {
    chiller_tamper_with(from, 1000)
}

/// [`chiller_tamper`] with an explicit forced chiller command (per
/// mille) — the magnitude axis of Monte-Carlo sweeps.
#[must_use]
pub fn chiller_tamper_with(from: Tick, command_permille: u16) -> AttackScenario {
    AttackScenario {
        name: "chiller-tamper".into(),
        description: "chiller commands are forced to full capacity; the solution stays \
                      below the productive window and the batch is viscous"
            .into(),
        weakness_ids: vec!["CWE-20".into()],
        pattern_ids: vec!["CAPEC-153".into()],
        target_component: "BPCS platform".into(),
        effects: vec![AttackEffect::ForceRegister {
            dst: addresses::COOLING,
            address: cooling::COMMAND_PERMILLE,
            value: command_permille,
            from,
        }],
    }
}

/// Every built-in scenario, at its default timing, for sweeps and reports.
#[must_use]
pub fn all_scenarios() -> Vec<AttackScenario> {
    vec![
        command_injection_bpcs(Tick::new(3000)),
        command_injection_with_sis_disabled(Tick::new(100), Tick::new(3000)),
        sis_disable_overtemp(Tick::new(100), Tick::new(1500)),
        sensor_spoof(Tick::new(100)),
        setpoint_tamper(Tick::new(100)),
        cooling_dos(Tick::new(500)),
        chiller_tamper(Tick::new(100)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProductQuality, ScadaConfig, ScadaHarness};

    fn run(attack: &AttackScenario, ticks: u64) -> crate::BatchReport {
        let mut harness = ScadaHarness::with_attack(ScadaConfig::default(), attack);
        harness.run_batch_for(ticks)
    }

    #[test]
    fn command_injection_with_sis_armed_trips_safely() {
        let report = run(&command_injection_bpcs(cpssec_sim::Tick::new(3000)), 4010);
        assert!(report.emergency_stopped, "{report:?}");
        assert!(!report.exploded);
        assert_eq!(report.product, ProductQuality::RuinedSpeed);
        assert!(report.hazards.is_empty(), "SIS should trip before hazards");
    }

    #[test]
    fn command_injection_with_sis_disabled_destroys_the_rotor() {
        let report = run(
            &command_injection_with_sis_disabled(
                cpssec_sim::Tick::new(100),
                cpssec_sim::Tick::new(3000),
            ),
            4010,
        );
        assert!(!report.emergency_stopped, "SIS is disabled: {report:?}");
        assert_eq!(report.product, ProductQuality::Destroyed);
        assert!(report.hazards.iter().any(|h| h.hazard == "rotor-overspeed"));
    }

    #[test]
    fn sis_disable_overtemp_reaches_instability() {
        let report = run(
            &sis_disable_overtemp(cpssec_sim::Tick::new(100), cpssec_sim::Tick::new(1500)),
            12_000,
        );
        assert!(report.exploded, "{report:?}");
        assert_eq!(report.product, ProductQuality::Destroyed);
        assert!(report.hazards.iter().any(|h| h.hazard == "explosion"));
        assert!(report.max_temperature_c >= 60.0);
    }

    #[test]
    fn sensor_spoof_blinds_both_controllers() {
        let report = run(&sensor_spoof(cpssec_sim::Tick::new(100)), 12_000);
        // The SIS reads the same spoofed probe, so no trip happens and the
        // temperature runs away to instability.
        assert!(!report.emergency_stopped, "{report:?}");
        assert!(report.exploded);
        assert_eq!(report.product, ProductQuality::Destroyed);
    }

    #[test]
    fn setpoint_tamper_ruins_product_without_any_hazard() {
        let report = run(&setpoint_tamper(cpssec_sim::Tick::new(100)), 4010);
        assert_eq!(report.product, ProductQuality::RuinedSpeed, "{report:?}");
        assert!(report.hazards.is_empty());
        assert!(!report.emergency_stopped);
        // Deviation is ~50 rpm: beyond tolerance, inside safety margins.
        assert!(report.max_speed_deviation_rpm > 20.0);
        assert!(report.max_speed_deviation_rpm < 200.0);
    }

    #[test]
    fn cooling_dos_is_caught_by_the_sis() {
        // Start the denial of service during warm-up, while the chiller
        // command is still zero; the frozen command lets the temperature
        // run until the SIS trips.
        let report = run(&cooling_dos(cpssec_sim::Tick::new(500)), 12_000);
        assert!(report.emergency_stopped, "{report:?}");
        assert!(!report.exploded);
        assert_ne!(report.product, ProductQuality::Nominal);
    }

    #[test]
    fn chiller_tamper_makes_viscous_product() {
        let report = run(&chiller_tamper(cpssec_sim::Tick::new(100)), 4010);
        assert_eq!(report.product, ProductQuality::RuinedViscous, "{report:?}");
        assert!(report.hazards.is_empty());
    }

    #[test]
    fn scenarios_carry_vector_provenance() {
        for scenario in all_scenarios() {
            assert!(!scenario.weakness_ids.is_empty(), "{}", scenario.name);
            assert!(!scenario.pattern_ids.is_empty(), "{}", scenario.name);
            assert!(!scenario.target_component.is_empty());
            assert!(scenario.weakness_ids.iter().all(|w| w.starts_with("CWE-")));
            assert!(scenario.pattern_ids.iter().all(|p| p.starts_with("CAPEC-")));
        }
    }

    #[test]
    fn ws_to_sis_write_is_blocked_without_the_misconfiguration() {
        // Same malicious write, but without AllowWorkstationToSis: the
        // firewall holds and the SIS still trips on the overspeed.
        let mut attack = command_injection_with_sis_disabled(
            cpssec_sim::Tick::new(100),
            cpssec_sim::Tick::new(3000),
        );
        attack
            .effects
            .retain(|e| !matches!(e, AttackEffect::AllowWorkstationToSis));
        let report = run(&attack, 4010);
        assert!(
            report.emergency_stopped,
            "firewall should protect the SIS: {report:?}"
        );
        assert_ne!(report.product, ProductQuality::Destroyed);
    }
}
