//! The water-treatment testbed: a second first-class system.
//!
//! Promoted from `examples/water_treatment.rs` so verdicts can be
//! compared across two system classes (the SLR's motivation): a chlorine
//! dosing loop — residual analyzer, dosing pump, dosing PLC, a hardwired
//! dosing interlock (the SIS analog), and a SCADA server (the operator
//! entry point) behind a perimeter firewall. The same [`AttackScenario`]
//! vocabulary drives it: register forcing, response spoofing, write
//! denial, interlock disable through the engineering register.
//!
//! Physics envelope: residual chlorine must stay inside the potable
//! window (0.5–2.0 mg/L). Above [`WaterPlant::OVERDOSE_MG_L`] the water
//! is acutely over-chlorinated (the "chlorine-overdose" hazard, as in
//! the Oldsmar incident); a cumulative minute spent below
//! [`WaterPlant::UNDERDOSE_MG_L`] loses disinfection and latches the
//! "pathogen-breakthrough" hazard. The interlock trips a pump shutoff at
//! [`TRIP_CHLORINE_MG_L`] and places the plant in a safe hold.

use core::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cpssec_sim::{
    BusRequest, BusResponse, Device, DropMatching, ExceptionCode, Firewall, FirewallAction,
    FirewallRule, HazardEvent, HazardMonitor, Outbox, Pid, Plant, RegisterOverride,
    ResponseOverride, Simulation, Tick, TickWindow, UnitId,
};

use cpssec_model::{
    Attribute, AttributeKind, ChannelKind, ComponentKind, Criticality, Fidelity, SystemModel,
    SystemModelBuilder,
};

use crate::addresses::mode;
use crate::attacks::{AttackEffect, AttackScenario};
use crate::workstation::ScheduledWrite;

/// Bus unit ids of the water-treatment system.
pub mod units {
    use cpssec_sim::UnitId;

    /// SCADA server (operator/engineering station, the entry foothold).
    pub const SCADA_SERVER: UnitId = UnitId::new(1);
    /// Hardwired dosing interlock (safety system analog).
    pub const INTERLOCK: UnitId = UnitId::new(10);
    /// Chlorine dosing PLC (process controller).
    pub const DOSING_PLC: UnitId = UnitId::new(20);
    /// Residual chlorine analyzer.
    pub const RESIDUAL_SENSOR: UnitId = UnitId::new(30);
    /// Chlorine dosing pump.
    pub const DOSING_PUMP: UnitId = UnitId::new(40);
}

/// Residual analyzer registers.
pub mod residual {
    /// Measured residual chlorine, 0.01 mg/L per count.
    pub const CHLORINE_X100: u16 = 0;
}

/// Dosing pump registers.
pub mod pump {
    /// Dose command in per-mille of full stroke (read/write).
    pub const COMMAND_PERMILLE: u16 = 0;
    /// Shutoff latch; writing a nonzero value closes the pump and holds
    /// the plant safe.
    pub const SHUTOFF: u16 = 1;
}

/// Dosing PLC registers (served to the SCADA server).
pub mod plc {
    /// Operator residual set point, 0.01 mg/L per count (read/write).
    pub const OPERATOR_SETPOINT_X100: u16 = 0;
    /// Mode: 0 = idle, 1 = run (read/write).
    pub const MODE: u16 = 1;
    /// Last residual reading, 0.01 mg/L per count (read only).
    pub const CHLORINE_X100: u16 = 2;
    /// Last commanded dose in per-mille (read only).
    pub const DOSE_PERMILLE: u16 = 3;
}

/// Interlock registers.
pub mod interlock {
    /// Trip latch: 1 once tripped (read only).
    pub const TRIPPED: u16 = 0;
    /// Enable flag: writing 0 disables the interlock (the engineering
    /// write a Triton-style campaign abuses).
    pub const ENABLED: u16 = 1;
}

/// Component name constants of the water model, shared with
/// [`AttackScenario::target_component`].
pub mod names {
    /// The business network uplink (adversary entry point).
    pub const BUSINESS: &str = "business network";
    /// The SCADA server.
    pub const SCADA_SERVER: &str = "scada server";
    /// The perimeter firewall.
    pub const FIREWALL: &str = "perimeter firewall";
    /// The chlorine dosing PLC.
    pub const PLC: &str = "dosing plc";
    /// The hardwired dosing interlock.
    pub const INTERLOCK: &str = "dosing interlock";
    /// The chlorine dosing pump.
    pub const PUMP: &str = "chlorine pump";
    /// The residual chlorine analyzer.
    pub const RESIDUAL: &str = "residual sensor";
    /// The turbidity sensor.
    pub const TURBIDITY: &str = "turbidity sensor";
}

/// Residual chlorine above which the interlock trips, mg/L.
pub const TRIP_CHLORINE_MG_L: f64 = 3.0;

/// The treated-water contact basin: residual chlorine dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterPlant {
    chlorine_mg_l: f64,
    dose: f64,
    shutdown: bool,
    overdosed: bool,
    underdose_s: f64,
}

impl WaterPlant {
    /// Full-stroke dosing gain, mg/L per second.
    pub const DOSE_GAIN: f64 = 0.06;
    /// First-order chlorine decay rate, 1/s.
    pub const DECAY_RATE: f64 = 0.01;
    /// Constant chlorine demand of the raw water, mg/L per second.
    pub const DEMAND: f64 = 0.002;
    /// Lower edge of the potable residual window, mg/L.
    pub const WINDOW_LOW_MG_L: f64 = 0.5;
    /// Upper edge of the potable residual window, mg/L.
    pub const WINDOW_HIGH_MG_L: f64 = 2.0;
    /// Acute over-chlorination threshold (latched hazard), mg/L.
    pub const OVERDOSE_MG_L: f64 = 4.0;
    /// Residual below which disinfection is lost, mg/L.
    pub const UNDERDOSE_MG_L: f64 = 0.2;
    /// Cumulative seconds below the underdose floor before pathogen
    /// breakthrough latches.
    pub const UNDERDOSE_LIMIT_S: f64 = 60.0;
    /// Residual of the incoming (source) water, mg/L.
    pub const SOURCE_MG_L: f64 = 0.5;

    /// A basin at the source residual with the pump idle.
    #[must_use]
    pub fn new() -> Self {
        WaterPlant {
            chlorine_mg_l: Self::SOURCE_MG_L,
            dose: 0.0,
            shutdown: false,
            overdosed: false,
            underdose_s: 0.0,
        }
    }

    /// Current residual chlorine, mg/L.
    #[must_use]
    pub fn chlorine_mg_l(&self) -> f64 {
        self.chlorine_mg_l
    }

    /// Current dose command in `[0, 1]`.
    #[must_use]
    pub fn dose(&self) -> f64 {
        self.dose
    }

    /// Sets the dose command (clamped to `[0, 1]`; ignored after the
    /// safe-hold shutdown).
    pub fn set_dose(&mut self, dose: f64) {
        if !self.shutdown {
            self.dose = dose.clamp(0.0, 1.0);
        }
    }

    /// Trips the safe hold: pump closed, intake valves shut, latched.
    /// A held plant neither doses nor passes water, so neither hazard
    /// can develop further.
    pub fn emergency_stop(&mut self) {
        self.shutdown = true;
        self.dose = 0.0;
    }

    /// Whether the safe hold has been tripped.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.shutdown
    }

    /// Whether acute over-chlorination occurred (latched).
    #[must_use]
    pub fn has_overdosed(&self) -> bool {
        self.overdosed
    }

    /// Cumulative seconds spent below the underdose floor.
    #[must_use]
    pub fn underdose_s(&self) -> f64 {
        self.underdose_s
    }

    /// Whether disinfection was lost long enough for pathogen
    /// breakthrough.
    #[must_use]
    pub fn pathogen_breakthrough(&self) -> bool {
        self.underdose_s >= Self::UNDERDOSE_LIMIT_S
    }

    /// Whether the residual is inside the potable window.
    #[must_use]
    pub fn in_window(&self) -> bool {
        (Self::WINDOW_LOW_MG_L..=Self::WINDOW_HIGH_MG_L).contains(&self.chlorine_mg_l)
    }
}

impl Default for WaterPlant {
    fn default() -> Self {
        WaterPlant::new()
    }
}

impl Plant for WaterPlant {
    fn integrate(&mut self, dt: f64) {
        if self.shutdown {
            // Safe hold: no flow, no dosing — the basin state is frozen.
            return;
        }
        let rate =
            Self::DOSE_GAIN * self.dose - Self::DECAY_RATE * self.chlorine_mg_l - Self::DEMAND;
        self.chlorine_mg_l = (self.chlorine_mg_l + rate * dt).max(0.0);
        if self.chlorine_mg_l >= Self::OVERDOSE_MG_L {
            self.overdosed = true;
        }
        if self.chlorine_mg_l < Self::UNDERDOSE_MG_L {
            self.underdose_s += dt;
        }
    }
}

/// The amperometric residual chlorine analyzer (seeded noise, σ ≈ 0.01
/// mg/L).
#[derive(Debug)]
pub struct ResidualSensor {
    rng: StdRng,
}

impl ResidualSensor {
    /// Creates the analyzer with a noise seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ResidualSensor {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn noise(&mut self) -> f64 {
        // Irwin–Hall(3) centered, scaled to σ ≈ 0.01 mg/L.
        let sum: f64 = (0..3).map(|_| self.rng.gen::<f64>()).sum::<f64>() - 1.5;
        sum * 0.02
    }
}

impl Device<WaterPlant> for ResidualSensor {
    fn unit_id(&self) -> UnitId {
        units::RESIDUAL_SENSOR
    }

    fn name(&self) -> &str {
        "residual-sensor"
    }

    fn poll(&mut self, _plant: &mut WaterPlant, _outbox: &mut Outbox) {}

    fn handle(&mut self, plant: &mut WaterPlant, request: &BusRequest) -> BusResponse {
        if request.function.is_write() {
            return BusResponse::exception(ExceptionCode::IllegalFunction);
        }
        if request.address != residual::CHLORINE_X100 {
            return BusResponse::exception(ExceptionCode::IllegalDataAddress);
        }
        let measured = plant.chlorine_mg_l() + self.noise();
        let counts = (measured * 100.0).round().clamp(0.0, f64::from(u16::MAX));
        BusResponse::ok(vec![counts as u16])
    }
}

/// The chlorine dosing pump with a command watchdog: if no fresh command
/// arrives within [`DosingPump::WATCHDOG_TICKS`], the stroke fails safe
/// to zero (which is exactly what a write-denial attack weaponizes —
/// losing dosing loses disinfection).
#[derive(Debug)]
pub struct DosingPump {
    command_permille: u16,
    ticks_since_command: u64,
    shutoff: bool,
}

impl DosingPump {
    /// Ticks without a fresh command before the stroke fails safe.
    pub const WATCHDOG_TICKS: u64 = 50;

    /// Creates the pump, idle and open.
    #[must_use]
    pub fn new() -> Self {
        DosingPump {
            command_permille: 0,
            ticks_since_command: 0,
            shutoff: false,
        }
    }

    /// Whether the shutoff latch is closed.
    #[must_use]
    pub fn is_shut_off(&self) -> bool {
        self.shutoff
    }
}

impl Default for DosingPump {
    fn default() -> Self {
        DosingPump::new()
    }
}

impl Device<WaterPlant> for DosingPump {
    fn unit_id(&self) -> UnitId {
        units::DOSING_PUMP
    }

    fn name(&self) -> &str {
        "dosing-pump"
    }

    fn poll(&mut self, plant: &mut WaterPlant, _outbox: &mut Outbox) {
        self.ticks_since_command = self.ticks_since_command.saturating_add(1);
        let applied = if self.ticks_since_command > Self::WATCHDOG_TICKS {
            0
        } else {
            self.command_permille
        };
        plant.set_dose(f64::from(applied) / 1000.0);
    }

    fn handle(&mut self, plant: &mut WaterPlant, request: &BusRequest) -> BusResponse {
        match (request.function.is_write(), request.address) {
            (true, pump::COMMAND_PERMILLE) => {
                self.command_permille = request.values[0].min(1000);
                self.ticks_since_command = 0;
                BusResponse::ok(request.values.clone())
            }
            (true, pump::SHUTOFF) => {
                if request.values[0] != 0 {
                    self.shutoff = true;
                    plant.emergency_stop();
                }
                BusResponse::ok(request.values.clone())
            }
            (false, pump::COMMAND_PERMILLE) => BusResponse::ok(vec![self.command_permille]),
            (false, pump::SHUTOFF) => BusResponse::ok(vec![u16::from(self.shutoff)]),
            _ => BusResponse::exception(ExceptionCode::IllegalDataAddress),
        }
    }
}

/// The hardwired dosing interlock: independently reads the residual
/// analyzer and closes the pump shutoff above [`TRIP_CHLORINE_MG_L`].
/// Its enable register is writable — the engineering path a campaign
/// disables before forcing an overdose.
#[derive(Debug)]
pub struct Interlock {
    enabled: bool,
    tripped: bool,
    last_chlorine_x100: u16,
}

impl Interlock {
    /// Creates an armed, untripped interlock.
    #[must_use]
    pub fn new() -> Self {
        Interlock {
            enabled: true,
            tripped: false,
            last_chlorine_x100: 0,
        }
    }

    /// Whether the safety function is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether the interlock has tripped.
    #[must_use]
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }
}

impl Default for Interlock {
    fn default() -> Self {
        Interlock::new()
    }
}

impl Device<WaterPlant> for Interlock {
    fn unit_id(&self) -> UnitId {
        units::INTERLOCK
    }

    fn name(&self) -> &str {
        "dosing-interlock"
    }

    fn poll(&mut self, _plant: &mut WaterPlant, outbox: &mut Outbox) {
        if !self.enabled || self.tripped {
            return;
        }
        outbox.send(BusRequest::read(
            units::INTERLOCK,
            units::RESIDUAL_SENSOR,
            residual::CHLORINE_X100,
            1,
        ));
        let chlorine = f64::from(self.last_chlorine_x100) / 100.0;
        if chlorine > TRIP_CHLORINE_MG_L {
            self.tripped = true;
            outbox.send(BusRequest::write(
                units::INTERLOCK,
                units::DOSING_PUMP,
                pump::SHUTOFF,
                1,
            ));
        }
    }

    fn handle(&mut self, _plant: &mut WaterPlant, request: &BusRequest) -> BusResponse {
        match (request.function.is_write(), request.address) {
            (true, interlock::ENABLED) => {
                self.enabled = request.values[0] != 0;
                BusResponse::ok(request.values.clone())
            }
            (false, interlock::ENABLED) => BusResponse::ok(vec![u16::from(self.enabled)]),
            (false, interlock::TRIPPED) => BusResponse::ok(vec![u16::from(self.tripped)]),
            (true, interlock::TRIPPED) => BusResponse::exception(ExceptionCode::IllegalDataValue),
            _ => BusResponse::exception(ExceptionCode::IllegalDataAddress),
        }
    }

    fn on_response(&mut self, _plant: &mut WaterPlant, request: &BusRequest, resp: &BusResponse) {
        let Some(values) = resp.values() else {
            return;
        };
        if request.dst == units::RESIDUAL_SENSOR {
            self.last_chlorine_x100 = values[0];
        }
    }
}

/// The chlorine dosing PLC: reads the analyzer, runs the residual PI
/// loop, commands the pump, and serves the operator registers.
#[derive(Debug)]
pub struct DosingPlc {
    operator_setpoint_x100: u16,
    mode: u16,
    last_chlorine_x100: u16,
    last_dose_permille: u16,
    pid: Pid,
    dt: f64,
}

impl DosingPlc {
    /// Creates the controller in idle mode; `dt` is the kernel step.
    #[must_use]
    pub fn new(dt: f64) -> Self {
        DosingPlc {
            operator_setpoint_x100: 0,
            mode: mode::IDLE,
            last_chlorine_x100: 0,
            last_dose_permille: 0,
            pid: Pid::new(1.0, 0.02, 0.0).with_output_limits(0.0, 1.0),
            dt,
        }
    }

    /// The last residual reading, mg/L.
    #[must_use]
    pub fn last_chlorine_mg_l(&self) -> f64 {
        f64::from(self.last_chlorine_x100) / 100.0
    }

    /// The current mode register value.
    #[must_use]
    pub fn mode(&self) -> u16 {
        self.mode
    }
}

impl Device<WaterPlant> for DosingPlc {
    fn unit_id(&self) -> UnitId {
        units::DOSING_PLC
    }

    fn name(&self) -> &str {
        "dosing-plc"
    }

    fn poll(&mut self, _plant: &mut WaterPlant, outbox: &mut Outbox) {
        outbox.send(BusRequest::read(
            units::DOSING_PLC,
            units::RESIDUAL_SENSOR,
            residual::CHLORINE_X100,
            1,
        ));
        let dose = if self.mode == mode::RUN {
            self.pid.update(
                f64::from(self.operator_setpoint_x100) / 100.0,
                self.last_chlorine_mg_l(),
                self.dt,
            )
        } else {
            0.0
        };
        self.last_dose_permille = (dose * 1000.0).round() as u16;
        outbox.send(BusRequest::write(
            units::DOSING_PLC,
            units::DOSING_PUMP,
            pump::COMMAND_PERMILLE,
            self.last_dose_permille,
        ));
    }

    fn handle(&mut self, _plant: &mut WaterPlant, request: &BusRequest) -> BusResponse {
        match (request.function.is_write(), request.address) {
            (true, plc::OPERATOR_SETPOINT_X100) => {
                self.operator_setpoint_x100 = request.values[0];
                BusResponse::ok(request.values.clone())
            }
            (true, plc::MODE) => {
                self.mode = request.values[0];
                if self.mode == mode::IDLE {
                    self.pid.reset();
                }
                BusResponse::ok(request.values.clone())
            }
            (false, plc::OPERATOR_SETPOINT_X100) => {
                BusResponse::ok(vec![self.operator_setpoint_x100])
            }
            (false, plc::MODE) => BusResponse::ok(vec![self.mode]),
            (false, plc::CHLORINE_X100) => BusResponse::ok(vec![self.last_chlorine_x100]),
            (false, plc::DOSE_PERMILLE) => BusResponse::ok(vec![self.last_dose_permille]),
            _ => BusResponse::exception(ExceptionCode::IllegalDataAddress),
        }
    }

    fn on_response(&mut self, _plant: &mut WaterPlant, request: &BusRequest, resp: &BusResponse) {
        let Some(values) = resp.values() else {
            return;
        };
        if request.dst == units::RESIDUAL_SENSOR && request.address == residual::CHLORINE_X100 {
            self.last_chlorine_x100 = values[0];
        }
    }
}

/// The SCADA server: runs the dosing recipe, re-asserts it HMI-style,
/// polls the PLC for the operator display, and — when compromised —
/// replays scripted malicious writes.
#[derive(Debug)]
pub struct ScadaServer {
    recipe: Vec<ScheduledWrite>,
    malicious: Vec<ScheduledWrite>,
    monitor_every: u64,
    reassert_every: u64,
    now: Tick,
}

impl ScadaServer {
    /// Creates the server with a dosing recipe.
    #[must_use]
    pub fn new(recipe: Vec<ScheduledWrite>) -> Self {
        ScadaServer {
            recipe,
            malicious: Vec::new(),
            monitor_every: 10,
            reassert_every: 50,
            now: Tick::ZERO,
        }
    }

    /// The standard recipe: residual set point then run mode at `start`.
    #[must_use]
    pub fn standard_recipe(start: Tick, setpoint_x100: u16) -> Vec<ScheduledWrite> {
        vec![
            ScheduledWrite {
                at: start,
                dst: units::DOSING_PLC,
                address: plc::OPERATOR_SETPOINT_X100,
                value: setpoint_x100,
            },
            ScheduledWrite {
                at: start.next(),
                dst: units::DOSING_PLC,
                address: plc::MODE,
                value: mode::RUN,
            },
        ]
    }

    /// Adds compromised-server writes (builder style).
    #[must_use]
    pub fn with_malicious_writes(mut self, writes: Vec<ScheduledWrite>) -> Self {
        self.malicious = writes;
        self
    }
}

impl Device<WaterPlant> for ScadaServer {
    fn unit_id(&self) -> UnitId {
        units::SCADA_SERVER
    }

    fn name(&self) -> &str {
        "scada-server"
    }

    fn poll(&mut self, _plant: &mut WaterPlant, outbox: &mut Outbox) {
        self.now = self.now.next();
        for write in self.recipe.iter().chain(self.malicious.iter()) {
            if write.at == self.now {
                outbox.send(BusRequest::write(
                    units::SCADA_SERVER,
                    write.dst,
                    write.address,
                    write.value,
                ));
            }
        }
        if self.now.count() % self.reassert_every == 0 {
            let mut seen: Vec<(UnitId, u16)> = Vec::new();
            for write in self.recipe.iter().rev() {
                if write.at < self.now && !seen.contains(&(write.dst, write.address)) {
                    seen.push((write.dst, write.address));
                    outbox.send(BusRequest::write(
                        units::SCADA_SERVER,
                        write.dst,
                        write.address,
                        write.value,
                    ));
                }
            }
        }
        if self.now.count() % self.monitor_every == 0 {
            outbox.send(BusRequest::read(
                units::SCADA_SERVER,
                units::DOSING_PLC,
                plc::CHLORINE_X100,
                1,
            ));
            outbox.send(BusRequest::read(
                units::SCADA_SERVER,
                units::DOSING_PLC,
                plc::DOSE_PERMILLE,
                1,
            ));
        }
    }

    fn handle(&mut self, _plant: &mut WaterPlant, _request: &BusRequest) -> BusResponse {
        BusResponse::exception(ExceptionCode::IllegalFunction)
    }
}

/// Configuration of one water-treatment run.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterConfig {
    /// Kernel step, seconds.
    pub dt: f64,
    /// Operator residual set point, 0.01 mg/L counts.
    pub setpoint_x100: u16,
    /// Tick at which the server starts dosing.
    pub batch_start: Tick,
    /// Ticks allowed for the loop to settle before quality is measured.
    pub settle_ticks: u64,
    /// Ticks of the quality-measurement window.
    pub measure_ticks: u64,
    /// Seed for the analyzer noise.
    pub sensor_seed: u64,
    /// Whether the perimeter firewall enforces its rules.
    pub firewall_enabled: bool,
}

impl Default for WaterConfig {
    fn default() -> Self {
        WaterConfig {
            dt: 0.1,
            setpoint_x100: 100,
            batch_start: Tick::new(10),
            settle_ticks: 2500,
            measure_ticks: 1500,
            sensor_seed: 42,
            firewall_enabled: true,
        }
    }
}

impl WaterConfig {
    /// Total ticks of one run.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.batch_start.count() + self.settle_ticks + self.measure_ticks
    }
}

/// The quality of the treated water over the measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WaterQuality {
    /// Residual inside the potable window throughout.
    Nominal,
    /// Residual fell below the window (under-disinfected, short of
    /// breakthrough).
    OffSpecLow,
    /// Residual exceeded the window (taste/odor complaints, short of
    /// acute overdose).
    OffSpecHigh,
    /// A hazard latched: acute overdose or pathogen breakthrough.
    Unsafe,
}

impl WaterQuality {
    /// Canonical lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            WaterQuality::Nominal => "nominal",
            WaterQuality::OffSpecLow => "offspec-low",
            WaterQuality::OffSpecHigh => "offspec-high",
            WaterQuality::Unsafe => "unsafe",
        }
    }
}

impl fmt::Display for WaterQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The outcome of one water-treatment run.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterReport {
    /// Water quality classification.
    pub quality: WaterQuality,
    /// Hazard events that fired during the run.
    pub hazards: Vec<HazardEvent>,
    /// Whether the interlock's safe hold engaged.
    pub emergency_stopped: bool,
    /// Whether acute over-chlorination latched.
    pub overdosed: bool,
    /// Highest residual over the whole run, mg/L.
    pub max_chlorine_mg_l: f64,
    /// Lowest residual inside the measurement window, mg/L.
    pub window_min_mg_l: f64,
    /// Highest residual inside the measurement window, mg/L.
    pub window_max_mg_l: f64,
    /// Ticks executed.
    pub ticks: u64,
}

/// The assembled water-treatment system: basin, five stations, perimeter
/// firewall, hazard monitors.
pub struct WaterHarness {
    sim: Simulation<WaterPlant>,
    config: WaterConfig,
}

/// Applies a scenario's effects while the water harness is assembled,
/// mirroring the centrifuge mapping: `AllowWorkstationToSis` becomes the
/// server→interlock engineering-access misconfiguration, and
/// `CompromisedWorkstation` scripts the SCADA server.
pub(crate) fn apply_water_effects(
    attack: &AttackScenario,
    mut firewall: Firewall,
    mut server: ScadaServer,
    sim: &mut Simulation<WaterPlant>,
) -> (Firewall, ScadaServer) {
    for effect in &attack.effects {
        match effect {
            AttackEffect::ForceRegister {
                dst,
                address,
                value,
                from,
            } => sim.add_injector(RegisterOverride::new(
                attack.name.clone(),
                TickWindow::from(*from),
                *dst,
                *address,
                *value,
            )),
            AttackEffect::SpoofResponse {
                dst,
                address,
                value,
                from,
            } => sim.add_injector(ResponseOverride::new(
                attack.name.clone(),
                TickWindow::from(*from),
                *dst,
                *address,
                *value,
            )),
            AttackEffect::DropWrites { dst, from } => sim.add_injector(
                DropMatching::new(attack.name.clone(), TickWindow::from(*from), Some(*dst))
                    .writes_only(),
            ),
            AttackEffect::DisableFirewall => firewall.set_enabled(false),
            AttackEffect::AllowWorkstationToSis => {
                firewall = Firewall::new(FirewallAction::Deny)
                    .with_rule(
                        FirewallRule::any(FirewallAction::Allow)
                            .from_src(units::SCADA_SERVER)
                            .to_dst(units::INTERLOCK),
                    )
                    .merged_with(firewall);
            }
            AttackEffect::CompromisedWorkstation(writes) => {
                server = server.with_malicious_writes(writes.clone());
            }
        }
    }
    (firewall, server)
}

/// Builds the water firewall: server may reach the PLC; the controllers
/// may reach the field devices; everything else is denied.
pub(crate) fn water_firewall(enabled: bool) -> Firewall {
    let mut firewall = Firewall::new(FirewallAction::Deny).with_rule(
        FirewallRule::any(FirewallAction::Allow)
            .from_src(units::SCADA_SERVER)
            .to_dst(units::DOSING_PLC),
    );
    for controller in [units::DOSING_PLC, units::INTERLOCK] {
        for field in [units::RESIDUAL_SENSOR, units::DOSING_PUMP] {
            firewall = firewall.with_rule(
                FirewallRule::any(FirewallAction::Allow)
                    .from_src(controller)
                    .to_dst(field),
            );
        }
    }
    firewall.set_enabled(enabled);
    firewall
}

impl WaterHarness {
    /// Builds the nominal system (no attack).
    #[must_use]
    pub fn new(config: WaterConfig) -> Self {
        WaterHarness::build(config, None)
    }

    /// Builds the system with an attack scenario applied.
    #[must_use]
    pub fn with_attack(config: WaterConfig, attack: &AttackScenario) -> Self {
        WaterHarness::build(config, Some(attack))
    }

    fn build(config: WaterConfig, attack: Option<&AttackScenario>) -> Self {
        let mut sim = Simulation::new(WaterPlant::new(), config.dt);

        let mut firewall = water_firewall(config.firewall_enabled);
        let mut server = ScadaServer::new(ScadaServer::standard_recipe(
            config.batch_start,
            config.setpoint_x100,
        ));
        if let Some(attack) = attack {
            let build = apply_water_effects(attack, firewall, server, &mut sim);
            firewall = build.0;
            server = build.1;
        }
        sim.set_firewall(firewall);

        sim.add_device(ResidualSensor::new(config.sensor_seed));
        sim.add_device(DosingPump::new());
        sim.add_device(Interlock::new());
        sim.add_device(DosingPlc::new(config.dt));
        sim.add_device(server);

        sim.add_monitor(HazardMonitor::new("chlorine-overdose", |p: &WaterPlant| {
            p.has_overdosed()
        }));
        sim.add_monitor(HazardMonitor::new(
            "pathogen-breakthrough",
            |p: &WaterPlant| p.pathogen_breakthrough(),
        ));

        sim.probe("chlorine_mg_l", WaterPlant::chlorine_mg_l);
        sim.probe("dose", WaterPlant::dose);

        WaterHarness { sim, config }
    }

    /// The underlying simulation (plant state, bus log, trace).
    #[must_use]
    pub fn sim(&self) -> &Simulation<WaterPlant> {
        &self.sim
    }

    /// Mutable access to the underlying simulation.
    pub fn sim_mut(&mut self) -> &mut Simulation<WaterPlant> {
        &mut self.sim
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &WaterConfig {
        &self.config
    }

    /// Runs one full batch and classifies the outcome.
    pub fn run_batch(&mut self) -> WaterReport {
        self.run_batch_for(self.config.total_ticks())
    }

    /// Runs for an explicit number of ticks and classifies the outcome;
    /// the quality window is the final
    /// [`measure_ticks`](WaterConfig::measure_ticks) of the run.
    pub fn run_batch_for(&mut self, ticks: u64) -> WaterReport {
        let window_start = ticks.saturating_sub(self.config.measure_ticks);
        let mut max_chlorine = f64::NEG_INFINITY;
        let mut window_min = f64::INFINITY;
        let mut window_max = f64::NEG_INFINITY;
        for tick in 0..ticks {
            self.sim.step();
            let plant = self.sim.plant();
            max_chlorine = max_chlorine.max(plant.chlorine_mg_l());
            if tick >= window_start {
                window_min = window_min.min(plant.chlorine_mg_l());
                window_max = window_max.max(plant.chlorine_mg_l());
            }
        }
        let plant = self.sim.plant();
        let quality = if plant.has_overdosed() || plant.pathogen_breakthrough() {
            WaterQuality::Unsafe
        } else if window_min < WaterPlant::WINDOW_LOW_MG_L {
            WaterQuality::OffSpecLow
        } else if window_max > WaterPlant::WINDOW_HIGH_MG_L {
            WaterQuality::OffSpecHigh
        } else {
            WaterQuality::Nominal
        };
        WaterReport {
            quality,
            hazards: self.sim.hazards().to_vec(),
            emergency_stopped: plant.is_stopped(),
            overdosed: plant.has_overdosed(),
            max_chlorine_mg_l: max_chlorine,
            window_min_mg_l: window_min,
            window_max_mg_l: window_max,
            ticks,
        }
    }
}

impl fmt::Debug for WaterHarness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaterHarness")
            .field("config", &self.config)
            .field("now", &self.sim.now())
            .finish()
    }
}

/// CWE-78 / CAPEC-88 — command injection on the dosing PLC: the pump
/// command writes are forced to full stroke. The interlock catches the
/// rising residual and closes the shutoff: off-spec water, no hazard.
#[must_use]
pub fn dosing_command_injection(from: Tick) -> AttackScenario {
    dosing_command_injection_with(from, 1000)
}

/// [`dosing_command_injection`] with an explicit forced stroke.
#[must_use]
pub fn dosing_command_injection_with(from: Tick, stroke_permille: u16) -> AttackScenario {
    AttackScenario {
        name: "dosing-command-injection".into(),
        description: "injected command on the dosing PLC forces pump stroke writes to full; \
                      the hardwired interlock trips the shutoff"
            .into(),
        weakness_ids: vec!["CWE-78".into(), "CWE-20".into()],
        pattern_ids: vec!["CAPEC-88".into(), "CAPEC-248".into()],
        target_component: names::PLC.into(),
        effects: vec![AttackEffect::ForceRegister {
            dst: units::DOSING_PUMP,
            address: pump::COMMAND_PERMILLE,
            value: stroke_permille,
            from,
        }],
    }
}

/// CAPEC-441 / CWE-306 — disable the dosing interlock through its
/// engineering register, then force the pump to full stroke: acute
/// over-chlorination with nothing left to trip.
#[must_use]
pub fn interlock_disable_overdose(disable_at: Tick, inject_from: Tick) -> AttackScenario {
    AttackScenario {
        name: "interlock-disable-overdose".into(),
        description: "compromised SCADA server disables the dosing interlock, then forced \
                      full-stroke dosing drives the residual past the acute threshold"
            .into(),
        weakness_ids: vec!["CWE-306".into(), "CWE-78".into()],
        pattern_ids: vec!["CAPEC-441".into(), "CAPEC-88".into()],
        target_component: names::INTERLOCK.into(),
        effects: vec![
            AttackEffect::AllowWorkstationToSis,
            AttackEffect::CompromisedWorkstation(vec![ScheduledWrite {
                at: disable_at,
                dst: units::INTERLOCK,
                address: interlock::ENABLED,
                value: 0,
            }]),
            AttackEffect::ForceRegister {
                dst: units::DOSING_PUMP,
                address: pump::COMMAND_PERMILLE,
                value: 1000,
                from: inject_from,
            },
        ],
    }
}

/// CAPEC-148 / CWE-311 — spoof the shared residual analyzer low; the PLC
/// doses at full stroke to chase the forged reading and the interlock,
/// blind on the same channel, never trips.
#[must_use]
pub fn residual_sensor_spoof(from: Tick) -> AttackScenario {
    residual_sensor_spoof_with(from, 20)
}

/// [`residual_sensor_spoof`] with an explicit forged reading (0.01 mg/L
/// counts).
#[must_use]
pub fn residual_sensor_spoof_with(from: Tick, value_x100: u16) -> AttackScenario {
    AttackScenario {
        name: "residual-sensor-spoof".into(),
        description: "adversary-in-the-middle forges the residual analyzer low; the dosing \
                      loop overdoses while the interlock reads the same forged channel"
            .into(),
        weakness_ids: vec!["CWE-311".into(), "CWE-20".into()],
        pattern_ids: vec!["CAPEC-148".into(), "CAPEC-94".into()],
        target_component: names::RESIDUAL.into(),
        effects: vec![AttackEffect::SpoofResponse {
            dst: units::RESIDUAL_SENSOR,
            address: residual::CHLORINE_X100,
            value: value_x100,
            from,
        }],
    }
}

/// CAPEC-125 / CWE-400 — denial of service on the pump command path;
/// the stroke watchdog fails safe to zero, disinfection is lost, and
/// pathogen breakthrough latches.
#[must_use]
pub fn dosing_dos(from: Tick) -> AttackScenario {
    AttackScenario {
        name: "dosing-dos".into(),
        description: "write requests to the dosing pump are flooded/dropped; the stroke \
                      watchdog zeroes the dose and the residual collapses"
            .into(),
        weakness_ids: vec!["CWE-400".into()],
        pattern_ids: vec!["CAPEC-125".into()],
        target_component: names::PLC.into(),
        effects: vec![AttackEffect::DropWrites {
            dst: units::DOSING_PUMP,
            from,
        }],
    }
}

/// Every built-in water scenario, at its default timing.
#[must_use]
pub fn all_water_scenarios() -> Vec<AttackScenario> {
    vec![
        dosing_command_injection(Tick::new(3000)),
        interlock_disable_overdose(Tick::new(100), Tick::new(3000)),
        residual_sensor_spoof(Tick::new(100)),
        dosing_dos(Tick::new(500)),
    ]
}

/// Builds the water-treatment system model (promoted from the example,
/// extended with the dosing interlock and residual analyzer the running
/// system has).
#[must_use]
pub fn water_model() -> SystemModel {
    SystemModelBuilder::new("water-treatment")
        .component_with(names::BUSINESS, ComponentKind::Network, |c| {
            c.with_entry_point(true).with_attribute(Attribute::new(
                AttributeKind::Function,
                "business IT network",
            ))
        })
        .component_with(names::SCADA_SERVER, ComponentKind::Server, |c| {
            c.with_criticality(Criticality::High)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "dosing supervision and operator monitoring",
                ))
                .with_attribute(Attribute::new(AttributeKind::OperatingSystem, "Windows 7"))
                .with_attribute(
                    Attribute::new(AttributeKind::Software, "historian database")
                        .at_fidelity(Fidelity::Architectural),
                )
        })
        .component_with(names::FIREWALL, ComponentKind::Firewall, |c| {
            c.with_criticality(Criticality::High)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "isolates the business network from the treatment control network",
                ))
                .with_attribute(
                    Attribute::new(AttributeKind::Product, "Cisco ASA")
                        .at_fidelity(Fidelity::Implementation),
                )
        })
        .component_with(names::PLC, ComponentKind::Controller, |c| {
            c.with_criticality(Criticality::SafetyCritical)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "chlorine dosing control",
                ))
                .with_attribute(
                    Attribute::new(AttributeKind::Protocol, "MODBUS")
                        .at_fidelity(Fidelity::Architectural),
                )
                .with_attribute(
                    Attribute::new(AttributeKind::OperatingSystem, "NI RT Linux OS")
                        .at_fidelity(Fidelity::Implementation),
                )
        })
        .component_with(names::INTERLOCK, ComponentKind::SafetySystem, |c| {
            c.with_criticality(Criticality::SafetyCritical)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "hardwired residual interlock for the dosing loop",
                ))
                .with_attribute(
                    Attribute::new(AttributeKind::Hardware, "NI cRIO 9063")
                        .at_fidelity(Fidelity::Implementation),
                )
                .with_attribute(
                    Attribute::new(AttributeKind::OperatingSystem, "NI RT Linux OS")
                        .at_fidelity(Fidelity::Implementation),
                )
        })
        .component_with(names::PUMP, ComponentKind::Actuator, |c| {
            c.with_criticality(Criticality::SafetyCritical)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "chlorine dosing into the contact basin",
                ))
        })
        .component_with(names::RESIDUAL, ComponentKind::Sensor, |c| {
            c.with_criticality(Criticality::High)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "monitors residual chlorine concentration",
                ))
                .with_attribute(
                    Attribute::new(AttributeKind::Product, "amperometric chlorine analyzer")
                        .at_fidelity(Fidelity::Architectural),
                )
        })
        .component_with(names::TURBIDITY, ComponentKind::Sensor, |c| {
            c.with_attribute(Attribute::new(
                AttributeKind::Function,
                "monitors filter effluent turbidity",
            ))
        })
        .channel(names::BUSINESS, names::FIREWALL, ChannelKind::Ethernet)
        .channel(names::FIREWALL, names::SCADA_SERVER, ChannelKind::Ethernet)
        .channel(names::SCADA_SERVER, names::PLC, ChannelKind::Ethernet)
        .channel(names::SCADA_SERVER, names::INTERLOCK, ChannelKind::Ethernet)
        .channel(names::PLC, names::PUMP, ChannelKind::Analog)
        .channel(names::PLC, names::RESIDUAL, ChannelKind::Analog)
        .channel(names::PLC, names::TURBIDITY, ChannelKind::Analog)
        .channel(names::INTERLOCK, names::RESIDUAL, ChannelKind::Analog)
        .channel(names::INTERLOCK, names::PUMP, ChannelKind::Analog)
        .build()
        .expect("the water model is well-formed")
}

/// Maps a water-model component name to its bus unit, when it has one.
#[must_use]
pub fn unit_for_component(component: &str) -> Option<UnitId> {
    match component {
        names::SCADA_SERVER => Some(units::SCADA_SERVER),
        names::INTERLOCK => Some(units::INTERLOCK),
        names::PLC => Some(units::DOSING_PLC),
        names::RESIDUAL => Some(units::RESIDUAL_SENSOR),
        names::PUMP => Some(units::DOSING_PUMP),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_model_matches_the_expected_table_1_counts() {
        // Table-1-style rows for the water testbed: per-component
        // `(patterns, weaknesses, vulnerabilities)` counts against the
        // seed corpus at implementation fidelity. Pinned so attribute or
        // corpus edits that shift the attack surface fail loudly here.
        let expected = [
            ("business network", 0, 0, 1),
            ("scada server", 2, 1, 6),
            ("perimeter firewall", 3, 0, 6),
            ("dosing plc", 4, 1, 6),
            ("dosing interlock", 1, 1, 6),
            ("chlorine pump", 0, 0, 0),
            ("residual sensor", 1, 0, 0),
            ("turbidity sensor", 1, 0, 0),
        ];
        let corpus = cpssec_attackdb::seed::seed_corpus();
        let engine = cpssec_search::SearchEngine::build(&corpus);
        let measured: Vec<(String, usize, usize, usize)> = engine
            .match_model(&water_model(), cpssec_model::Fidelity::Implementation)
            .into_iter()
            .map(|(component, set)| {
                let (p, w, v) = set.counts();
                (component, p, w, v)
            })
            .collect();
        let expected: Vec<(String, usize, usize, usize)> = expected
            .into_iter()
            .map(|(c, p, w, v)| (c.to_owned(), p, w, v))
            .collect();
        assert_eq!(measured, expected);
    }

    #[test]
    fn nominal_run_holds_the_residual_window() {
        let mut harness = WaterHarness::new(WaterConfig::default());
        let report = harness.run_batch();
        assert_eq!(report.quality, WaterQuality::Nominal, "{report:?}");
        assert!(report.hazards.is_empty());
        assert!(!report.emergency_stopped);
        assert!(report.window_min_mg_l >= WaterPlant::WINDOW_LOW_MG_L);
        assert!(report.window_max_mg_l <= WaterPlant::WINDOW_HIGH_MG_L);
        // The loop regulates near the 1.0 mg/L set point.
        assert!((harness.sim().plant().chlorine_mg_l() - 1.0).abs() < 0.1);
    }

    #[test]
    fn run_is_deterministic() {
        let run = || {
            let mut harness = WaterHarness::new(WaterConfig::default());
            harness.run_batch()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn command_injection_is_contained_by_the_interlock() {
        let attack = dosing_command_injection(Tick::new(3000));
        let mut harness = WaterHarness::with_attack(WaterConfig::default(), &attack);
        let report = harness.run_batch_for(6000);
        assert!(report.emergency_stopped, "{report:?}");
        assert!(!report.overdosed);
        assert!(report.hazards.is_empty(), "interlock should trip first");
        assert_eq!(report.quality, WaterQuality::OffSpecHigh);
    }

    #[test]
    fn interlock_disable_reaches_the_overdose_hazard() {
        let attack = interlock_disable_overdose(Tick::new(100), Tick::new(3000));
        let mut harness = WaterHarness::with_attack(WaterConfig::default(), &attack);
        let report = harness.run_batch_for(6000);
        assert!(
            !report.emergency_stopped,
            "interlock is disabled: {report:?}"
        );
        assert!(report.overdosed);
        assert!(report
            .hazards
            .iter()
            .any(|h| h.hazard == "chlorine-overdose"));
        assert_eq!(report.quality, WaterQuality::Unsafe);
    }

    #[test]
    fn sensor_spoof_blinds_loop_and_interlock() {
        let attack = residual_sensor_spoof(Tick::new(100));
        let mut harness = WaterHarness::with_attack(WaterConfig::default(), &attack);
        let report = harness.run_batch_for(6000);
        assert!(!report.emergency_stopped, "{report:?}");
        assert!(report.overdosed);
        assert_eq!(report.quality, WaterQuality::Unsafe);
    }

    #[test]
    fn dosing_dos_loses_disinfection() {
        let attack = dosing_dos(Tick::new(500));
        let mut harness = WaterHarness::with_attack(WaterConfig::default(), &attack);
        let report = harness.run_batch_for(6000);
        assert!(
            report
                .hazards
                .iter()
                .any(|h| h.hazard == "pathogen-breakthrough"),
            "{report:?}"
        );
        assert_eq!(report.quality, WaterQuality::Unsafe);
        assert!(!report.overdosed);
    }

    #[test]
    fn server_to_interlock_write_is_blocked_without_the_misconfiguration() {
        let mut attack = interlock_disable_overdose(Tick::new(100), Tick::new(3000));
        attack
            .effects
            .retain(|e| !matches!(e, AttackEffect::AllowWorkstationToSis));
        let mut harness = WaterHarness::with_attack(WaterConfig::default(), &attack);
        let report = harness.run_batch_for(6000);
        assert!(
            report.emergency_stopped,
            "firewall should protect the interlock: {report:?}"
        );
        assert!(!report.overdosed);
    }

    #[test]
    fn pump_watchdog_fails_safe_without_commands() {
        let mut plant = WaterPlant::new();
        let mut p = DosingPump::new();
        p.handle(
            &mut plant,
            &BusRequest::write(
                units::DOSING_PLC,
                units::DOSING_PUMP,
                pump::COMMAND_PERMILLE,
                400,
            ),
        );
        let mut outbox = Outbox::default();
        p.poll(&mut plant, &mut outbox);
        assert!((plant.dose() - 0.4).abs() < 1e-9);
        for _ in 0..DosingPump::WATCHDOG_TICKS + 1 {
            p.poll(&mut plant, &mut outbox);
        }
        assert_eq!(plant.dose(), 0.0, "watchdog should zero the stroke");
    }

    #[test]
    fn interlock_trips_and_latches_on_high_residual() {
        let mut plant = WaterPlant::new();
        let mut il = Interlock::new();
        let req = BusRequest::read(
            units::INTERLOCK,
            units::RESIDUAL_SENSOR,
            residual::CHLORINE_X100,
            1,
        );
        il.on_response(&mut plant, &req, &BusResponse::ok(vec![320]));
        let mut outbox = Outbox::default();
        il.poll(&mut plant, &mut outbox);
        assert!(il.is_tripped());
        assert!(outbox
            .requests()
            .iter()
            .any(|r| r.dst == units::DOSING_PUMP && r.address == pump::SHUTOFF));
        // Latched: later polls go quiet.
        il.on_response(&mut plant, &req, &BusResponse::ok(vec![100]));
        let mut outbox2 = Outbox::default();
        il.poll(&mut plant, &mut outbox2);
        assert!(outbox2.is_empty());
        assert!(il.is_tripped());
    }

    #[test]
    fn disabled_interlock_ignores_violations() {
        let mut plant = WaterPlant::new();
        let mut il = Interlock::new();
        il.handle(
            &mut plant,
            &BusRequest::write(units::SCADA_SERVER, units::INTERLOCK, interlock::ENABLED, 0),
        );
        assert!(!il.is_enabled());
        let req = BusRequest::read(
            units::INTERLOCK,
            units::RESIDUAL_SENSOR,
            residual::CHLORINE_X100,
            1,
        );
        il.on_response(&mut plant, &req, &BusResponse::ok(vec![500]));
        let mut outbox = Outbox::default();
        il.poll(&mut plant, &mut outbox);
        assert!(!il.is_tripped());
        assert!(outbox.is_empty());
    }

    #[test]
    fn safe_hold_freezes_the_basin() {
        let mut p = WaterPlant::new();
        p.set_dose(1.0);
        for _ in 0..100 {
            p.integrate(0.1);
        }
        let before = p.chlorine_mg_l();
        p.emergency_stop();
        p.set_dose(1.0); // ignored
        for _ in 0..100 {
            p.integrate(0.1);
        }
        assert_eq!(p.chlorine_mg_l(), before);
        assert_eq!(p.dose(), 0.0);
        assert!(p.is_stopped());
    }

    #[test]
    fn model_topology_and_scenario_targets_agree() {
        let model = water_model();
        assert_eq!(model.component_count(), 8);
        assert_eq!(model.channel_count(), 9);
        model.validate().unwrap();
        let entries = model.entry_points();
        assert_eq!(entries.len(), 1);
        assert_eq!(model.component(entries[0]).unwrap().name(), names::BUSINESS);
        for scenario in all_water_scenarios() {
            assert!(
                model
                    .component_by_name(&scenario.target_component)
                    .is_some(),
                "scenario `{}` targets unknown component `{}`",
                scenario.name,
                scenario.target_component
            );
            assert!(scenario.weakness_ids.iter().all(|w| w.starts_with("CWE-")));
            assert!(scenario.pattern_ids.iter().all(|p| p.starts_with("CAPEC-")));
        }
    }

    #[test]
    fn every_bus_component_has_a_path_from_the_entry_point() {
        let model = water_model();
        let entry = model.component_id(names::BUSINESS).unwrap();
        for (component, _) in [
            (names::SCADA_SERVER, ()),
            (names::INTERLOCK, ()),
            (names::PLC, ()),
            (names::RESIDUAL, ()),
            (names::PUMP, ()),
        ] {
            assert!(unit_for_component(component).is_some());
            let target = model.component_id(component).unwrap();
            assert!(
                model.shortest_path(entry, target).is_some(),
                "no path to {component}"
            );
        }
        assert!(unit_for_component(names::TURBIDITY).is_none());
    }
}
