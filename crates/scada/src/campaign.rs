//! Monte-Carlo attack campaigns over the centrifuge testbed.
//!
//! A campaign runs N scenarios, each drawing an attack class, injection
//! tick, attack magnitude, and sensor-noise seed from its own
//! [`SplitMix64`] stream seeded by [`derive_seed`]`(campaign_seed, i)`.
//! Scenario *i* is therefore a pure function of `(campaign_seed, i)`:
//! it can be replayed standalone ([`run_scenario`]) and must reproduce
//! its in-fleet record bit-for-bit, and the whole campaign produces
//! identical records at any thread count ([`run_campaign`]).
//!
//! This is the paper's consequence analysis at distribution scale:
//! instead of one trajectory per attack story, each class yields
//! P(hazard | class) and a time-to-hazard distribution.

use core::fmt;
use std::sync::atomic::AtomicU64;

use cpssec_sim::{derive_seed, run_fleet, SplitMix64, Tick};

use crate::attacks::{self, AttackScenario};
use crate::system::{ProductQuality, ScadaConfig, ScadaHarness};

/// The attack classes a campaign samples from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttackClass {
    /// No attack — the baseline batch.
    Nominal,
    /// CWE-78 command injection on the BPCS, SIS armed.
    CommandInjection,
    /// Triton-style SIS disable followed by the same injection.
    SisDisabledInjection,
    /// Spoofed temperature probe blinding both controllers.
    SensorSpoof,
    /// Operator set point tampered just past product tolerance.
    SetpointTamper,
    /// Denial of service on the chiller command path.
    CoolingDos,
    /// Chiller command forced high — overcooled, viscous product.
    ChillerTamper,
}

impl AttackClass {
    /// Every class, in canonical order.
    pub const ALL: [AttackClass; 7] = [
        AttackClass::Nominal,
        AttackClass::CommandInjection,
        AttackClass::SisDisabledInjection,
        AttackClass::SensorSpoof,
        AttackClass::SetpointTamper,
        AttackClass::CoolingDos,
        AttackClass::ChillerTamper,
    ];

    /// Canonical kebab-case name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AttackClass::Nominal => "nominal",
            AttackClass::CommandInjection => "command-injection",
            AttackClass::SisDisabledInjection => "sis-disabled-injection",
            AttackClass::SensorSpoof => "sensor-spoof",
            AttackClass::SetpointTamper => "setpoint-tamper",
            AttackClass::CoolingDos => "cooling-dos",
            AttackClass::ChillerTamper => "chiller-tamper",
        }
    }

    /// Parses a canonical name back to a class.
    #[must_use]
    pub fn parse(name: &str) -> Option<AttackClass> {
        AttackClass::ALL.into_iter().find(|c| c.as_str() == name)
    }
}

impl fmt::Display for AttackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Parameters of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Number of scenarios to run.
    pub scenarios: u64,
    /// Campaign seed; every scenario seed derives from it.
    pub seed: u64,
    /// Classes sampled uniformly per scenario.
    pub classes: Vec<AttackClass>,
    /// Ticks each scenario runs for.
    pub max_ticks: u64,
    /// Worker threads ([`run_campaign`] only; never affects results).
    pub threads: usize,
}

impl CampaignSpec {
    /// A spec over every attack class with the default horizon and one
    /// thread per available core.
    #[must_use]
    pub fn new(scenarios: u64, seed: u64) -> Self {
        CampaignSpec {
            scenarios,
            seed,
            classes: AttackClass::ALL.to_vec(),
            max_ticks: 6000,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }
}

/// The outcome of one scenario — everything the aggregate layer needs,
/// and nothing scheduling-dependent.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// Scenario index within the campaign.
    pub index: u64,
    /// The derived per-scenario seed.
    pub seed: u64,
    /// Sampled attack class.
    pub class: AttackClass,
    /// Sampled injection tick (0 for [`AttackClass::Nominal`]).
    pub inject_tick: u64,
    /// Sampled class-specific magnitude (rpm, tenths of °C, or per
    /// mille; 0 where the class has no magnitude axis).
    pub magnitude: u16,
    /// Product quality classification.
    pub product: ProductQuality,
    /// First hazard, as `(name, tick)`, if any fired.
    pub hazard: Option<(String, u64)>,
    /// Whether the SIS emergency stop engaged.
    pub emergency_stopped: bool,
    /// Ticks executed.
    pub ticks: u64,
}

impl ScenarioRecord {
    /// Ticks from injection to the first hazard, if one fired.
    #[must_use]
    pub fn ticks_to_hazard(&self) -> Option<u64> {
        self.hazard
            .as_ref()
            .map(|&(_, at)| at.saturating_sub(self.inject_tick))
    }
}

/// Builds the attack for one scenario's draws. `None` means nominal.
fn build_attack(
    class: AttackClass,
    inject_tick: u64,
    magnitude: u16,
    disable_at: u64,
) -> Option<AttackScenario> {
    let from = Tick::new(inject_tick);
    match class {
        AttackClass::Nominal => None,
        AttackClass::CommandInjection => {
            Some(attacks::command_injection_bpcs_with(from, magnitude))
        }
        AttackClass::SisDisabledInjection => {
            Some(attacks::command_injection_with_sis_disabled_with(
                Tick::new(disable_at),
                from,
                magnitude,
            ))
        }
        AttackClass::SensorSpoof => Some(attacks::sensor_spoof_with(from, magnitude)),
        AttackClass::SetpointTamper => Some(attacks::setpoint_tamper_with(from, magnitude)),
        AttackClass::CoolingDos => Some(attacks::cooling_dos(from)),
        AttackClass::ChillerTamper => Some(attacks::chiller_tamper_with(from, magnitude)),
    }
}

/// The magnitude range sampled for a class (`lo..hi`), or `None` when
/// the class has no magnitude axis.
fn magnitude_range(class: AttackClass) -> Option<(u64, u64)> {
    match class {
        AttackClass::Nominal | AttackClass::CoolingDos => None,
        // Forced set point beyond the 10,200 rpm overspeed threshold.
        AttackClass::CommandInjection | AttackClass::SisDisabledInjection => Some((10_300, 11_000)),
        // Forged in-window reading, tenths of °C.
        AttackClass::SensorSpoof => Some((300, 400)),
        // Just past the ±20 rpm product tolerance.
        AttackClass::SetpointTamper => Some((8030, 8200)),
        // Chiller forced well above the thermal equilibrium need.
        AttackClass::ChillerTamper => Some((500, 1000)),
    }
}

/// Runs scenario `index` of the campaign standalone, bit-for-bit equal
/// to its in-fleet execution.
#[must_use]
pub fn run_scenario(spec: &CampaignSpec, index: u64) -> ScenarioRecord {
    let seed = derive_seed(spec.seed, index);
    let mut rng = SplitMix64::new(seed);

    assert!(
        !spec.classes.is_empty(),
        "campaign needs at least one class"
    );
    let class = spec.classes[rng.gen_range(0, spec.classes.len() as u64) as usize];
    let (inject_tick, magnitude, disable_at) = if class == AttackClass::Nominal {
        (0, 0, 0)
    } else {
        let inject_tick = rng.gen_range(100, 3000);
        let magnitude = magnitude_range(class).map_or(0, |(lo, hi)| rng.gen_range(lo, hi) as u16);
        // SIS disable lands during warm-up, always before the injection.
        let disable_at = rng.gen_range(50, 100);
        (inject_tick, magnitude, disable_at)
    };
    let sensor_seed = rng.next_u64();

    let config = ScadaConfig {
        sensor_seed,
        ..ScadaConfig::default()
    };
    let attack = build_attack(class, inject_tick, magnitude, disable_at);
    let mut harness = match &attack {
        Some(attack) => ScadaHarness::with_attack(config, attack),
        None => ScadaHarness::new(config),
    };
    // Fleets only need outcomes; per-tick probe columns would dominate
    // the memory bill at thousands of scenarios.
    harness.sim_mut().set_trace_enabled(false);
    let report = harness.run_batch_for(spec.max_ticks);

    ScenarioRecord {
        index,
        seed,
        class,
        inject_tick,
        magnitude,
        product: report.product,
        hazard: report
            .hazards
            .first()
            .map(|h| (h.hazard.clone(), h.at.count())),
        emergency_stopped: report.emergency_stopped,
        ticks: report.ticks,
    }
}

/// Runs the whole campaign across `spec.threads` workers; records come
/// back in index order and are identical at any thread count.
#[must_use]
pub fn run_campaign(spec: &CampaignSpec) -> Vec<ScenarioRecord> {
    run_campaign_with_progress(spec, None)
}

/// [`run_campaign`] with an optional live progress counter, incremented
/// once per completed scenario (poll it from another thread).
#[must_use]
pub fn run_campaign_with_progress(
    spec: &CampaignSpec,
    progress: Option<&AtomicU64>,
) -> Vec<ScenarioRecord> {
    run_fleet(
        spec.scenarios,
        spec.seed,
        spec.threads,
        progress,
        |index, _seed| run_scenario(spec, index),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            scenarios: 24,
            seed: 0xC0FFEE,
            threads: 3,
            ..CampaignSpec::new(24, 0xC0FFEE)
        }
    }

    #[test]
    fn class_names_round_trip() {
        for class in AttackClass::ALL {
            assert_eq!(AttackClass::parse(class.as_str()), Some(class));
        }
        assert_eq!(AttackClass::parse("no-such-class"), None);
    }

    #[test]
    fn records_are_identical_at_any_thread_count() {
        let spec = small_spec();
        let three = run_campaign(&spec);
        let one = run_campaign(&CampaignSpec {
            threads: 1,
            ..spec.clone()
        });
        let five = run_campaign(&CampaignSpec { threads: 5, ..spec });
        assert_eq!(three, one);
        assert_eq!(three, five);
    }

    #[test]
    fn standalone_replay_matches_the_fleet() {
        let spec = small_spec();
        let fleet = run_campaign(&spec);
        for index in [0, 7, 23] {
            assert_eq!(fleet[index as usize], run_scenario(&spec, index));
        }
    }

    #[test]
    fn campaign_covers_classes_and_finds_hazards() {
        let mut spec = CampaignSpec::new(40, 7);
        spec.threads = 2;
        let records = run_campaign(&spec);
        assert_eq!(records.len(), 40);
        let classes: std::collections::BTreeSet<AttackClass> =
            records.iter().map(|r| r.class).collect();
        assert!(classes.len() >= 5, "40 draws should hit most classes");
        // SIS-disabled overspeed always reaches the hazard inside the
        // horizon, so a 40-scenario campaign has hazards.
        assert!(records.iter().any(|r| r.hazard.is_some()));
        // Nominal scenarios never produce hazards.
        assert!(records
            .iter()
            .filter(|r| r.class == AttackClass::Nominal)
            .all(|r| r.hazard.is_none() && r.product == ProductQuality::Nominal));
    }

    #[test]
    fn ticks_to_hazard_is_relative_to_injection() {
        let record = ScenarioRecord {
            index: 0,
            seed: 0,
            class: AttackClass::CommandInjection,
            inject_tick: 500,
            magnitude: 10_500,
            product: ProductQuality::Destroyed,
            hazard: Some(("rotor-overspeed".into(), 740)),
            emergency_stopped: false,
            ticks: 6000,
        };
        assert_eq!(record.ticks_to_hazard(), Some(240));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_class_list_is_rejected() {
        let mut spec = CampaignSpec::new(1, 1);
        spec.classes.clear();
        let _ = run_scenario(&spec, 0);
    }
}
