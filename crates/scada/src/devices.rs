//! Field devices: temperature probe, centrifuge drive, cooling unit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cpssec_sim::{BusRequest, BusResponse, Device, ExceptionCode, Outbox, Pid, UnitId};

use crate::addresses::{self, centrifuge, cooling, temp_sensor};
use crate::CentrifugePlant;

/// The precision passive temperature probe (±0.2 °C).
///
/// Serves the measured solution temperature at
/// [`temp_sensor::TEMPERATURE_X10`] in 0.1 °C counts. Measurement noise is
/// Gaussian-ish (sum of uniforms), seeded, with σ ≈ 0.07 °C so three sigma
/// stays inside the datasheet ±0.2 °C.
#[derive(Debug)]
pub struct TemperatureSensor {
    rng: StdRng,
    offset_c: f64,
}

impl TemperatureSensor {
    /// Creates the probe with a noise seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TemperatureSensor {
            rng: StdRng::seed_from_u64(seed),
            offset_c: 0.0,
        }
    }

    /// Applies a calibration offset (fault injection: a miscalibrated or
    /// drifted probe).
    #[must_use]
    pub fn with_offset(mut self, offset_c: f64) -> Self {
        self.offset_c = offset_c;
        self
    }

    fn noise(&mut self) -> f64 {
        // Irwin–Hall(3) centered: variance 3/12, scaled to σ ≈ 0.07 °C.
        let sum: f64 = (0..3).map(|_| self.rng.gen::<f64>()).sum::<f64>() - 1.5;
        sum * 0.14
    }
}

impl Device<CentrifugePlant> for TemperatureSensor {
    fn unit_id(&self) -> UnitId {
        addresses::TEMP_SENSOR
    }

    fn name(&self) -> &str {
        "temperature-sensor"
    }

    fn poll(&mut self, _plant: &mut CentrifugePlant, _outbox: &mut Outbox) {}

    fn handle(&mut self, plant: &mut CentrifugePlant, request: &BusRequest) -> BusResponse {
        if request.function.is_write() {
            return BusResponse::exception(ExceptionCode::IllegalFunction);
        }
        if request.address != temp_sensor::TEMPERATURE_X10 {
            return BusResponse::exception(ExceptionCode::IllegalDataAddress);
        }
        let measured = plant.temperature_c() + self.offset_c + self.noise();
        let counts = (measured * 10.0).round().clamp(0.0, f64::from(u16::MAX));
        BusResponse::ok(vec![counts as u16])
    }
}

/// The variable speed centrifuge drive with its local speed loop.
///
/// Accepts a set point at [`centrifuge::SETPOINT_RPM`], serves the measured
/// speed at [`centrifuge::SPEED_RPM`], and latches the plant emergency stop
/// on a write to [`centrifuge::ESTOP`]. The internal PI loop regulates to
/// within ±1 rpm of the set point (the paper's drive spec).
#[derive(Debug)]
pub struct CentrifugeDrive {
    setpoint_rpm: f64,
    pid: Pid,
    dt: f64,
}

impl CentrifugeDrive {
    /// Creates the drive; `dt` is the kernel step in seconds.
    #[must_use]
    pub fn new(dt: f64) -> Self {
        CentrifugeDrive {
            setpoint_rpm: 0.0,
            pid: Pid::new(0.0004, 0.0007, 0.0).with_output_limits(0.0, 1.0),
            dt,
        }
    }

    /// The currently commanded set point.
    #[must_use]
    pub fn setpoint_rpm(&self) -> f64 {
        self.setpoint_rpm
    }
}

impl Device<CentrifugePlant> for CentrifugeDrive {
    fn unit_id(&self) -> UnitId {
        addresses::CENTRIFUGE
    }

    fn name(&self) -> &str {
        "centrifuge-drive"
    }

    fn poll(&mut self, plant: &mut CentrifugePlant, _outbox: &mut Outbox) {
        let drive = self
            .pid
            .update(self.setpoint_rpm, plant.speed_rpm(), self.dt);
        plant.set_drive(drive);
    }

    fn handle(&mut self, plant: &mut CentrifugePlant, request: &BusRequest) -> BusResponse {
        match (request.function.is_write(), request.address) {
            (true, centrifuge::SETPOINT_RPM) => {
                self.setpoint_rpm = f64::from(request.values[0]);
                BusResponse::ok(request.values.clone())
            }
            (true, centrifuge::ESTOP) => {
                if request.values[0] != 0 {
                    plant.emergency_stop();
                    self.setpoint_rpm = 0.0;
                    self.pid.reset();
                }
                BusResponse::ok(request.values.clone())
            }
            (false, centrifuge::SETPOINT_RPM) => {
                BusResponse::ok(vec![self.setpoint_rpm.round() as u16])
            }
            (false, centrifuge::SPEED_RPM) => {
                BusResponse::ok(vec![plant.speed_rpm().round().clamp(0.0, 65535.0) as u16])
            }
            _ => BusResponse::exception(ExceptionCode::IllegalDataAddress),
        }
    }
}

/// The chiller: applies the commanded cooling fraction to the plant.
#[derive(Debug, Default)]
pub struct CoolingUnit {
    command_permille: u16,
}

impl CoolingUnit {
    /// Creates the unit with the chiller off.
    #[must_use]
    pub fn new() -> Self {
        CoolingUnit::default()
    }
}

impl Device<CentrifugePlant> for CoolingUnit {
    fn unit_id(&self) -> UnitId {
        addresses::COOLING
    }

    fn name(&self) -> &str {
        "cooling-unit"
    }

    fn poll(&mut self, plant: &mut CentrifugePlant, _outbox: &mut Outbox) {
        plant.set_cooling(f64::from(self.command_permille) / 1000.0);
    }

    fn handle(&mut self, _plant: &mut CentrifugePlant, request: &BusRequest) -> BusResponse {
        match (request.function.is_write(), request.address) {
            (true, cooling::COMMAND_PERMILLE) => {
                self.command_permille = request.values[0].min(1000);
                BusResponse::ok(request.values.clone())
            }
            (false, cooling::COMMAND_PERMILLE) => BusResponse::ok(vec![self.command_permille]),
            _ => BusResponse::exception(ExceptionCode::IllegalDataAddress),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_sim::{Plant, Simulation};

    #[test]
    fn sensor_noise_stays_within_datasheet() {
        let mut sensor = TemperatureSensor::new(1);
        let mut plant = CentrifugePlant::new(); // 22.0 °C
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..1000 {
            let req = BusRequest::read(addresses::BPCS, addresses::TEMP_SENSOR, 0, 1);
            let resp = sensor.handle(&mut plant, &req);
            let value = f64::from(resp.values().unwrap()[0]) / 10.0;
            min = min.min(value);
            max = max.max(value);
        }
        assert!(min >= 21.7, "min {min}");
        assert!(max <= 22.3, "max {max}");
    }

    #[test]
    fn sensor_rejects_writes_and_bad_addresses() {
        let mut sensor = TemperatureSensor::new(1);
        let mut plant = CentrifugePlant::new();
        let write = BusRequest::write(addresses::BPCS, addresses::TEMP_SENSOR, 0, 1);
        assert!(!sensor.handle(&mut plant, &write).is_ok());
        let bad = BusRequest::read(addresses::BPCS, addresses::TEMP_SENSOR, 9, 1);
        assert!(!sensor.handle(&mut plant, &bad).is_ok());
    }

    #[test]
    fn sensor_offset_shifts_reading() {
        let mut sensor = TemperatureSensor::new(1).with_offset(5.0);
        let mut plant = CentrifugePlant::new();
        let req = BusRequest::read(addresses::BPCS, addresses::TEMP_SENSOR, 0, 1);
        let value = f64::from(sensor.handle(&mut plant, &req).values().unwrap()[0]) / 10.0;
        assert!((value - 27.0).abs() < 0.5);
    }

    #[test]
    fn drive_regulates_within_one_rpm() {
        let dt = 0.1;
        let mut sim = Simulation::new(CentrifugePlant::new(), dt);
        let mut drive = CentrifugeDrive::new(dt);
        let req = BusRequest::write(
            addresses::BPCS,
            addresses::CENTRIFUGE,
            centrifuge::SETPOINT_RPM,
            8000,
        );
        drive.handle(sim.plant_mut(), &req);
        sim.add_device(drive);
        sim.run(3000); // 300 s
        assert!(
            (sim.plant().speed_rpm() - 8000.0).abs() < 1.0,
            "speed {}",
            sim.plant().speed_rpm()
        );
    }

    #[test]
    fn drive_estop_stops_and_clears_setpoint() {
        let dt = 0.1;
        let mut plant = CentrifugePlant::new();
        let mut drive = CentrifugeDrive::new(dt);
        drive.handle(
            &mut plant,
            &BusRequest::write(
                addresses::BPCS,
                addresses::CENTRIFUGE,
                centrifuge::SETPOINT_RPM,
                8000,
            ),
        );
        for _ in 0..600 {
            let mut outbox = cpssec_sim::Outbox::default();
            drive.poll(&mut plant, &mut outbox);
            plant.integrate(dt);
        }
        assert!(plant.speed_rpm() > 5000.0);
        drive.handle(
            &mut plant,
            &BusRequest::write(addresses::SIS, addresses::CENTRIFUGE, centrifuge::ESTOP, 1),
        );
        assert!(plant.is_stopped());
        assert_eq!(drive.setpoint_rpm(), 0.0);
        for _ in 0..1200 {
            let mut outbox = cpssec_sim::Outbox::default();
            drive.poll(&mut plant, &mut outbox);
            plant.integrate(dt);
        }
        assert!(plant.speed_rpm() < 100.0);
    }

    #[test]
    fn drive_serves_speed_and_setpoint() {
        let mut plant = CentrifugePlant::new();
        let mut drive = CentrifugeDrive::new(0.1);
        drive.handle(
            &mut plant,
            &BusRequest::write(
                addresses::BPCS,
                addresses::CENTRIFUGE,
                centrifuge::SETPOINT_RPM,
                4321,
            ),
        );
        let sp = drive.handle(
            &mut plant,
            &BusRequest::read(
                addresses::BPCS,
                addresses::CENTRIFUGE,
                centrifuge::SETPOINT_RPM,
                1,
            ),
        );
        assert_eq!(sp.values().unwrap()[0], 4321);
        let speed = drive.handle(
            &mut plant,
            &BusRequest::read(
                addresses::BPCS,
                addresses::CENTRIFUGE,
                centrifuge::SPEED_RPM,
                1,
            ),
        );
        assert_eq!(speed.values().unwrap()[0], 0);
    }

    #[test]
    fn cooling_unit_applies_command_each_poll() {
        let mut plant = CentrifugePlant::new();
        let mut unit = CoolingUnit::new();
        unit.handle(
            &mut plant,
            &BusRequest::write(
                addresses::BPCS,
                addresses::COOLING,
                cooling::COMMAND_PERMILLE,
                400,
            ),
        );
        let mut outbox = cpssec_sim::Outbox::default();
        unit.poll(&mut plant, &mut outbox);
        assert!((plant.cooling() - 0.4).abs() < 1e-9);
        // Commands above 1000 are clamped.
        unit.handle(
            &mut plant,
            &BusRequest::write(
                addresses::BPCS,
                addresses::COOLING,
                cooling::COMMAND_PERMILLE,
                5000,
            ),
        );
        unit.poll(&mut plant, &mut outbox);
        assert!((plant.cooling() - 1.0).abs() < 1e-9);
    }
}
