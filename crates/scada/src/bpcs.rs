//! The BPCS platform: the main centrifuge controller.
//!
//! Paper: "*BPCS platform*: the main centrifuge controller interfaced
//! through MODBUS." Each tick it reads the temperature probe, reads the
//! rotor speed, runs the thermal PI loop, and commands the centrifuge
//! drive and the chiller. It serves the operator interface registers the
//! programming workstation reads and writes.

use cpssec_sim::{BusRequest, BusResponse, Device, ExceptionCode, Outbox, Pid, UnitId};

use crate::addresses::{self, bpcs, centrifuge, cooling, mode, temp_sensor};
use crate::CentrifugePlant;

/// Target solution temperature during separation, °C (mid-window).
pub const TARGET_TEMP_C: f64 = 35.0;

/// The main centrifuge controller.
#[derive(Debug)]
pub struct Bpcs {
    operator_setpoint_rpm: u16,
    mode: u16,
    last_temp_x10: u16,
    last_speed_rpm: u16,
    thermal_pid: Pid,
    dt: f64,
}

impl Bpcs {
    /// Creates the controller in idle mode; `dt` is the kernel step.
    #[must_use]
    pub fn new(dt: f64) -> Self {
        Bpcs {
            operator_setpoint_rpm: 0,
            mode: mode::IDLE,
            last_temp_x10: 0,
            last_speed_rpm: 0,
            // Output in [-1, 0]: the negated cooling command (PID pushes
            // negative when the measurement exceeds the target).
            thermal_pid: Pid::new(0.3, 0.02, 0.0).with_output_limits(-1.0, 0.0),
            dt,
        }
    }

    /// The last temperature reading, °C.
    #[must_use]
    pub fn last_temperature_c(&self) -> f64 {
        f64::from(self.last_temp_x10) / 10.0
    }

    /// The last rotor speed reading, rpm.
    #[must_use]
    pub fn last_speed_rpm(&self) -> u16 {
        self.last_speed_rpm
    }

    /// The current mode register value.
    #[must_use]
    pub fn mode(&self) -> u16 {
        self.mode
    }
}

impl Device<CentrifugePlant> for Bpcs {
    fn unit_id(&self) -> UnitId {
        addresses::BPCS
    }

    fn name(&self) -> &str {
        "bpcs"
    }

    fn poll(&mut self, _plant: &mut CentrifugePlant, outbox: &mut Outbox) {
        // Acquire measurements.
        outbox.send(BusRequest::read(
            addresses::BPCS,
            addresses::TEMP_SENSOR,
            temp_sensor::TEMPERATURE_X10,
            1,
        ));
        outbox.send(BusRequest::read(
            addresses::BPCS,
            addresses::CENTRIFUGE,
            centrifuge::SPEED_RPM,
            1,
        ));
        // Command the drive.
        let speed_command = if self.mode == mode::RUN {
            self.operator_setpoint_rpm
        } else {
            0
        };
        outbox.send(BusRequest::write(
            addresses::BPCS,
            addresses::CENTRIFUGE,
            centrifuge::SETPOINT_RPM,
            speed_command,
        ));
        // Thermal loop: cool when above target.
        let cooling_fraction = if self.mode == mode::RUN {
            -self
                .thermal_pid
                .update(TARGET_TEMP_C, self.last_temperature_c(), self.dt)
        } else {
            0.0
        };
        outbox.send(BusRequest::write(
            addresses::BPCS,
            addresses::COOLING,
            cooling::COMMAND_PERMILLE,
            (cooling_fraction * 1000.0).round() as u16,
        ));
    }

    fn handle(&mut self, _plant: &mut CentrifugePlant, request: &BusRequest) -> BusResponse {
        match (request.function.is_write(), request.address) {
            (true, bpcs::OPERATOR_SETPOINT_RPM) => {
                self.operator_setpoint_rpm = request.values[0];
                BusResponse::ok(request.values.clone())
            }
            (true, bpcs::MODE) => {
                self.mode = request.values[0];
                if self.mode == mode::IDLE {
                    self.thermal_pid.reset();
                }
                BusResponse::ok(request.values.clone())
            }
            (false, bpcs::OPERATOR_SETPOINT_RPM) => {
                BusResponse::ok(vec![self.operator_setpoint_rpm])
            }
            (false, bpcs::MODE) => BusResponse::ok(vec![self.mode]),
            (false, bpcs::TEMPERATURE_X10) => BusResponse::ok(vec![self.last_temp_x10]),
            (false, bpcs::SPEED_RPM) => BusResponse::ok(vec![self.last_speed_rpm]),
            _ => BusResponse::exception(ExceptionCode::IllegalDataAddress),
        }
    }

    fn on_response(
        &mut self,
        _plant: &mut CentrifugePlant,
        request: &BusRequest,
        response: &BusResponse,
    ) {
        let Some(values) = response.values() else {
            return;
        };
        if request.dst == addresses::TEMP_SENSOR && request.address == temp_sensor::TEMPERATURE_X10
        {
            self.last_temp_x10 = values[0];
        } else if request.dst == addresses::CENTRIFUGE && request.address == centrifuge::SPEED_RPM {
            self.last_speed_rpm = values[0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_write(address: u16, value: u16) -> BusRequest {
        BusRequest::write(addresses::WORKSTATION, addresses::BPCS, address, value)
    }

    fn ws_read(address: u16) -> BusRequest {
        BusRequest::read(addresses::WORKSTATION, addresses::BPCS, address, 1)
    }

    #[test]
    fn operator_interface_round_trips() {
        let mut plant = CentrifugePlant::new();
        let mut bpcs = Bpcs::new(0.1);
        bpcs.handle(&mut plant, &ws_write(bpcs::OPERATOR_SETPOINT_RPM, 8000));
        bpcs.handle(&mut plant, &ws_write(bpcs::MODE, mode::RUN));
        assert_eq!(
            bpcs.handle(&mut plant, &ws_read(bpcs::OPERATOR_SETPOINT_RPM))
                .values()
                .unwrap()[0],
            8000
        );
        assert_eq!(
            bpcs.handle(&mut plant, &ws_read(bpcs::MODE))
                .values()
                .unwrap()[0],
            mode::RUN
        );
    }

    #[test]
    fn idle_mode_commands_zero_speed_and_no_cooling() {
        let mut plant = CentrifugePlant::new();
        let mut bpcs = Bpcs::new(0.1);
        bpcs.handle(&mut plant, &ws_write(bpcs::OPERATOR_SETPOINT_RPM, 8000));
        let mut outbox = Outbox::default();
        bpcs.poll(&mut plant, &mut outbox);
        let writes: Vec<_> = outbox_requests(&outbox)
            .iter()
            .filter(|r| r.function.is_write())
            .cloned()
            .collect();
        let drive = writes
            .iter()
            .find(|r| r.dst == addresses::CENTRIFUGE)
            .unwrap();
        assert_eq!(drive.values[0], 0);
        let chill = writes.iter().find(|r| r.dst == addresses::COOLING).unwrap();
        assert_eq!(chill.values[0], 0);
    }

    #[test]
    fn run_mode_forwards_setpoint() {
        let mut plant = CentrifugePlant::new();
        let mut bpcs = Bpcs::new(0.1);
        bpcs.handle(&mut plant, &ws_write(bpcs::OPERATOR_SETPOINT_RPM, 8000));
        bpcs.handle(&mut plant, &ws_write(bpcs::MODE, mode::RUN));
        let mut outbox = Outbox::default();
        bpcs.poll(&mut plant, &mut outbox);
        let drive = outbox_requests(&outbox)
            .iter()
            .find(|r| r.dst == addresses::CENTRIFUGE && r.function.is_write())
            .cloned()
            .unwrap();
        assert_eq!(drive.values[0], 8000);
    }

    #[test]
    fn thermal_loop_cools_when_hot() {
        let mut plant = CentrifugePlant::new();
        let mut bpcs = Bpcs::new(0.1);
        bpcs.handle(&mut plant, &ws_write(bpcs::MODE, mode::RUN));
        // Simulate a hot reading arriving.
        let temp_req = BusRequest::read(
            addresses::BPCS,
            addresses::TEMP_SENSOR,
            temp_sensor::TEMPERATURE_X10,
            1,
        );
        bpcs.on_response(&mut plant, &temp_req, &BusResponse::ok(vec![420])); // 42.0 °C
        let mut outbox = Outbox::default();
        bpcs.poll(&mut plant, &mut outbox);
        let chill = outbox_requests(&outbox)
            .iter()
            .find(|r| r.dst == addresses::COOLING)
            .cloned()
            .unwrap();
        assert!(chill.values[0] > 0, "cooling command {:?}", chill.values);
    }

    #[test]
    fn published_measurements_update_from_responses() {
        let mut plant = CentrifugePlant::new();
        let mut bpcs = Bpcs::new(0.1);
        let speed_req = BusRequest::read(
            addresses::BPCS,
            addresses::CENTRIFUGE,
            centrifuge::SPEED_RPM,
            1,
        );
        bpcs.on_response(&mut plant, &speed_req, &BusResponse::ok(vec![7985]));
        assert_eq!(bpcs.last_speed_rpm(), 7985);
        assert_eq!(
            bpcs.handle(&mut plant, &ws_read(bpcs::SPEED_RPM))
                .values()
                .unwrap()[0],
            7985
        );
        // Exception responses are ignored.
        bpcs.on_response(
            &mut plant,
            &speed_req,
            &BusResponse::exception(ExceptionCode::DeviceFailure),
        );
        assert_eq!(bpcs.last_speed_rpm(), 7985);
    }

    fn outbox_requests(outbox: &Outbox) -> Vec<BusRequest> {
        outbox.requests().to_vec()
    }
}
