//! The SIS platform: the redundant safety monitor.
//!
//! Paper: "*SIS platform*: a redundant safety monitor for the centrifuge
//! controller, for example, temperature is too high for commanded mode or
//! speed is too high." The SIS independently reads the temperature probe
//! and the rotor speed and, on a violation, trips the emergency stop and
//! commands full cooling. The trip is latched.
//!
//! Its [`sis::ENABLED`](crate::addresses::sis::ENABLED) register is
//! writable — the engineering path Triton-style attacks abuse to disable a
//! safety function before causing the process excursion.

use cpssec_sim::{BusRequest, BusResponse, Device, ExceptionCode, Outbox, UnitId};

use crate::addresses::{self, centrifuge, cooling, sis, temp_sensor};
use crate::CentrifugePlant;

/// Temperature above which the SIS trips, °C.
pub const TRIP_TEMP_C: f64 = 45.0;
/// Rotor speed above which the SIS trips, rpm.
pub const TRIP_SPEED_RPM: f64 = 10_050.0;

/// The safety instrumented system.
#[derive(Debug)]
pub struct Sis {
    enabled: bool,
    tripped: bool,
    last_temp_x10: u16,
    last_speed_rpm: u16,
}

impl Sis {
    /// Creates an armed, untripped SIS.
    #[must_use]
    pub fn new() -> Self {
        Sis {
            enabled: true,
            tripped: false,
            last_temp_x10: 0,
            last_speed_rpm: 0,
        }
    }

    /// Whether the safety function is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether the SIS has tripped.
    #[must_use]
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }
}

impl Default for Sis {
    fn default() -> Self {
        Sis::new()
    }
}

impl Device<CentrifugePlant> for Sis {
    fn unit_id(&self) -> UnitId {
        addresses::SIS
    }

    fn name(&self) -> &str {
        "sis"
    }

    fn poll(&mut self, _plant: &mut CentrifugePlant, outbox: &mut Outbox) {
        if !self.enabled || self.tripped {
            return;
        }
        // Independent measurement acquisition.
        outbox.send(BusRequest::read(
            addresses::SIS,
            addresses::TEMP_SENSOR,
            temp_sensor::TEMPERATURE_X10,
            1,
        ));
        outbox.send(BusRequest::read(
            addresses::SIS,
            addresses::CENTRIFUGE,
            centrifuge::SPEED_RPM,
            1,
        ));
        // Trip evaluation on last readings.
        let temp = f64::from(self.last_temp_x10) / 10.0;
        let speed = f64::from(self.last_speed_rpm);
        if temp > TRIP_TEMP_C || speed > TRIP_SPEED_RPM {
            self.tripped = true;
            outbox.send(BusRequest::write(
                addresses::SIS,
                addresses::CENTRIFUGE,
                centrifuge::ESTOP,
                1,
            ));
            outbox.send(BusRequest::write(
                addresses::SIS,
                addresses::COOLING,
                cooling::COMMAND_PERMILLE,
                1000,
            ));
        }
    }

    fn handle(&mut self, _plant: &mut CentrifugePlant, request: &BusRequest) -> BusResponse {
        match (request.function.is_write(), request.address) {
            (true, sis::ENABLED) => {
                self.enabled = request.values[0] != 0;
                BusResponse::ok(request.values.clone())
            }
            (false, sis::ENABLED) => BusResponse::ok(vec![u16::from(self.enabled)]),
            (false, sis::TRIPPED) => BusResponse::ok(vec![u16::from(self.tripped)]),
            (true, sis::TRIPPED) => BusResponse::exception(ExceptionCode::IllegalDataValue),
            _ => BusResponse::exception(ExceptionCode::IllegalDataAddress),
        }
    }

    fn on_response(
        &mut self,
        _plant: &mut CentrifugePlant,
        request: &BusRequest,
        response: &BusResponse,
    ) {
        let Some(values) = response.values() else {
            return;
        };
        if request.dst == addresses::TEMP_SENSOR {
            self.last_temp_x10 = values[0];
        } else if request.dst == addresses::CENTRIFUGE && request.address == centrifuge::SPEED_RPM {
            self.last_speed_rpm = values[0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_temp(sis: &mut Sis, plant: &mut CentrifugePlant, temp_x10: u16) {
        let req = BusRequest::read(
            addresses::SIS,
            addresses::TEMP_SENSOR,
            temp_sensor::TEMPERATURE_X10,
            1,
        );
        sis.on_response(plant, &req, &BusResponse::ok(vec![temp_x10]));
    }

    #[test]
    fn trips_on_overtemperature() {
        let mut plant = CentrifugePlant::new();
        let mut sis = Sis::new();
        feed_temp(&mut sis, &mut plant, 460); // 46.0 °C
        let mut outbox = Outbox::default();
        sis.poll(&mut plant, &mut outbox);
        assert!(sis.is_tripped());
        let writes: Vec<_> = outbox
            .requests()
            .iter()
            .filter(|r| r.function.is_write())
            .collect();
        assert!(writes
            .iter()
            .any(|r| r.dst == addresses::CENTRIFUGE && r.address == centrifuge::ESTOP));
        assert!(writes
            .iter()
            .any(|r| r.dst == addresses::COOLING && r.values[0] == 1000));
    }

    #[test]
    fn trips_on_overspeed() {
        let mut plant = CentrifugePlant::new();
        let mut sis = Sis::new();
        let req = BusRequest::read(
            addresses::SIS,
            addresses::CENTRIFUGE,
            centrifuge::SPEED_RPM,
            1,
        );
        sis.on_response(&mut plant, &req, &BusResponse::ok(vec![10_100]));
        let mut outbox = Outbox::default();
        sis.poll(&mut plant, &mut outbox);
        assert!(sis.is_tripped());
    }

    #[test]
    fn nominal_readings_do_not_trip() {
        let mut plant = CentrifugePlant::new();
        let mut sis = Sis::new();
        feed_temp(&mut sis, &mut plant, 350);
        let mut outbox = Outbox::default();
        sis.poll(&mut plant, &mut outbox);
        assert!(!sis.is_tripped());
        // It keeps polling its sensors.
        assert_eq!(outbox.len(), 2);
    }

    #[test]
    fn disabled_sis_ignores_violations() {
        let mut plant = CentrifugePlant::new();
        let mut sis = Sis::new();
        // The Triton move: engineering write flips the enable register.
        sis.handle(
            &mut plant,
            &BusRequest::write(addresses::WORKSTATION, addresses::SIS, sis::ENABLED, 0),
        );
        assert!(!sis.is_enabled());
        feed_temp(&mut sis, &mut plant, 500);
        let mut outbox = Outbox::default();
        sis.poll(&mut plant, &mut outbox);
        assert!(!sis.is_tripped());
        assert!(outbox.is_empty());
    }

    #[test]
    fn trip_is_latched_and_reported() {
        let mut plant = CentrifugePlant::new();
        let mut sis = Sis::new();
        feed_temp(&mut sis, &mut plant, 460);
        let mut outbox = Outbox::default();
        sis.poll(&mut plant, &mut outbox);
        assert!(sis.is_tripped());
        // Cooling down does not clear the latch.
        feed_temp(&mut sis, &mut plant, 300);
        let mut outbox2 = Outbox::default();
        sis.poll(&mut plant, &mut outbox2);
        assert!(sis.is_tripped());
        assert!(outbox2.is_empty());
        let read = sis.handle(
            &mut plant,
            &BusRequest::read(addresses::WORKSTATION, addresses::SIS, sis::TRIPPED, 1),
        );
        assert_eq!(read.values().unwrap()[0], 1);
    }

    #[test]
    fn trip_register_is_read_only() {
        let mut plant = CentrifugePlant::new();
        let mut sis = Sis::new();
        let resp = sis.handle(
            &mut plant,
            &BusRequest::write(addresses::WORKSTATION, addresses::SIS, sis::TRIPPED, 0),
        );
        assert!(!resp.is_ok());
    }
}
