//! Assembly of the complete SCADA system and batch execution.

use core::fmt;

use cpssec_sim::{
    Firewall, FirewallAction, FirewallRule, HazardEvent, HazardMonitor, Simulation, Tick,
};

use crate::addresses;
use crate::attacks::{apply_effects, AttackScenario};
use crate::bpcs::Bpcs;
use crate::devices::{CentrifugeDrive, CoolingUnit, TemperatureSensor};
use crate::physics::CentrifugePlant;
use crate::sis::Sis;
use crate::workstation::Workstation;

/// Configuration of one batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScadaConfig {
    /// Kernel step, seconds.
    pub dt: f64,
    /// Operator speed set point, rpm.
    pub setpoint_rpm: u16,
    /// Tick at which the workstation starts the batch.
    pub batch_start: Tick,
    /// Ticks allowed for ramp-up and thermal settling before product
    /// quality is measured.
    pub settle_ticks: u64,
    /// Ticks of the quality-measurement window.
    pub measure_ticks: u64,
    /// Seed for the temperature sensor noise.
    pub sensor_seed: u64,
    /// Whether the control firewall enforces its rules.
    pub firewall_enabled: bool,
}

impl Default for ScadaConfig {
    fn default() -> Self {
        ScadaConfig {
            dt: 0.1,
            setpoint_rpm: 8000,
            batch_start: Tick::new(10),
            settle_ticks: 2500,
            measure_ticks: 1500,
            sensor_seed: 42,
            firewall_enabled: true,
        }
    }
}

impl ScadaConfig {
    /// Total ticks of one batch run.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.batch_start.count() + self.settle_ticks + self.measure_ticks
    }
}

/// The quality of the separated product after a batch, per the paper's
/// envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProductQuality {
    /// Speed within ±20 rpm and temperature inside the window throughout
    /// the measurement window.
    Nominal,
    /// Rotor speed deviated beyond ±20 rpm of the set point ("the resultant
    /// product is not useful").
    RuinedSpeed,
    /// Temperature fell below the window ("the separation will not be
    /// productive and the result is a viscous product").
    RuinedViscous,
    /// Temperature exceeded the window without reaching instability.
    RuinedUnstable,
    /// The solution went unstable or the rotor overspeeded — physical
    /// destruction ("explosion/fire", damage to the centrifuge).
    Destroyed,
}

impl ProductQuality {
    /// Canonical lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ProductQuality::Nominal => "nominal",
            ProductQuality::RuinedSpeed => "ruined-speed",
            ProductQuality::RuinedViscous => "ruined-viscous",
            ProductQuality::RuinedUnstable => "ruined-unstable",
            ProductQuality::Destroyed => "destroyed",
        }
    }
}

impl fmt::Display for ProductQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The outcome of one batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Product quality classification.
    pub product: ProductQuality,
    /// Hazard events that fired during the run.
    pub hazards: Vec<HazardEvent>,
    /// Whether the emergency stop engaged (the SIS trip path).
    pub emergency_stopped: bool,
    /// Whether the solution went unstable.
    pub exploded: bool,
    /// Highest temperature over the whole run, °C.
    pub max_temperature_c: f64,
    /// Lowest temperature inside the measurement window, °C.
    pub window_min_temperature_c: f64,
    /// Highest temperature inside the measurement window, °C.
    pub window_max_temperature_c: f64,
    /// Largest |speed − set point| inside the measurement window, rpm.
    pub max_speed_deviation_rpm: f64,
    /// Ticks executed.
    pub ticks: u64,
}

/// The assembled SCADA system: plant, six stations, firewall, monitors.
pub struct ScadaHarness {
    sim: Simulation<CentrifugePlant>,
    config: ScadaConfig,
}

impl ScadaHarness {
    /// Builds the nominal system (no attack, no fault).
    #[must_use]
    pub fn new(config: ScadaConfig) -> Self {
        ScadaHarness::build(config, None, None)
    }

    /// Builds the system with an attack scenario applied.
    #[must_use]
    pub fn with_attack(config: ScadaConfig, attack: &AttackScenario) -> Self {
        ScadaHarness::build(config, Some(attack), None)
    }

    /// Builds the system with an intrinsic fault scenario applied.
    #[must_use]
    pub fn with_fault(config: ScadaConfig, fault: &crate::faults::FaultScenario) -> Self {
        ScadaHarness::build(config, None, Some(fault))
    }

    fn build(
        config: ScadaConfig,
        attack: Option<&AttackScenario>,
        fault: Option<&crate::faults::FaultScenario>,
    ) -> Self {
        let mut sim = Simulation::new(CentrifugePlant::new(), config.dt);

        // Firewall: workstation may reach the BPCS; the controllers may
        // reach the field devices; everything else is denied.
        let mut firewall = Firewall::new(FirewallAction::Deny).with_rule(
            FirewallRule::any(FirewallAction::Allow)
                .from_src(addresses::WORKSTATION)
                .to_dst(addresses::BPCS),
        );
        for controller in [addresses::BPCS, addresses::SIS] {
            for field in [
                addresses::TEMP_SENSOR,
                addresses::CENTRIFUGE,
                addresses::COOLING,
            ] {
                firewall = firewall.with_rule(
                    FirewallRule::any(FirewallAction::Allow)
                        .from_src(controller)
                        .to_dst(field),
                );
            }
        }
        firewall.set_enabled(config.firewall_enabled);

        let mut workstation = Workstation::new(Workstation::standard_recipe(
            config.batch_start,
            config.setpoint_rpm,
        ));

        if let Some(attack) = attack {
            let build = apply_effects(attack, firewall, workstation, &mut sim);
            firewall = build.0;
            workstation = build.1;
        }
        let mut chiller_events = Vec::new();
        if let Some(fault) = fault {
            for mode in &fault.faults {
                match mode {
                    crate::faults::FaultMode::StuckTemperatureProbe { value_x10, from } => {
                        sim.add_injector(crate::faults::SensorFaultInjector::stuck(
                            *value_x10, *from,
                        ));
                    }
                    crate::faults::FaultMode::DriftingTemperatureProbe {
                        rate_x10_per_tick,
                        from,
                    } => {
                        sim.add_injector(crate::faults::SensorFaultInjector::drifting(
                            *rate_x10_per_tick,
                            *from,
                        ));
                    }
                    crate::faults::FaultMode::ChillerDegradation { efficiency, from } => {
                        chiller_events.push((*from, *efficiency));
                    }
                }
            }
        }
        if !chiller_events.is_empty() {
            sim.add_device(crate::faults::FaultScheduler::new(chiller_events));
        }
        sim.set_firewall(firewall);

        sim.add_device(TemperatureSensor::new(config.sensor_seed));
        sim.add_device(CentrifugeDrive::new(config.dt));
        sim.add_device(CoolingUnit::new());
        sim.add_device(Sis::new());
        sim.add_device(Bpcs::new(config.dt));
        sim.add_device(workstation);

        sim.add_monitor(HazardMonitor::new("explosion", |p: &CentrifugePlant| {
            p.has_exploded()
        }));
        sim.add_monitor(HazardMonitor::new(
            "overtemperature",
            |p: &CentrifugePlant| p.temperature_c() >= 50.0,
        ));
        sim.add_monitor(HazardMonitor::new(
            "rotor-overspeed",
            |p: &CentrifugePlant| p.speed_rpm() >= 10_200.0,
        ));

        sim.probe("temperature_c", CentrifugePlant::temperature_c);
        sim.probe("speed_rpm", CentrifugePlant::speed_rpm);
        sim.probe("cooling", CentrifugePlant::cooling);
        sim.probe("drive", CentrifugePlant::drive);

        ScadaHarness { sim, config }
    }

    /// The underlying simulation (plant state, bus log, trace).
    #[must_use]
    pub fn sim(&self) -> &Simulation<CentrifugePlant> {
        &self.sim
    }

    /// Mutable access to the underlying simulation.
    pub fn sim_mut(&mut self) -> &mut Simulation<CentrifugePlant> {
        &mut self.sim
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ScadaConfig {
        &self.config
    }

    /// Runs one full batch and classifies the outcome.
    pub fn run_batch(&mut self) -> BatchReport {
        self.run_batch_for(self.config.total_ticks())
    }

    /// Runs for an explicit number of ticks (≥ the configured total when a
    /// scenario needs extra time to reach its consequence) and classifies
    /// the outcome. The quality window is the final
    /// [`measure_ticks`](ScadaConfig::measure_ticks) of the run.
    pub fn run_batch_for(&mut self, ticks: u64) -> BatchReport {
        let window_start = ticks.saturating_sub(self.config.measure_ticks);
        let setpoint = f64::from(self.config.setpoint_rpm);
        let mut max_temperature_c = f64::NEG_INFINITY;
        let mut window_min_temperature_c = f64::INFINITY;
        let mut window_max_temperature_c = f64::NEG_INFINITY;
        let mut max_speed_deviation_rpm: f64 = 0.0;

        for tick in 0..ticks {
            self.sim.step();
            let plant = self.sim.plant();
            max_temperature_c = max_temperature_c.max(plant.temperature_c());
            if tick >= window_start {
                window_min_temperature_c = window_min_temperature_c.min(plant.temperature_c());
                window_max_temperature_c = window_max_temperature_c.max(plant.temperature_c());
                max_speed_deviation_rpm =
                    max_speed_deviation_rpm.max((plant.speed_rpm() - setpoint).abs());
            }
        }

        let plant = self.sim.plant();
        let overspeed = self
            .sim
            .hazards()
            .iter()
            .any(|h| h.hazard == "rotor-overspeed");
        let product = if plant.has_exploded() || overspeed {
            ProductQuality::Destroyed
        } else if max_speed_deviation_rpm > 20.0 {
            ProductQuality::RuinedSpeed
        } else if window_min_temperature_c < CentrifugePlant::WINDOW_LOW_C {
            ProductQuality::RuinedViscous
        } else if window_max_temperature_c > CentrifugePlant::WINDOW_HIGH_C {
            ProductQuality::RuinedUnstable
        } else {
            ProductQuality::Nominal
        };

        BatchReport {
            product,
            hazards: self.sim.hazards().to_vec(),
            emergency_stopped: plant.is_stopped(),
            exploded: plant.has_exploded(),
            max_temperature_c,
            window_min_temperature_c,
            window_max_temperature_c,
            max_speed_deviation_rpm,
            ticks,
        }
    }
}

impl fmt::Debug for ScadaHarness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScadaHarness")
            .field("config", &self.config)
            .field("now", &self.sim.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_batch_is_nominal() {
        let mut harness = ScadaHarness::new(ScadaConfig::default());
        let report = harness.run_batch();
        assert_eq!(report.product, ProductQuality::Nominal, "{report:?}");
        assert!(report.hazards.is_empty());
        assert!(!report.emergency_stopped);
        assert!(report.max_speed_deviation_rpm < 20.0);
        assert!(report.window_min_temperature_c >= CentrifugePlant::WINDOW_LOW_C);
        assert!(report.window_max_temperature_c <= CentrifugePlant::WINDOW_HIGH_C);
    }

    #[test]
    fn nominal_speed_regulation_is_tight() {
        let mut harness = ScadaHarness::new(ScadaConfig::default());
        let report = harness.run_batch();
        // The drive spec is ±1 rpm; allow a little for sensor/loop latency.
        assert!(
            report.max_speed_deviation_rpm < 5.0,
            "deviation {}",
            report.max_speed_deviation_rpm
        );
    }

    #[test]
    fn batch_is_deterministic() {
        let run = || {
            let mut harness = ScadaHarness::new(ScadaConfig::default());
            harness.run_batch()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_sensor_seed_changes_details_not_outcome() {
        let mut a = ScadaHarness::new(ScadaConfig {
            sensor_seed: 1,
            ..ScadaConfig::default()
        });
        let mut b = ScadaHarness::new(ScadaConfig {
            sensor_seed: 2,
            ..ScadaConfig::default()
        });
        let ra = a.run_batch();
        let rb = b.run_batch();
        assert_eq!(ra.product, ProductQuality::Nominal);
        assert_eq!(rb.product, ProductQuality::Nominal);
        assert_ne!(
            ra.window_max_temperature_c, rb.window_max_temperature_c,
            "noise should differ across seeds"
        );
    }

    #[test]
    fn firewall_blocks_stray_traffic_by_default() {
        let harness = ScadaHarness::new(ScadaConfig::default());
        let fw = harness.sim().bus().firewall().unwrap();
        use cpssec_sim::BusRequest;
        // Workstation cannot write the SIS enable register.
        let ws_to_sis = BusRequest::write(addresses::WORKSTATION, addresses::SIS, 1, 0);
        assert_eq!(fw.decide(&ws_to_sis), FirewallAction::Deny);
        // Workstation may command the BPCS.
        let ws_to_bpcs = BusRequest::write(addresses::WORKSTATION, addresses::BPCS, 0, 8000);
        assert_eq!(fw.decide(&ws_to_bpcs), FirewallAction::Allow);
    }

    #[test]
    fn disabling_the_firewall_in_config_allows_everything() {
        let harness = ScadaHarness::new(ScadaConfig {
            firewall_enabled: false,
            ..ScadaConfig::default()
        });
        use cpssec_sim::BusRequest;
        let ws_to_sis = BusRequest::write(addresses::WORKSTATION, addresses::SIS, 1, 0);
        assert_eq!(
            harness.sim().bus().firewall().unwrap().decide(&ws_to_sis),
            FirewallAction::Allow
        );
    }

    #[test]
    fn trace_probes_are_registered() {
        let mut harness = ScadaHarness::new(ScadaConfig::default());
        harness.sim_mut().run(10);
        for probe in ["temperature_c", "speed_rpm", "cooling", "drive"] {
            assert!(harness.sim().trace().series(probe).is_some(), "{probe}");
        }
    }

    #[test]
    fn total_ticks_add_up() {
        let config = ScadaConfig::default();
        assert_eq!(
            config.total_ticks(),
            10 + config.settle_ticks + config.measure_ticks
        );
    }

    #[test]
    fn product_quality_names_are_stable() {
        assert_eq!(ProductQuality::Nominal.to_string(), "nominal");
        assert_eq!(ProductQuality::Destroyed.to_string(), "destroyed");
    }
}
