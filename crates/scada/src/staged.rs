//! Staged execution: run an [`AttackScenario`] as a multi-stage campaign.
//!
//! The fleet engine injects a scenario's effects at fixed ticks, as if
//! the adversary were already on the control network. Staged execution
//! instead walks the scenario down a *model path* — initial access at
//! the entry point, a pivot per intermediate component, actuation at the
//! target — using the kernel's [`StagedInjection`] API: each stage dwells
//! before the next, and the actuation stage is additionally gated on an
//! observed bus delivery to the target unit, so a firewall that denies
//! the path really does block the campaign (the injector layer never
//! sees denied traffic).
//!
//! Scenario effect ticks are *rebased* so that the earliest effect fires
//! at the planned actuation tick and all relative gaps are preserved:
//! the same hand-written scenarios drive both execution modes.

use cpssec_sim::{
    DropMatching, HazardEvent, Injector, RegisterOverride, ResponseOverride, Stage, StageTrigger,
    StagedInjection, Tick, TickWindow, UnitId,
};

use crate::attacks::{AttackEffect, AttackScenario};
use crate::system::{ScadaConfig, ScadaHarness};
use crate::water::{WaterConfig, WaterHarness};
use crate::workstation::ScheduledWrite;

/// How a staged campaign run is laid out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedSpec {
    /// Component names from the entry point to the target, inclusive.
    pub path: Vec<String>,
    /// Ticks an adversary dwells on each foothold before moving on.
    pub dwell: u64,
    /// Simulation horizon, ticks.
    pub max_ticks: u64,
    /// Sensor-noise seed for this run.
    pub sensor_seed: u64,
}

impl StagedSpec {
    /// A spec over a model path with the default dwell (200 ticks),
    /// horizon (6000 ticks), and seed.
    #[must_use]
    pub fn new(path: Vec<String>) -> Self {
        StagedSpec {
            path,
            dwell: 200,
            max_ticks: 6000,
            sensor_seed: 42,
        }
    }

    /// Overrides the per-stage dwell.
    #[must_use]
    pub fn with_dwell(mut self, dwell: u64) -> Self {
        self.dwell = dwell.max(1);
        self
    }

    /// Overrides the simulation horizon.
    #[must_use]
    pub fn with_max_ticks(mut self, max_ticks: u64) -> Self {
        self.max_ticks = max_ticks;
        self
    }

    /// Overrides the sensor-noise seed.
    #[must_use]
    pub fn with_sensor_seed(mut self, seed: u64) -> Self {
        self.sensor_seed = seed;
        self
    }

    /// The tick at which the actuation stage is planned to fire when no
    /// stage is blocked: one dwell per path component.
    #[must_use]
    pub fn planned_actuate(&self) -> u64 {
        self.dwell.saturating_mul(self.path.len().max(1) as u64)
    }
}

/// The outcome of one staged campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedOutcome {
    /// The scenario that was executed.
    pub scenario: String,
    /// Stage names, in plan order.
    pub stages: Vec<String>,
    /// Activation tick per stage; `None` for stages that never fired.
    pub activations: Vec<Option<u64>>,
    /// The first hazard that fired, if any.
    pub hazard: Option<HazardEvent>,
    /// Whether the safety system placed the plant in its safe state.
    pub emergency_stopped: bool,
    /// Ticks executed.
    pub ticks: u64,
}

impl StagedOutcome {
    /// Whether the campaign reached a physical hazard.
    #[must_use]
    pub fn reached_hazard(&self) -> bool {
        self.hazard.is_some()
    }

    /// Index of the first stage that never activated, if any.
    #[must_use]
    pub fn first_blocked(&self) -> Option<usize> {
        self.activations.iter().position(Option::is_none)
    }

    /// The tick at which the actuation (final) stage fired, if it did.
    #[must_use]
    pub fn actuate_tick(&self) -> Option<u64> {
        self.activations.last().copied().flatten()
    }

    /// Ticks from actuation to the first hazard, when both happened.
    #[must_use]
    pub fn time_to_hazard(&self) -> Option<u64> {
        let hazard_at = self.hazard.as_ref()?.at.count();
        Some(hazard_at.saturating_sub(self.actuate_tick()?))
    }
}

/// The earliest tick referenced by any effect of the scenario.
fn earliest_effect_tick(attack: &AttackScenario) -> u64 {
    let mut min = u64::MAX;
    for effect in &attack.effects {
        match effect {
            AttackEffect::ForceRegister { from, .. }
            | AttackEffect::SpoofResponse { from, .. }
            | AttackEffect::DropWrites { from, .. } => min = min.min(from.count()),
            AttackEffect::CompromisedWorkstation(writes) => {
                for write in writes {
                    min = min.min(write.at.count());
                }
            }
            AttackEffect::DisableFirewall | AttackEffect::AllowWorkstationToSis => {}
        }
    }
    if min == u64::MAX {
        0
    } else {
        min
    }
}

fn rebase(t: Tick, earliest: u64, actuate: u64) -> Tick {
    Tick::new(t.count().saturating_sub(earliest).saturating_add(actuate))
}

/// Splits a scenario into its *passive* half (firewall changes and
/// scheduled operator-station writes, applied at build time with rebased
/// ticks) and its *active* half (bus injectors, armed only once the
/// actuation stage activates, with rebased windows).
fn split_attack(
    attack: &AttackScenario,
    actuate: u64,
) -> (AttackScenario, Vec<Box<dyn Injector + Send>>) {
    let earliest = earliest_effect_tick(attack);
    let mut passive = AttackScenario {
        name: attack.name.clone(),
        description: attack.description.clone(),
        weakness_ids: attack.weakness_ids.clone(),
        pattern_ids: attack.pattern_ids.clone(),
        target_component: attack.target_component.clone(),
        effects: Vec::new(),
    };
    let mut injectors: Vec<Box<dyn Injector + Send>> = Vec::new();
    for effect in &attack.effects {
        match effect {
            AttackEffect::ForceRegister {
                dst,
                address,
                value,
                from,
            } => injectors.push(Box::new(RegisterOverride::new(
                attack.name.clone(),
                TickWindow::from(rebase(*from, earliest, actuate)),
                *dst,
                *address,
                *value,
            ))),
            AttackEffect::SpoofResponse {
                dst,
                address,
                value,
                from,
            } => injectors.push(Box::new(ResponseOverride::new(
                attack.name.clone(),
                TickWindow::from(rebase(*from, earliest, actuate)),
                *dst,
                *address,
                *value,
            ))),
            AttackEffect::DropWrites { dst, from } => injectors.push(Box::new(
                DropMatching::new(
                    attack.name.clone(),
                    TickWindow::from(rebase(*from, earliest, actuate)),
                    Some(*dst),
                )
                .writes_only(),
            )),
            AttackEffect::CompromisedWorkstation(writes) => {
                passive.effects.push(AttackEffect::CompromisedWorkstation(
                    writes
                        .iter()
                        .map(|w| ScheduledWrite {
                            at: rebase(w.at, earliest, actuate),
                            dst: w.dst,
                            address: w.address,
                            value: w.value,
                        })
                        .collect(),
                ));
            }
            passive_effect @ (AttackEffect::DisableFirewall
            | AttackEffect::AllowWorkstationToSis) => {
                passive.effects.push(passive_effect.clone());
            }
        }
    }
    (passive, injectors)
}

/// Builds the staged injection for a path: initial access at the entry,
/// one pivot per intermediate component, actuation at the target gated
/// on an observed delivery to `target_unit` (when the target is a bus
/// station).
fn build_staged(
    name: &str,
    spec: &StagedSpec,
    target_unit: Option<UnitId>,
    mut effects: Vec<Box<dyn Injector + Send>>,
) -> StagedInjection {
    let mut stages = Vec::new();
    let last = spec.path.len().saturating_sub(1);
    for (i, component) in spec.path.iter().enumerate() {
        let trigger = if i == 0 {
            StageTrigger::AtTick(Tick::new(spec.dwell))
        } else {
            StageTrigger::AfterPrevious { dwell: spec.dwell }
        };
        let label = if i == 0 {
            format!("initial-access:{component}")
        } else if i == last {
            format!("actuate:{component}")
        } else {
            format!("pivot:{component}")
        };
        let mut stage = Stage::new(label, trigger);
        if i == last {
            if let Some(unit) = target_unit {
                stage = stage.require_delivery_to(unit);
            }
            for effect in std::mem::take(&mut effects) {
                stage = stage.with_effect(effect);
            }
        }
        stages.push(stage);
    }
    StagedInjection::new(name.to_owned(), stages)
}

fn outcome_from(
    scenario: &str,
    log: &cpssec_sim::StageLog,
    hazards: &[HazardEvent],
    emergency_stopped: bool,
    ticks: u64,
) -> StagedOutcome {
    StagedOutcome {
        scenario: scenario.to_owned(),
        stages: (0..log.stage_count())
            .map(|i| log.stage_name(i).to_owned())
            .collect(),
        activations: log.activation_ticks(),
        hazard: hazards.first().cloned(),
        emergency_stopped,
        ticks,
    }
}

/// Runs a scenario as a staged campaign on the centrifuge testbed.
#[must_use]
pub fn run_staged_centrifuge(attack: &AttackScenario, spec: &StagedSpec) -> StagedOutcome {
    let (passive, injectors) = split_attack(attack, spec.planned_actuate());
    let config = ScadaConfig {
        sensor_seed: spec.sensor_seed,
        ..ScadaConfig::default()
    };
    let mut harness = ScadaHarness::with_attack(config, &passive);
    let target_unit = spec
        .path
        .last()
        .and_then(|c| crate::model::unit_for_component(c));
    let staged = build_staged(&attack.name, spec, target_unit, injectors);
    let log = staged.log();
    harness.sim_mut().add_injector(staged);
    harness.sim_mut().run(spec.max_ticks);
    outcome_from(
        &attack.name,
        &log,
        harness.sim().hazards(),
        harness.sim().plant().is_stopped(),
        spec.max_ticks,
    )
}

/// Runs a scenario as a staged campaign on the water-treatment testbed.
#[must_use]
pub fn run_staged_water(attack: &AttackScenario, spec: &StagedSpec) -> StagedOutcome {
    let (passive, injectors) = split_attack(attack, spec.planned_actuate());
    let config = WaterConfig {
        sensor_seed: spec.sensor_seed,
        ..WaterConfig::default()
    };
    let mut harness = WaterHarness::with_attack(config, &passive);
    let target_unit = spec
        .path
        .last()
        .and_then(|c| crate::water::unit_for_component(c));
    let staged = build_staged(&attack.name, spec, target_unit, injectors);
    let log = staged.log();
    harness.sim_mut().add_injector(staged);
    harness.sim_mut().run(spec.max_ticks);
    outcome_from(
        &attack.name,
        &log,
        harness.sim().hazards(),
        harness.sim().plant().is_stopped(),
        spec.max_ticks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::model::names as cnames;
    use crate::water::names as wnames;

    fn bpcs_path() -> Vec<String> {
        [
            cnames::CORPORATE,
            cnames::WORKSTATION,
            cnames::FIREWALL,
            cnames::BPCS,
        ]
        .map(str::to_owned)
        .to_vec()
    }

    fn sis_path() -> Vec<String> {
        [
            cnames::CORPORATE,
            cnames::WORKSTATION,
            cnames::FIREWALL,
            cnames::SIS,
        ]
        .map(str::to_owned)
        .to_vec()
    }

    #[test]
    fn sis_armed_command_injection_is_contained() {
        let attack = attacks::command_injection_bpcs(Tick::new(3000));
        let outcome = run_staged_centrifuge(&attack, &StagedSpec::new(bpcs_path()));
        assert_eq!(outcome.first_blocked(), None, "{outcome:?}");
        assert!(outcome.emergency_stopped, "SIS should trip");
        assert!(!outcome.reached_hazard());
        // All four stages fired, one dwell apart until the gated actuate.
        assert_eq!(outcome.activations.len(), 4);
        assert_eq!(outcome.activations[0], Some(200));
        assert_eq!(outcome.activations[1], Some(400));
    }

    #[test]
    fn sis_disabled_command_injection_reaches_the_hazard() {
        let attack = attacks::command_injection_with_sis_disabled(Tick::new(100), Tick::new(3000));
        let outcome = run_staged_centrifuge(&attack, &StagedSpec::new(sis_path()));
        assert_eq!(outcome.first_blocked(), None, "{outcome:?}");
        assert!(outcome.reached_hazard(), "{outcome:?}");
        let ttm = outcome.time_to_hazard().unwrap();
        assert!(ttm > 0, "hazard after actuation: {outcome:?}");
    }

    #[test]
    fn firewall_blocks_the_actuation_stage_without_the_misconfiguration() {
        let mut attack =
            attacks::command_injection_with_sis_disabled(Tick::new(100), Tick::new(3000));
        attack
            .effects
            .retain(|e| !matches!(e, AttackEffect::AllowWorkstationToSis));
        let outcome = run_staged_centrifuge(&attack, &StagedSpec::new(sis_path()));
        // No delivery to the SIS is ever observed, so the gated actuate
        // stage never fires and the plan is blocked at its last stage.
        assert_eq!(outcome.first_blocked(), Some(3), "{outcome:?}");
        assert!(!outcome.reached_hazard());
    }

    #[test]
    fn staged_water_dos_reaches_pathogen_breakthrough() {
        let attack = crate::water::dosing_dos(Tick::new(500));
        let path = [
            wnames::BUSINESS,
            wnames::FIREWALL,
            wnames::SCADA_SERVER,
            wnames::PLC,
        ]
        .map(str::to_owned)
        .to_vec();
        let outcome = run_staged_water(&attack, &StagedSpec::new(path));
        assert_eq!(outcome.first_blocked(), None, "{outcome:?}");
        assert!(outcome.reached_hazard(), "{outcome:?}");
        assert_eq!(
            outcome.hazard.as_ref().unwrap().hazard,
            "pathogen-breakthrough"
        );
    }

    #[test]
    fn staged_water_command_injection_is_contained_by_the_interlock() {
        let attack = crate::water::dosing_command_injection(Tick::new(3000));
        let path = [
            wnames::BUSINESS,
            wnames::FIREWALL,
            wnames::SCADA_SERVER,
            wnames::PLC,
        ]
        .map(str::to_owned)
        .to_vec();
        let outcome = run_staged_water(&attack, &StagedSpec::new(path));
        assert_eq!(outcome.first_blocked(), None, "{outcome:?}");
        assert!(!outcome.reached_hazard(), "{outcome:?}");
        assert!(outcome.emergency_stopped, "interlock should trip");
    }

    #[test]
    fn staged_runs_are_deterministic() {
        let attack = attacks::command_injection_with_sis_disabled(Tick::new(100), Tick::new(3000));
        let spec = StagedSpec::new(sis_path());
        let a = run_staged_centrifuge(&attack, &spec);
        let b = run_staged_centrifuge(&attack, &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn rebasing_preserves_relative_gaps() {
        let attack = attacks::command_injection_with_sis_disabled(Tick::new(100), Tick::new(3000));
        let actuate = 800;
        let (passive, injectors) = split_attack(&attack, actuate);
        // Disable write was the earliest effect (tick 100): lands at the
        // planned actuation tick; the injection keeps its 2900-tick gap.
        let rebased_write = passive.effects.iter().find_map(|e| match e {
            AttackEffect::CompromisedWorkstation(w) => Some(w[0].at.count()),
            _ => None,
        });
        assert_eq!(rebased_write, Some(actuate));
        assert_eq!(injectors.len(), 1);
    }
}
