//! Bus addresses and register maps of the SCADA system.
//!
//! One place for every unit id and register address, so devices, attack
//! scenarios, and tests agree on the wire contract.

use cpssec_sim::UnitId;

/// Programming workstation (operator/engineering station).
pub const WORKSTATION: UnitId = UnitId::new(1);
/// Safety instrumented system platform.
pub const SIS: UnitId = UnitId::new(10);
/// Basic process control system platform (main centrifuge controller).
pub const BPCS: UnitId = UnitId::new(20);
/// Precision passive temperature probe.
pub const TEMP_SENSOR: UnitId = UnitId::new(30);
/// Variable speed centrifuge drive.
pub const CENTRIFUGE: UnitId = UnitId::new(40);
/// Chiller / cooling unit.
pub const COOLING: UnitId = UnitId::new(50);

/// Temperature sensor registers.
pub mod temp_sensor {
    /// Measured temperature, 0.1 °C per count.
    pub const TEMPERATURE_X10: u16 = 0;
}

/// Centrifuge drive registers.
pub mod centrifuge {
    /// Speed set point in rpm (read/write).
    pub const SETPOINT_RPM: u16 = 0;
    /// Measured rotor speed in rpm (read only).
    pub const SPEED_RPM: u16 = 1;
    /// Emergency stop latch; writing a nonzero value trips it.
    pub const ESTOP: u16 = 2;
}

/// Cooling unit registers.
pub mod cooling {
    /// Cooling command in per-mille of full capacity (read/write).
    pub const COMMAND_PERMILLE: u16 = 0;
}

/// BPCS registers (served to the workstation).
pub mod bpcs {
    /// Operator speed set point in rpm (read/write).
    pub const OPERATOR_SETPOINT_RPM: u16 = 0;
    /// Mode: 0 = idle, 1 = run (read/write).
    pub const MODE: u16 = 1;
    /// Last temperature reading, 0.1 °C per count (read only).
    pub const TEMPERATURE_X10: u16 = 2;
    /// Last rotor speed reading in rpm (read only).
    pub const SPEED_RPM: u16 = 3;
}

/// SIS registers.
pub mod sis {
    /// Trip latch: 1 once tripped (read only).
    pub const TRIPPED: u16 = 0;
    /// Enable flag: writing 0 disables the safety function (the
    /// Triton-style engineering write).
    pub const ENABLED: u16 = 1;
}

/// BPCS mode values.
pub mod mode {
    /// Centrifuge idle.
    pub const IDLE: u16 = 0;
    /// Separation batch running.
    pub const RUN: u16 = 1;
}
