//! The programming workstation.
//!
//! Paper: "*Programming WS*: the controller of the centrifuge, programmed
//! in NI LabVIEW, and monitored by operators." The workstation runs the
//! batch recipe (set point and mode writes to the BPCS on schedule) and
//! polls the BPCS published registers for the operator display. It is the
//! adversary's entry point: a compromised workstation additionally replays
//! a scripted list of malicious writes.

use cpssec_sim::{BusRequest, BusResponse, Device, ExceptionCode, Outbox, Tick, UnitId};

use crate::addresses::{self, bpcs};
use crate::CentrifugePlant;

/// One scheduled operator (or attacker) write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledWrite {
    /// When to send it.
    pub at: Tick,
    /// Target unit.
    pub dst: UnitId,
    /// Target register.
    pub address: u16,
    /// Value to write.
    pub value: u16,
}

/// The operator display state, refreshed by monitoring reads.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OperatorDisplay {
    /// Last temperature shown, in 0.1 °C counts.
    pub temperature_x10: u16,
    /// Last rotor speed shown, rpm.
    pub speed_rpm: u16,
}

/// The engineering/operator workstation.
#[derive(Debug)]
pub struct Workstation {
    recipe: Vec<ScheduledWrite>,
    malicious: Vec<ScheduledWrite>,
    display: OperatorDisplay,
    monitor_every: u64,
    reassert_every: u64,
    now: Tick,
}

impl Workstation {
    /// Creates a workstation with a batch recipe.
    #[must_use]
    pub fn new(recipe: Vec<ScheduledWrite>) -> Self {
        Workstation {
            recipe,
            malicious: Vec::new(),
            display: OperatorDisplay::default(),
            monitor_every: 10,
            reassert_every: 50,
            now: Tick::ZERO,
        }
    }

    /// The standard batch recipe: set point then run mode at `start`.
    #[must_use]
    pub fn standard_recipe(start: Tick, setpoint_rpm: u16) -> Vec<ScheduledWrite> {
        vec![
            ScheduledWrite {
                at: start,
                dst: addresses::BPCS,
                address: bpcs::OPERATOR_SETPOINT_RPM,
                value: setpoint_rpm,
            },
            ScheduledWrite {
                at: start.next(),
                dst: addresses::BPCS,
                address: bpcs::MODE,
                value: crate::addresses::mode::RUN,
            },
        ]
    }

    /// Adds compromised-workstation writes (builder style) — the bus-level
    /// image of code execution on the workstation.
    #[must_use]
    pub fn with_malicious_writes(mut self, writes: Vec<ScheduledWrite>) -> Self {
        self.malicious = writes;
        self
    }

    /// The operator display.
    #[must_use]
    pub fn display(&self) -> OperatorDisplay {
        self.display
    }
}

impl Device<CentrifugePlant> for Workstation {
    fn unit_id(&self) -> UnitId {
        addresses::WORKSTATION
    }

    fn name(&self) -> &str {
        "programming-ws"
    }

    fn poll(&mut self, _plant: &mut CentrifugePlant, outbox: &mut Outbox) {
        self.now = self.now.next();
        for write in self.recipe.iter().chain(self.malicious.iter()) {
            if write.at == self.now {
                outbox.send(BusRequest::write(
                    addresses::WORKSTATION,
                    write.dst,
                    write.address,
                    write.value,
                ));
            }
        }
        // HMI-style cyclic re-assertion: the latest recipe value for every
        // register is re-sent periodically, as operator stations do. This
        // is also what keeps in-flight tampering effective after the
        // initial write.
        if self.now.count() % self.reassert_every == 0 {
            let mut seen: Vec<(UnitId, u16)> = Vec::new();
            for write in self.recipe.iter().rev() {
                if write.at < self.now && !seen.contains(&(write.dst, write.address)) {
                    seen.push((write.dst, write.address));
                    outbox.send(BusRequest::write(
                        addresses::WORKSTATION,
                        write.dst,
                        write.address,
                        write.value,
                    ));
                }
            }
        }
        if self.now.count() % self.monitor_every == 0 {
            outbox.send(BusRequest::read(
                addresses::WORKSTATION,
                addresses::BPCS,
                bpcs::TEMPERATURE_X10,
                1,
            ));
            outbox.send(BusRequest::read(
                addresses::WORKSTATION,
                addresses::BPCS,
                bpcs::SPEED_RPM,
                1,
            ));
        }
    }

    fn handle(&mut self, _plant: &mut CentrifugePlant, _request: &BusRequest) -> BusResponse {
        BusResponse::exception(ExceptionCode::IllegalFunction)
    }

    fn on_response(
        &mut self,
        _plant: &mut CentrifugePlant,
        request: &BusRequest,
        response: &BusResponse,
    ) {
        let Some(values) = response.values() else {
            return;
        };
        if request.dst == addresses::BPCS {
            match request.address {
                bpcs::TEMPERATURE_X10 => self.display.temperature_x10 = values[0],
                bpcs::SPEED_RPM => self.display.speed_rpm = values[0],
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipe_writes_fire_at_their_tick() {
        let mut plant = CentrifugePlant::new();
        let mut ws = Workstation::new(Workstation::standard_recipe(Tick::new(3), 8000));
        for expected in [0usize, 0, 1, 1] {
            let mut outbox = Outbox::default();
            ws.poll(&mut plant, &mut outbox);
            let writes = outbox
                .requests()
                .iter()
                .filter(|r| r.function.is_write())
                .count();
            assert_eq!(writes, expected, "at tick {}", ws.now);
        }
    }

    #[test]
    fn monitoring_reads_refresh_display() {
        let mut plant = CentrifugePlant::new();
        let mut ws = Workstation::new(Vec::new());
        let temp_req = BusRequest::read(
            addresses::WORKSTATION,
            addresses::BPCS,
            bpcs::TEMPERATURE_X10,
            1,
        );
        ws.on_response(&mut plant, &temp_req, &BusResponse::ok(vec![351]));
        assert_eq!(ws.display().temperature_x10, 351);
        let speed_req =
            BusRequest::read(addresses::WORKSTATION, addresses::BPCS, bpcs::SPEED_RPM, 1);
        ws.on_response(&mut plant, &speed_req, &BusResponse::ok(vec![7999]));
        assert_eq!(ws.display().speed_rpm, 7999);
    }

    #[test]
    fn malicious_writes_ride_the_same_schedule() {
        let mut plant = CentrifugePlant::new();
        let mut ws = Workstation::new(Vec::new()).with_malicious_writes(vec![ScheduledWrite {
            at: Tick::new(1),
            dst: addresses::SIS,
            address: crate::addresses::sis::ENABLED,
            value: 0,
        }]);
        let mut outbox = Outbox::default();
        ws.poll(&mut plant, &mut outbox);
        let req = outbox
            .requests()
            .iter()
            .find(|r| r.dst == addresses::SIS)
            .unwrap();
        assert_eq!(req.values, vec![0]);
    }

    #[test]
    fn monitoring_cadence_is_periodic() {
        let mut plant = CentrifugePlant::new();
        let mut ws = Workstation::new(Vec::new());
        let mut reads = 0;
        for _ in 0..30 {
            let mut outbox = Outbox::default();
            ws.poll(&mut plant, &mut outbox);
            reads += outbox
                .requests()
                .iter()
                .filter(|r| !r.function.is_write())
                .count();
        }
        assert_eq!(reads, 6); // every 10 ticks, two reads each
    }
}
