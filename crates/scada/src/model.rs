//! The SCADA system model (Fig 1) with Table 1 attributes.
//!
//! The same system the simulation runs, expressed as a general
//! architectural model for the security toolchain. Attributes carry the
//! fidelity at which they enter the model, reproducing the paper's
//! refinement story: functions at the conceptual level, roles and protocols
//! at the architectural level, exact products and operating systems at the
//! implementation level. Querying the model at increasing fidelity yields
//! the increasingly vulnerability-heavy result spaces of §3.

use cpssec_model::{
    Attribute, AttributeKind, ChannelKind, ComponentKind, Criticality, Fidelity, SystemModel,
    SystemModelBuilder,
};

/// Component name constants, shared with
/// [`AttackScenario::target_component`](crate::AttackScenario::target_component).
pub mod names {
    /// The corporate network uplink (adversary entry point).
    pub const CORPORATE: &str = "Corporate network";
    /// The programming workstation.
    pub const WORKSTATION: &str = "Programming WS";
    /// The control firewall.
    pub const FIREWALL: &str = "Control firewall";
    /// The safety instrumented system platform.
    pub const SIS: &str = "SIS platform";
    /// The basic process control system platform.
    pub const BPCS: &str = "BPCS platform";
    /// The temperature probe.
    pub const TEMP_SENSOR: &str = "Temperature sensor";
    /// The centrifuge.
    pub const CENTRIFUGE: &str = "Centrifuge";
    /// The chiller.
    pub const COOLING: &str = "Cooling unit";
}

/// Maps a centrifuge-model component name to its bus unit, when it has
/// one (network fabric like the corporate network or the firewall is not
/// a bus station).
#[must_use]
pub fn unit_for_component(component: &str) -> Option<cpssec_sim::UnitId> {
    match component {
        names::WORKSTATION => Some(crate::addresses::WORKSTATION),
        names::SIS => Some(crate::addresses::SIS),
        names::BPCS => Some(crate::addresses::BPCS),
        names::TEMP_SENSOR => Some(crate::addresses::TEMP_SENSOR),
        names::CENTRIFUGE => Some(crate::addresses::CENTRIFUGE),
        names::COOLING => Some(crate::addresses::COOLING),
        _ => None,
    }
}

/// Builds the particle separation centrifuge model of Fig 1.
///
/// The returned model carries attributes at all three fidelity levels; use
/// [`SystemModel::at_fidelity`] to project it down for fidelity-sweep
/// experiments.
///
/// # Examples
///
/// ```
/// use cpssec_scada::model::{scada_model, names};
/// let model = scada_model();
/// assert_eq!(model.component_count(), 8);
/// assert!(model.component_by_name(names::SIS).is_some());
/// ```
#[must_use]
pub fn scada_model() -> SystemModel {
    SystemModelBuilder::new("particle-separation-centrifuge")
        .component_with(names::CORPORATE, ComponentKind::Network, |c| {
            c.with_entry_point(true).with_attribute(Attribute::new(
                AttributeKind::Function,
                "corporate IT network",
            ))
        })
        .component_with(names::WORKSTATION, ComponentKind::Workstation, |c| {
            c.with_criticality(Criticality::High)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "centrifuge programming and operator monitoring",
                ))
                .with_attribute(
                    Attribute::new(AttributeKind::Product, "engineering workstation")
                        .at_fidelity(Fidelity::Architectural),
                )
                .with_attribute(
                    Attribute::new(AttributeKind::OperatingSystem, "Windows 7")
                        .at_fidelity(Fidelity::Implementation),
                )
                .with_attribute(
                    Attribute::new(AttributeKind::Software, "Labview")
                        .at_fidelity(Fidelity::Implementation),
                )
        })
        .component_with(names::FIREWALL, ComponentKind::Firewall, |c| {
            c.with_criticality(Criticality::High)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "isolates the corporate network from the control network",
                ))
                .with_attribute(
                    Attribute::new(AttributeKind::Product, "industrial firewall appliance")
                        .at_fidelity(Fidelity::Architectural),
                )
                .with_attribute(
                    Attribute::new(AttributeKind::Product, "Cisco ASA")
                        .at_fidelity(Fidelity::Implementation),
                )
        })
        .component_with(names::SIS, ComponentKind::SafetySystem, |c| {
            c.with_criticality(Criticality::SafetyCritical)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "redundant safety monitor for the centrifuge controller",
                ))
                .with_attribute(
                    Attribute::new(AttributeKind::Hardware, "safety controller")
                        .at_fidelity(Fidelity::Architectural),
                )
                .with_attribute(
                    Attribute::new(AttributeKind::Hardware, "NI cRIO 9063")
                        .at_fidelity(Fidelity::Implementation),
                )
                .with_attribute(
                    Attribute::new(AttributeKind::OperatingSystem, "NI RT Linux OS")
                        .at_fidelity(Fidelity::Implementation),
                )
        })
        .component_with(names::BPCS, ComponentKind::Controller, |c| {
            c.with_criticality(Criticality::SafetyCritical)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "main centrifuge controller",
                ))
                .with_attribute(
                    Attribute::new(AttributeKind::Protocol, "MODBUS")
                        .at_fidelity(Fidelity::Architectural),
                )
                .with_attribute(
                    Attribute::new(AttributeKind::Hardware, "NI cRIO 9064")
                        .at_fidelity(Fidelity::Implementation),
                )
                .with_attribute(
                    Attribute::new(AttributeKind::OperatingSystem, "NI RT Linux OS")
                        .at_fidelity(Fidelity::Implementation),
                )
        })
        .component_with(names::TEMP_SENSOR, ComponentKind::Sensor, |c| {
            c.with_criticality(Criticality::High)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "monitors the temperature of the solution",
                ))
                .with_attribute(
                    Attribute::new(
                        AttributeKind::Product,
                        "precision passive temperature probe",
                    )
                    .at_fidelity(Fidelity::Architectural),
                )
        })
        .component_with(names::CENTRIFUGE, ComponentKind::Actuator, |c| {
            c.with_criticality(Criticality::SafetyCritical)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "particle separation by rotation",
                ))
                .with_attribute(
                    Attribute::new(
                        AttributeKind::Product,
                        "precision variable speed centrifuge",
                    )
                    .at_fidelity(Fidelity::Architectural),
                )
        })
        .component_with(names::COOLING, ComponentKind::Actuator, |c| {
            c.with_criticality(Criticality::High)
                .with_attribute(Attribute::new(
                    AttributeKind::Function,
                    "regulates the temperature of the solution",
                ))
                .with_attribute(
                    Attribute::new(AttributeKind::Product, "chiller unit")
                        .at_fidelity(Fidelity::Architectural),
                )
        })
        .channel(names::CORPORATE, names::WORKSTATION, ChannelKind::Ethernet)
        .channel(names::WORKSTATION, names::FIREWALL, ChannelKind::Ethernet)
        .channel(names::FIREWALL, names::BPCS, ChannelKind::Ethernet)
        .channel(names::FIREWALL, names::SIS, ChannelKind::Ethernet)
        .channel_with(
            names::BPCS,
            names::CENTRIFUGE,
            ChannelKind::Fieldbus,
            cpssec_model::Direction::Bidirectional,
            "drive command bus",
            vec![Attribute::new(AttributeKind::Protocol, "MODBUS")
                .at_fidelity(Fidelity::Architectural)],
        )
        .channel_with(
            names::BPCS,
            names::COOLING,
            ChannelKind::Fieldbus,
            cpssec_model::Direction::Bidirectional,
            "chiller command bus",
            vec![Attribute::new(AttributeKind::Protocol, "MODBUS")
                .at_fidelity(Fidelity::Architectural)],
        )
        .channel(names::BPCS, names::TEMP_SENSOR, ChannelKind::Analog)
        .channel(names::SIS, names::TEMP_SENSOR, ChannelKind::Analog)
        .channel(names::SIS, names::CENTRIFUGE, ChannelKind::Fieldbus)
        .channel(names::SIS, names::COOLING, ChannelKind::Fieldbus)
        .channel(names::CENTRIFUGE, names::TEMP_SENSOR, ChannelKind::Physical)
        .build()
        .expect("the reference model is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_has_the_fig1_topology() {
        let model = scada_model();
        assert_eq!(model.component_count(), 8);
        assert_eq!(model.channel_count(), 11);
        model.validate().unwrap();
    }

    #[test]
    fn entry_point_is_the_corporate_network() {
        let model = scada_model();
        let entries = model.entry_points();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            model.component(entries[0]).unwrap().name(),
            names::CORPORATE
        );
    }

    #[test]
    fn safety_critical_set_matches_the_paper() {
        let model = scada_model();
        let critical = model.components_at_criticality(Criticality::SafetyCritical);
        let names_found: Vec<&str> = critical
            .iter()
            .map(|id| model.component(*id).unwrap().name())
            .collect();
        assert!(names_found.contains(&names::SIS));
        assert!(names_found.contains(&names::BPCS));
        assert!(names_found.contains(&names::CENTRIFUGE));
    }

    #[test]
    fn table1_attributes_appear_at_implementation_fidelity() {
        let model = scada_model();
        let concrete = model.at_fidelity(Fidelity::Implementation);
        for (component, value) in [
            (names::FIREWALL, "Cisco ASA"),
            (names::WORKSTATION, "Windows 7"),
            (names::WORKSTATION, "Labview"),
            (names::SIS, "NI cRIO 9063"),
            (names::SIS, "NI RT Linux OS"),
            (names::BPCS, "NI cRIO 9064"),
        ] {
            let comp = concrete.component_by_name(component).unwrap();
            assert!(
                comp.attributes().iter().any(|a| a.value() == value),
                "{component} missing `{value}`"
            );
        }
    }

    #[test]
    fn conceptual_projection_hides_products() {
        let model = scada_model().at_fidelity(Fidelity::Conceptual);
        let ws = model.component_by_name(names::WORKSTATION).unwrap();
        assert!(ws.attributes().iter().all(|a| a.value() != "Windows 7"));
        assert!(ws.attributes().iter().any(|a| a.key() == "function"));
    }

    #[test]
    fn attack_paths_from_corporate_reach_the_centrifuge() {
        let model = scada_model();
        let entry = model.component_id(names::CORPORATE).unwrap();
        let target = model.component_id(names::CENTRIFUGE).unwrap();
        let path = model.shortest_path(entry, target).unwrap();
        // corporate -> WS -> firewall -> BPCS/SIS -> centrifuge
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn attack_scenario_targets_exist_in_the_model() {
        let model = scada_model();
        for scenario in crate::attacks::all_scenarios() {
            assert!(
                model
                    .component_by_name(&scenario.target_component)
                    .is_some(),
                "scenario `{}` targets unknown component `{}`",
                scenario.name,
                scenario.target_component
            );
        }
    }

    #[test]
    fn graphml_round_trip_preserves_the_model() {
        let model = scada_model();
        let xml = cpssec_model::to_graphml(&model);
        let back = cpssec_model::from_graphml(&xml).unwrap();
        assert_eq!(back, model);
    }
}
