//! Equivalence proof for the event-driven kernel on the full testbed.
//!
//! The min-heap event queue must reproduce the legacy fixed-tick
//! reference loop *byte for byte* — same trace CSV, same bus log, same
//! hazards, same batch report — across the centrifuge's nominal batch
//! and every built-in attack scenario. Fixed-tick semantics are the
//! special case of every-tick events; this is the proof.

use cpssec_scada::{attacks, ScadaConfig, ScadaHarness};
use cpssec_sim::KernelEngine;

/// Everything observable after a batch under one engine.
struct Fingerprint {
    trace_csv: String,
    bus_log: Vec<String>,
    hazards: Vec<String>,
    report: String,
}

fn fingerprint(engine: KernelEngine, attack: Option<&str>, ticks: u64) -> Fingerprint {
    let config = ScadaConfig::default();
    let mut harness = match attack {
        Some(name) => {
            let scenario = attacks::all_scenarios()
                .into_iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("no scenario named {name}"));
            ScadaHarness::with_attack(config, &scenario)
        }
        None => ScadaHarness::new(config),
    };
    harness.sim_mut().set_engine(engine);
    let report = harness.run_batch_for(ticks);
    let sim = harness.sim();
    Fingerprint {
        trace_csv: sim.trace().to_csv(),
        bus_log: sim
            .bus()
            .log()
            .iter()
            .map(|e| format!("{} {:?} {:?}", e.tick, e.request, e.outcome))
            .collect(),
        hazards: sim
            .hazards()
            .iter()
            .map(|h| format!("{}@{}", h.hazard, h.at))
            .collect(),
        report: format!("{report:?}"),
    }
}

fn assert_equivalent(attack: Option<&str>, ticks: u64) {
    let label = attack.unwrap_or("nominal");
    let event = fingerprint(KernelEngine::EventQueue, attack, ticks);
    let reference = fingerprint(KernelEngine::ReferenceLoop, attack, ticks);
    assert_eq!(
        event.trace_csv, reference.trace_csv,
        "{label}: trace CSV must be byte-identical"
    );
    assert_eq!(
        event.bus_log, reference.bus_log,
        "{label}: bus logs must match entry-for-entry"
    );
    assert_eq!(
        event.hazards, reference.hazards,
        "{label}: hazards must match"
    );
    assert_eq!(
        event.report, reference.report,
        "{label}: batch reports must match"
    );
}

#[test]
fn nominal_batch_is_byte_identical_across_engines() {
    assert_equivalent(None, 4000);
}

#[test]
fn every_attack_scenario_is_byte_identical_across_engines() {
    for scenario in attacks::all_scenarios() {
        assert_equivalent(Some(&scenario.name), 4000);
    }
}

#[test]
fn the_default_engine_is_the_event_queue() {
    let harness = ScadaHarness::new(ScadaConfig::default());
    assert_eq!(harness.sim().engine(), KernelEngine::EventQueue);
}
