//! The `.cpsnap` container: corpus + frozen indices in one binary artifact.
//!
//! A snapshot converts cold start from *O(parse + tokenize + build)* to
//! *O(read)*: the corpus records (via `cpssec_attackdb::snapshot`) and the
//! three frozen family indices — term dictionaries, postings, and the
//! precomputed TF-IDF/BM25 weights as raw `f64` bits — land in one file
//! behind a section table, and [`decode`] restores a [`SearchEngine`]
//! whose scores are bit-identical to one built from the original corpus.
//! Format version 2 goes further: every section is offset-based and
//! self-describing, so [`crate::view::SnapshotView`] can serve queries
//! straight from the mapped bytes after *O(header)* validation, without
//! decoding anything into owned memory.
//!
//! # Layout (format version 2)
//!
//! ```text
//! magic        "CPSNAP"                      6 bytes
//! version      u16 LE                        2 bytes
//! count        u32 LE                        4 bytes
//! snapshot_id  u64 LE                        8 bytes
//! table        count × { id:u16, offset:u64, len:u64, checksum:u64 }
//! payload      sections at their offsets, each 8-byte aligned
//! ```
//!
//! Sections: `1` corpus records (per-family record directories: count,
//! per-record byte offsets, concatenated records in id order), `2`/`3`/`4`
//! the pattern / weakness / vulnerability family (id table + columnar
//! inverted index, see [`InvertedIndex`] wire docs). Offsets are absolute
//! and rounded up to 8-byte boundaries (zero padding between sections);
//! each checksum is word-folded FNV ([`cpssec_model::fnv1a_64_wide`]) over
//! the section payload. `snapshot_id` is the same FNV over the serialized
//! section table: it fingerprints the entire content (each entry embeds
//! its payload checksum), doubles as the header's own integrity check, and
//! anchors the `.cpsdelta` parent chain ([`crate::delta`]).
//!
//! Two read paths share this layout. [`decode`] verifies every payload
//! checksum and materializes owned types. [`crate::view::open`] validates
//! the header and section geometry in *O(header)* and reads in place; the
//! deep payload checksums move to [`crate::view::open_verified`] or stay
//! with [`verify`]. Compatibility is strict: readers reject any version
//! they were not built for — a snapshot is a cache artifact, regenerable
//! from the corpus, never an archival format.

use cpssec_attackdb::snapshot as record_wire;
use cpssec_attackdb::snapshot::{put_u16, put_u32, put_u64, Reader};
use cpssec_attackdb::{CapecId, Corpus, CveId, CweId};
use cpssec_model::fnv1a_64_wide;

pub use cpssec_attackdb::snapshot::SnapshotError;

use crate::engine::MatchConfig;
use crate::index::InvertedIndex;
use crate::SearchEngine;

/// The six magic bytes every `.cpsnap` file starts with.
pub const MAGIC: [u8; 6] = *b"CPSNAP";

/// The format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 2;

/// Bytes per section-table entry: id + offset + len + checksum.
pub(crate) const TABLE_ENTRY_LEN: usize = 2 + 8 + 8 + 8;

pub(crate) const SEC_CORPUS: u16 = 1;
pub(crate) const SEC_PATTERNS: u16 = 2;
pub(crate) const SEC_WEAKNESSES: u16 = 3;
pub(crate) const SEC_VULNERABILITIES: u16 = 4;
/// Section order in every written snapshot.
const SECTION_IDS: [u16; 4] = [
    SEC_CORPUS,
    SEC_PATTERNS,
    SEC_WEAKNESSES,
    SEC_VULNERABILITIES,
];

fn section_name(id: u16) -> Option<&'static str> {
    match id {
        SEC_CORPUS => Some("corpus"),
        SEC_PATTERNS => Some("patterns"),
        SEC_WEAKNESSES => Some("weaknesses"),
        SEC_VULNERABILITIES => Some("vulnerabilities"),
        _ => None,
    }
}

/// Rounds `n` up to the next 8-byte boundary (section alignment rule).
fn align8(n: u64) -> u64 {
    n.next_multiple_of(8)
}

/// One section table entry, as [`inspect`] reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name (`corpus`, `patterns`, `weaknesses`, `vulnerabilities`).
    pub name: &'static str,
    /// Absolute byte offset of the payload (8-byte aligned).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Stored word-folded FNV checksum of the payload.
    pub checksum: u64,
}

/// Header-level description of a snapshot (no payload decoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version from the header.
    pub version: u16,
    /// Content fingerprint: FNV over the section table (which embeds every
    /// payload checksum). Anchors the `.cpsdelta` parent chain.
    pub snapshot_id: u64,
    /// The section table, in file order.
    pub sections: Vec<SectionInfo>,
}

impl SnapshotInfo {
    /// Total payload bytes across all sections.
    #[must_use]
    pub fn payload_len(&self) -> u64 {
        self.sections.iter().map(|s| s.len).sum()
    }
}

/// Encodes one record family of the corpus section: count, per-record byte
/// offsets into the blob, blob length, then the concatenated records in id
/// order — random access for [`crate::view::CorpusView`] without decoding.
fn encode_family_records<T>(
    out: &mut Vec<u8>,
    count: usize,
    records: impl Iterator<Item = T>,
    encode: impl Fn(&mut Vec<u8>, T),
) {
    put_u32(out, u32::try_from(count).expect("record count fits u32"));
    let mut offsets: Vec<u32> = Vec::with_capacity(count);
    let mut blob = Vec::new();
    for record in records {
        offsets.push(u32::try_from(blob.len()).expect("corpus blob fits u32"));
        encode(&mut blob, record);
    }
    assert_eq!(offsets.len(), count, "stats and iterator must agree");
    for off in offsets {
        put_u32(out, off);
    }
    put_u32(
        out,
        u32::try_from(blob.len()).expect("corpus blob fits u32"),
    );
    out.extend_from_slice(&blob);
}

/// The corpus section payload: three family record directories in order
/// (patterns, weaknesses, vulnerabilities).
fn encode_corpus_section(corpus: &Corpus) -> Vec<u8> {
    let stats = corpus.stats();
    let mut out = Vec::new();
    encode_family_records(&mut out, stats.patterns, corpus.patterns(), |b, p| {
        record_wire::encode_pattern(b, p);
    });
    encode_family_records(&mut out, stats.weaknesses, corpus.weaknesses(), |b, w| {
        record_wire::encode_weakness(b, w);
    });
    encode_family_records(
        &mut out,
        stats.vulnerabilities,
        corpus.vulnerabilities(),
        record_wire::encode_vulnerability,
    );
    out
}

/// Decodes one family record directory, feeding each record to `add`.
fn decode_family_records<T>(
    r: &mut Reader<'_>,
    family: &'static str,
    decode: impl Fn(&mut Reader<'_>) -> Result<T, SnapshotError>,
    mut add: impl FnMut(T) -> Result<(), SnapshotError>,
) -> Result<(), SnapshotError> {
    let count = r.u32()?;
    let mut offsets = Vec::with_capacity(r.capacity_for(count, 4));
    for _ in 0..count {
        offsets.push(r.u32()?);
    }
    let blob_len = r.u32()? as usize;
    let blob = r.take(blob_len)?;
    for i in 0..offsets.len() {
        let start = offsets[i] as usize;
        let end = offsets.get(i + 1).map_or(blob_len, |&o| o as usize);
        if start > end || end > blob_len || (i == 0 && start != 0) {
            return Err(SnapshotError::Corrupt(format!(
                "`{family}` record {i} directory entry is out of bounds"
            )));
        }
        let mut rr = Reader::new(&blob[start..end]);
        let record = decode(&mut rr)?;
        if !rr.finished() {
            return Err(SnapshotError::Corrupt(format!(
                "`{family}` record {i} has {} trailing byte(s)",
                rr.remaining()
            )));
        }
        add(record)?;
    }
    Ok(())
}

/// Decodes the corpus section payload back into an owned [`Corpus`].
fn decode_corpus_section(payload: &[u8]) -> Result<Corpus, SnapshotError> {
    let mut corpus = Corpus::new();
    let mut r = Reader::new(payload);
    decode_family_records(&mut r, "patterns", record_wire::decode_pattern, |p| {
        corpus
            .add_pattern(p)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))
    })?;
    decode_family_records(&mut r, "weaknesses", record_wire::decode_weakness, |w| {
        corpus
            .add_weakness(w)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))
    })?;
    decode_family_records(
        &mut r,
        "vulnerabilities",
        record_wire::decode_vulnerability,
        |v| {
            corpus
                .add_vulnerability(v)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))
        },
    )?;
    if !r.finished() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing byte(s) after the last record directory",
            r.remaining()
        )));
    }
    Ok(corpus)
}

/// Serializes `corpus` and `engine` into a `.cpsnap` byte image.
///
/// The engine must have been built over `corpus` — the id tables are
/// validated against the corpus on decode. Output is deterministic: the
/// same inputs always produce the same bytes, and (because the index wire
/// format is independent of term-id numbering) an engine grown by
/// [`crate::delta`] appends encodes identically to one rebuilt from
/// scratch over the same corpus.
///
/// # Panics
///
/// Panics if a section exceeds `u64::MAX` bytes or a family holds more
/// than `u32::MAX` records — unreachable for any corpus that fits memory.
#[must_use]
pub fn encode(corpus: &Corpus, engine: &SearchEngine) -> Vec<u8> {
    let _span = cpssec_obs::span!("snapshot-encode");
    let ((p_index, p_ids), (w_index, w_ids), (v_index, v_ids)) = engine.parts();

    let corpus_payload = encode_corpus_section(corpus);

    let encode_family = |index: &InvertedIndex, put_ids: &dyn Fn(&mut Vec<u8>)| {
        let mut out = Vec::new();
        put_ids(&mut out);
        index.encode_into(&mut out);
        out
    };
    let patterns_payload = encode_family(p_index, &|out| {
        put_u32(out, u32::try_from(p_ids.len()).expect("fits u32"));
        for id in p_ids {
            put_u32(out, id.number());
        }
    });
    let weaknesses_payload = encode_family(w_index, &|out| {
        put_u32(out, u32::try_from(w_ids.len()).expect("fits u32"));
        for id in w_ids {
            put_u32(out, id.number());
        }
    });
    let vulnerabilities_payload = encode_family(v_index, &|out| {
        put_u32(out, u32::try_from(v_ids.len()).expect("fits u32"));
        for id in v_ids {
            put_u16(out, id.year());
            put_u32(out, id.number());
        }
    });

    let payloads = [
        corpus_payload,
        patterns_payload,
        weaknesses_payload,
        vulnerabilities_payload,
    ];
    let header_len = (MAGIC.len() + 2 + 4 + 8 + payloads.len() * TABLE_ENTRY_LEN) as u64;
    let mut table = Vec::with_capacity(payloads.len() * TABLE_ENTRY_LEN);
    let mut section_offsets = Vec::with_capacity(payloads.len());
    let mut offset = align8(header_len);
    for (id, payload) in SECTION_IDS.iter().zip(payloads.iter()) {
        put_u16(&mut table, *id);
        put_u64(&mut table, offset);
        put_u64(&mut table, payload.len() as u64);
        put_u64(&mut table, fnv1a_64_wide(payload));
        section_offsets.push(offset as usize);
        offset = align8(offset + payload.len() as u64);
    }
    let snapshot_id = fnv1a_64_wide(&table);
    let mut out = Vec::with_capacity(offset as usize);
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, FORMAT_VERSION);
    put_u32(&mut out, u32::try_from(payloads.len()).expect("fits u32"));
    put_u64(&mut out, snapshot_id);
    out.extend_from_slice(&table);
    for (payload, &section_offset) in payloads.iter().zip(&section_offsets) {
        out.resize(section_offset, 0); // alignment padding
        out.extend_from_slice(payload);
    }
    out
}

/// A parsed section: table entry plus its (not yet verified) payload.
pub(crate) struct Section<'a> {
    pub(crate) id: u16,
    pub(crate) name: &'static str,
    pub(crate) offset: u64,
    pub(crate) checksum: u64,
    pub(crate) payload: &'a [u8],
}

/// Parses the header and section table in *O(header)*: magic, version,
/// the `snapshot_id` integrity check over the table bytes, then
/// bounds- and alignment-checks on every payload span. Payload checksums
/// are NOT verified here — that is [`checked_sections`].
pub(crate) fn split_sections(bytes: &[u8]) -> Result<(u16, u64, Vec<Section<'_>>), SnapshotError> {
    if bytes.len() < MAGIC.len() {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let count = r.u32()?;
    let snapshot_id = r.u64()?;
    let table = r.take(count as usize * TABLE_ENTRY_LEN)?;
    if fnv1a_64_wide(table) != snapshot_id {
        return Err(SnapshotError::ChecksumMismatch("section table"));
    }
    let mut tr = Reader::new(table);
    let mut sections = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let id = tr.u16()?;
        let offset = tr.u64()?;
        let len = tr.u64()?;
        let checksum = tr.u64()?;
        let name = section_name(id).ok_or_else(|| {
            SnapshotError::Corrupt(format!("unknown section id {id} in the section table"))
        })?;
        if offset % 8 != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "`{name}` section offset {offset} is not 8-byte aligned"
            )));
        }
        let end = offset.checked_add(len).ok_or(SnapshotError::Truncated)?;
        if end > bytes.len() as u64 {
            return Err(SnapshotError::Truncated);
        }
        sections.push(Section {
            id,
            name,
            offset,
            checksum,
            payload: &bytes[offset as usize..end as usize],
        });
    }
    Ok((version, snapshot_id, sections))
}

/// Verifies every section checksum, then returns payloads keyed by id.
pub(crate) fn checked_sections(bytes: &[u8]) -> Result<Vec<Section<'_>>, SnapshotError> {
    let (_, _, sections) = split_sections(bytes)?;
    for section in &sections {
        if fnv1a_64_wide(section.payload) != section.checksum {
            return Err(SnapshotError::ChecksumMismatch(section.name));
        }
    }
    Ok(sections)
}

pub(crate) fn find_section<'a>(
    sections: &'a [Section<'_>],
    id: u16,
) -> Result<&'a Section<'a>, SnapshotError> {
    sections.iter().find(|s| s.id == id).ok_or_else(|| {
        let name = section_name(id).unwrap_or("?");
        SnapshotError::Corrupt(format!("missing `{name}` section"))
    })
}

/// Decodes one family section: id table + index, fully consumed.
fn decode_family<I>(
    section: &Section<'_>,
    mut read_id: impl FnMut(&mut Reader<'_>) -> Result<I, SnapshotError>,
) -> Result<(InvertedIndex, Vec<I>), SnapshotError> {
    let mut r = Reader::new(section.payload);
    let count = r.u32()?;
    let mut ids = Vec::with_capacity(r.capacity_for(count, 4));
    for _ in 0..count {
        ids.push(read_id(&mut r)?);
    }
    let index = InvertedIndex::decode(&mut r)?;
    if !r.finished() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing byte(s) in `{}` section",
            r.remaining(),
            section.name
        )));
    }
    if index.len() != ids.len() {
        return Err(SnapshotError::Corrupt(format!(
            "`{}` id table has {} entries for {} indexed documents",
            section.name,
            ids.len(),
            index.len()
        )));
    }
    Ok((index, ids))
}

/// Decodes a snapshot into its corpus and a search engine using `config`.
///
/// All section checksums are verified first; the engine's frozen weights
/// come straight from the stored bits, so its scores are bit-identical to
/// the engine that was encoded.
///
/// # Errors
///
/// Every [`SnapshotError`] variant: truncation, bad magic, unsupported
/// version, checksum mismatch, or structurally corrupt payloads.
pub fn decode_with_config(
    bytes: &[u8],
    config: MatchConfig,
) -> Result<(Corpus, SearchEngine), SnapshotError> {
    let _span = cpssec_obs::span!("snapshot-decode");
    let sections = checked_sections(bytes)?;

    let corpus_section = find_section(&sections, SEC_CORPUS)?;
    let corpus = decode_corpus_section(corpus_section.payload)?;

    let patterns = decode_family(find_section(&sections, SEC_PATTERNS)?, |r| {
        Ok(CapecId::new(r.u32()?))
    })?;
    let weaknesses = decode_family(find_section(&sections, SEC_WEAKNESSES)?, |r| {
        Ok(CweId::new(r.u32()?))
    })?;
    let vulnerabilities = decode_family(find_section(&sections, SEC_VULNERABILITIES)?, |r| {
        Ok(CveId::new(r.u16()?, r.u32()?))
    })?;

    let stats = corpus.stats();
    for (name, got, expected) in [
        ("patterns", patterns.1.len(), stats.patterns),
        ("weaknesses", weaknesses.1.len(), stats.weaknesses),
        (
            "vulnerabilities",
            vulnerabilities.1.len(),
            stats.vulnerabilities,
        ),
    ] {
        if got != expected {
            return Err(SnapshotError::Corrupt(format!(
                "`{name}` index covers {got} documents but the corpus holds {expected} records"
            )));
        }
    }

    let engine = SearchEngine::from_parts(config, patterns, weaknesses, vulnerabilities);
    Ok((corpus, engine))
}

/// [`decode_with_config`] with the default [`MatchConfig`].
///
/// # Errors
///
/// As [`decode_with_config`].
pub fn decode(bytes: &[u8]) -> Result<(Corpus, SearchEngine), SnapshotError> {
    decode_with_config(bytes, MatchConfig::default())
}

/// Parses the header and section table without decoding payloads — the
/// cheap `snapshot inspect` path. The table's own integrity is checked
/// (via `snapshot_id`) and every span is bounds-checked; payload checksums
/// are not verified (use [`verify`] for that).
///
/// # Errors
///
/// Truncation, bad magic, unsupported version, a corrupted section table,
/// or an unknown section id.
pub fn inspect(bytes: &[u8]) -> Result<SnapshotInfo, SnapshotError> {
    let (version, snapshot_id, sections) = split_sections(bytes)?;
    Ok(SnapshotInfo {
        version,
        snapshot_id,
        sections: sections
            .iter()
            .map(|s| SectionInfo {
                name: s.name,
                offset: s.offset,
                len: s.payload.len() as u64,
                checksum: s.checksum,
            })
            .collect(),
    })
}

/// Fully verifies a snapshot — header, checksums, and a complete decode —
/// and returns the decoded corpus and engine for further use.
///
/// # Errors
///
/// As [`decode`].
pub fn verify(bytes: &[u8]) -> Result<(Corpus, SearchEngine), SnapshotError> {
    decode(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScoringModel;
    use cpssec_attackdb::seed::{seed_corpus, table1_attributes};

    fn snapshot() -> (Corpus, Vec<u8>) {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let bytes = encode(&corpus, &engine);
        (corpus, bytes)
    }

    #[test]
    fn round_trip_restores_corpus_and_bit_identical_scores() {
        let (corpus, bytes) = snapshot();
        let (decoded_corpus, engine) = decode(&bytes).expect("decode");
        assert_eq!(decoded_corpus, corpus);
        let fresh = SearchEngine::build(&corpus);
        for query in table1_attributes() {
            let a = fresh.match_text(query);
            let b = engine.match_text(query);
            assert_eq!(a, b, "{query}");
            let left = a
                .patterns
                .iter()
                .chain(&a.weaknesses)
                .chain(&a.vulnerabilities);
            let right = b
                .patterns
                .iter()
                .chain(&b.weaknesses)
                .chain(&b.vulnerabilities);
            for (x, y) in left.zip(right) {
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{query}");
            }
        }
    }

    #[test]
    fn encode_is_deterministic_and_a_fixpoint() {
        let (corpus, bytes) = snapshot();
        let engine = SearchEngine::build(&corpus);
        assert_eq!(bytes, encode(&corpus, &engine));
        let (c2, e2) = decode(&bytes).unwrap();
        assert_eq!(encode(&c2, &e2), bytes, "decode → encode must be identity");
    }

    #[test]
    fn with_scoring_reuses_the_thawed_weights() {
        let (corpus, bytes) = snapshot();
        let (_, engine) = decode(&bytes).unwrap();
        let bm25 = engine.with_scoring(ScoringModel::Bm25);
        let fresh = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                scoring: ScoringModel::Bm25,
                ..MatchConfig::default()
            },
        );
        for query in table1_attributes() {
            assert_eq!(fresh.match_text(query), bm25.match_text(query), "{query}");
        }
    }

    #[test]
    fn inspect_reports_the_aligned_section_table() {
        let (_, bytes) = snapshot();
        let info = inspect(&bytes).unwrap();
        assert_eq!(info.version, FORMAT_VERSION);
        assert_ne!(info.snapshot_id, 0);
        let names: Vec<&str> = info.sections.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["corpus", "patterns", "weaknesses", "vulnerabilities"]
        );
        // Alignment rule: every section starts on an 8-byte boundary, in
        // ascending file order, inside the file.
        let mut prev_end = 0u64;
        for s in &info.sections {
            assert_eq!(s.offset % 8, 0, "{} misaligned", s.name);
            assert!(s.offset >= prev_end, "{} overlaps", s.name);
            prev_end = s.offset + s.len;
        }
        assert!(prev_end <= bytes.len() as u64);
        assert!(info.payload_len() > 0);
        assert!(info.payload_len() < bytes.len() as u64);
    }

    #[test]
    fn snapshot_id_fingerprints_the_content() {
        let (_, bytes) = snapshot();
        let base = inspect(&bytes).unwrap().snapshot_id;
        // A one-record change anywhere must produce a different id.
        let mut bigger = seed_corpus();
        bigger
            .add_weakness(cpssec_attackdb::Weakness::new(
                cpssec_attackdb::CweId::new(9999),
                "extra",
                "record",
            ))
            .unwrap();
        let engine = SearchEngine::build(&bigger);
        let other = inspect(&encode(&bigger, &engine)).unwrap().snapshot_id;
        assert_ne!(base, other);
        // And the id is stable across identical encodes.
        assert_eq!(base, inspect(&snapshot().1).unwrap().snapshot_id);
    }

    #[test]
    fn truncated_bad_magic_wrong_version_and_bad_checksum_are_distinct() {
        let (_, bytes) = snapshot();

        assert_eq!(decode(&bytes[..3]).unwrap_err(), SnapshotError::Truncated);
        assert_eq!(
            decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            SnapshotError::Truncated
        );

        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert_eq!(decode(&magic).unwrap_err(), SnapshotError::BadMagic);

        let mut version = bytes.clone();
        version[6] = 9;
        assert_eq!(
            decode(&version).unwrap_err(),
            SnapshotError::UnsupportedVersion(9)
        );

        let mut payload = bytes.clone();
        let last = payload.len() - 1;
        payload[last] ^= 0xFF;
        assert_eq!(
            decode(&payload).unwrap_err(),
            SnapshotError::ChecksumMismatch("vulnerabilities")
        );

        // A flipped byte inside the section table trips the snapshot_id
        // integrity check before any payload is read.
        let mut table = bytes.clone();
        table[20] ^= 0xFF;
        assert_eq!(
            decode(&table).unwrap_err(),
            SnapshotError::ChecksumMismatch("section table")
        );
    }

    #[test]
    fn every_header_truncation_point_fails_cleanly() {
        let (_, bytes) = snapshot();
        let header = 6 + 2 + 4 + 8 + 4 * TABLE_ENTRY_LEN;
        for len in 0..header {
            let err = decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::UnsupportedVersion(_)
                ),
                "prefix {len}: {err}"
            );
        }
    }

    #[test]
    fn mismatched_id_table_is_corrupt() {
        // Encode an engine over a *different* corpus than the one stored.
        let seed = seed_corpus();
        let mut bigger = seed_corpus();
        bigger
            .add_weakness(cpssec_attackdb::Weakness::new(
                cpssec_attackdb::CweId::new(9999),
                "extra",
                "record",
            ))
            .unwrap();
        let engine = SearchEngine::build(&bigger);
        let bytes = encode(&seed, &engine);
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }
}
