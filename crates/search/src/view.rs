//! Zero-copy snapshot views: query a `.cpsnap` byte image in place.
//!
//! [`open`] validates a mapped snapshot in *O(header)* — magic, version,
//! the `snapshot_id` integrity check over the section table, and an exact
//! geometric tiling of every section (each family's id table, document
//! lengths, term heap, entry table, and postings arena must account for
//! every byte) — and returns a [`SnapshotView`] that reads the bytes where
//! they are. No record is decoded, no term is re-interned, no weight is
//! recomputed: a [`ViewEngine`] binary-searches the sorted on-disk term
//! dictionary and iterates postings straight out of the file image, which
//! is what makes cold start *O(read + header)* instead of
//! *O(decode everything)*.
//!
//! Safety without `unsafe`: the view never transmutes. Every multi-byte
//! field goes through `from_le_bytes` on a bounds-checked subslice, and
//! the query hot path uses *clamped* reads — an out-of-range entry (only
//! possible when the caller skipped [`open_verified`]'s checksum pass)
//! degrades to a term miss or a truncated posting list, never a panic.
//!
//! Equivalence contract: every query on a [`ViewEngine`] returns results
//! byte-identical (ids, order, score bits) to the same query on the owned
//! [`SearchEngine`] decoded from the same snapshot. The engine scores
//! through the same generic [`run_family`](crate::engine) path; the view
//! merely substitutes where postings are read from. The proptest suite in
//! `tests/view_equivalence.rs` holds this across corpus scales and delta
//! chains.

use std::cell::RefCell;
use std::sync::Arc;

use cpssec_attackdb::snapshot as record_wire;
use cpssec_attackdb::snapshot::Reader;
use cpssec_attackdb::{
    AttackPattern, AttackVectorId, CapecId, Corpus, CveId, CweId, Vulnerability, Weakness,
};
use cpssec_model::{Channel, ChannelId, Component, Fidelity, SystemModel};

use crate::engine::{par_fan_out, prepare_query, run_family, MatchConfig, MatchSet, QueryScratch};
use crate::index::{DocId, PostingWeight, TermLookup};
use crate::snapshot::{
    checked_sections, find_section, split_sections, Section, SnapshotError, SEC_CORPUS,
    SEC_PATTERNS, SEC_VULNERABILITIES, SEC_WEAKNESSES,
};

/// Bytes per term entry in the wire layout (see [`crate::snapshot`]).
const TERM_ENTRY_LEN: usize = 24;
/// Bytes per posting in the wire layout.
const POSTING_LEN: usize = 24;

/// Reads a `u32` at `off`, clamping out-of-range access to zero.
fn u32_at(bytes: &[u8], off: usize) -> u32 {
    bytes
        .get(off..off + 4)
        .map_or(0, |b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

/// Reads a `u16` at `off`, clamping out-of-range access to zero.
fn u16_at(bytes: &[u8], off: usize) -> u16 {
    bytes
        .get(off..off + 2)
        .map_or(0, |b| u16::from_le_bytes(b.try_into().expect("2 bytes")))
}

/// Reads an `f64` (stored as raw bits) at `off`, clamping to zero.
fn f64_at(bytes: &[u8], off: usize) -> f64 {
    f64::from_bits(
        bytes
            .get(off..off + 8)
            .map_or(0, |b| u64::from_le_bytes(b.try_into().expect("8 bytes"))),
    )
}

/// Absolute byte spans of one record family directory in the corpus
/// section: count, per-record offset table, and the record blob.
#[derive(Debug, Clone, Copy)]
struct RecordFamilySpans {
    count: u32,
    offsets_off: usize,
    blob_off: usize,
    blob_len: u32,
}

/// Absolute byte spans of one indexed family section: the id table plus
/// the five regions of the columnar inverted index.
#[derive(Debug, Clone, Copy)]
struct FamilySpans {
    ids_off: usize,
    id_stride: usize,
    doc_count: u32,
    term_count: u32,
    heap_off: usize,
    heap_len: u32,
    entries_off: usize,
    posting_total: u32,
    postings_off: usize,
}

/// A validated, zero-copy handle onto a `.cpsnap` byte image.
///
/// The bytes live in one shared `Arc<[u8]>`; clones of the view share
/// them. Construction ([`open`]) costs *O(header)*; all payload access is
/// lazy and in place.
#[derive(Debug, Clone)]
pub struct SnapshotView {
    bytes: Arc<[u8]>,
    snapshot_id: u64,
    corpus: [RecordFamilySpans; 3],
    patterns: FamilySpans,
    weaknesses: FamilySpans,
    vulnerabilities: FamilySpans,
}

/// Parses one family section into spans, verifying that the declared
/// regions tile the section payload exactly.
fn parse_family_section(
    section: &Section<'_>,
    id_stride: usize,
) -> Result<FamilySpans, SnapshotError> {
    let base = section.offset as usize;
    let payload = section.payload;
    let pos = |r: &Reader<'_>| base + (payload.len() - r.remaining());
    let mut r = Reader::new(payload);
    let id_count = r.u32()?;
    let ids_off = pos(&r);
    r.take(id_count as usize * id_stride)?;
    let doc_count = r.u32()?;
    if doc_count != id_count {
        return Err(SnapshotError::Corrupt(format!(
            "`{}` id table has {id_count} entries for {doc_count} indexed documents",
            section.name
        )));
    }
    r.take(doc_count as usize * 4)?; // document lengths: build-side data only
    let term_count = r.u32()?;
    let heap_len = r.u32()?;
    let heap_off = pos(&r);
    r.take(heap_len as usize)?;
    let entries_off = pos(&r);
    r.take(term_count as usize * TERM_ENTRY_LEN)?;
    let posting_total = r.u32()?;
    let postings_off = pos(&r);
    r.take(posting_total as usize * POSTING_LEN)?;
    if !r.finished() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing byte(s) in `{}` section",
            r.remaining(),
            section.name
        )));
    }
    Ok(FamilySpans {
        ids_off,
        id_stride,
        doc_count,
        term_count,
        heap_off,
        heap_len,
        entries_off,
        posting_total,
        postings_off,
    })
}

/// Parses the corpus section's three record directories into spans.
fn parse_corpus_section(section: &Section<'_>) -> Result<[RecordFamilySpans; 3], SnapshotError> {
    let base = section.offset as usize;
    let payload = section.payload;
    let pos = |r: &Reader<'_>| base + (payload.len() - r.remaining());
    let mut r = Reader::new(payload);
    let mut families = [RecordFamilySpans {
        count: 0,
        offsets_off: 0,
        blob_off: 0,
        blob_len: 0,
    }; 3];
    for family in &mut families {
        let count = r.u32()?;
        let offsets_off = pos(&r);
        r.take(count as usize * 4)?;
        let blob_len = r.u32()?;
        let blob_off = pos(&r);
        r.take(blob_len as usize)?;
        *family = RecordFamilySpans {
            count,
            offsets_off,
            blob_off,
            blob_len,
        };
    }
    if !r.finished() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing byte(s) after the last record directory",
            r.remaining()
        )));
    }
    Ok(families)
}

/// Opens a snapshot byte image as a zero-copy view in *O(header)*.
///
/// Validates the magic, version, the section table's own integrity (via
/// `snapshot_id`), and the exact geometric tiling of every section — but
/// does **not** verify payload checksums; clamped reads keep queries over
/// silently corrupted payloads panic-free (they degrade to misses). Use
/// [`open_verified`] when the bytes come from an untrusted medium.
///
/// # Errors
///
/// Truncation, bad magic, unsupported version, a corrupt section table,
/// or section geometry that does not tile the payload.
pub fn open(bytes: Arc<[u8]>) -> Result<SnapshotView, SnapshotError> {
    let (_, snapshot_id, sections) = split_sections(&bytes)?;
    let corpus = parse_corpus_section(find_section(&sections, SEC_CORPUS)?)?;
    let patterns = parse_family_section(find_section(&sections, SEC_PATTERNS)?, 4)?;
    let weaknesses = parse_family_section(find_section(&sections, SEC_WEAKNESSES)?, 4)?;
    let vulnerabilities = parse_family_section(find_section(&sections, SEC_VULNERABILITIES)?, 6)?;
    if patterns.doc_count != corpus[0].count
        || weaknesses.doc_count != corpus[1].count
        || vulnerabilities.doc_count != corpus[2].count
    {
        return Err(SnapshotError::Corrupt(
            "index document counts disagree with the corpus record directories".into(),
        ));
    }
    drop(sections);
    Ok(SnapshotView {
        bytes,
        snapshot_id,
        corpus,
        patterns,
        weaknesses,
        vulnerabilities,
    })
}

/// [`open`] plus a full payload-checksum pass — still zero-copy, but every
/// section's FNV is verified before the view is returned.
///
/// # Errors
///
/// As [`open`], plus [`SnapshotError::ChecksumMismatch`] naming the first
/// corrupt section.
pub fn open_verified(bytes: Arc<[u8]>) -> Result<SnapshotView, SnapshotError> {
    checked_sections(&bytes)?;
    open(bytes)
}

impl SnapshotView {
    /// The snapshot's content fingerprint (see [`crate::snapshot`]): FNV
    /// over the section table, anchoring the `.cpsdelta` parent chain.
    #[must_use]
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// Total mapped bytes backing this view (the whole file image).
    #[must_use]
    pub fn mapped_len(&self) -> usize {
        self.bytes.len()
    }

    /// The record side of the snapshot, for random access without decode.
    #[must_use]
    pub fn corpus(&self) -> CorpusView<'_> {
        CorpusView { view: self }
    }

    fn index_view(&self, spans: FamilySpans) -> IndexView<'_> {
        IndexView {
            bytes: &self.bytes,
            spans,
        }
    }
}

/// Zero-copy access to the snapshot's record directories: counts and
/// per-record decode on demand (one record at a time, not the corpus).
#[derive(Debug, Clone, Copy)]
pub struct CorpusView<'a> {
    view: &'a SnapshotView,
}

impl<'a> CorpusView<'a> {
    /// Number of attack-pattern records.
    #[must_use]
    pub fn pattern_count(&self) -> usize {
        self.view.corpus[0].count as usize
    }

    /// Number of weakness records.
    #[must_use]
    pub fn weakness_count(&self) -> usize {
        self.view.corpus[1].count as usize
    }

    /// Number of vulnerability records.
    #[must_use]
    pub fn vulnerability_count(&self) -> usize {
        self.view.corpus[2].count as usize
    }

    /// Total records across the three families.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.pattern_count() + self.weakness_count() + self.vulnerability_count()
    }

    /// The encoded bytes of record `i` in family directory `fam`.
    fn record_bytes(&self, fam: usize, i: usize) -> Result<&'a [u8], SnapshotError> {
        let spans = self.view.corpus[fam];
        let bytes: &'a [u8] = &self.view.bytes;
        if i >= spans.count as usize {
            return Err(SnapshotError::Corrupt(format!(
                "record {i} is out of range for a {}-record directory",
                spans.count
            )));
        }
        let start = u32_at(bytes, spans.offsets_off + i * 4) as usize;
        let end = if i + 1 < spans.count as usize {
            u32_at(bytes, spans.offsets_off + (i + 1) * 4) as usize
        } else {
            spans.blob_len as usize
        };
        if start > end || end > spans.blob_len as usize {
            return Err(SnapshotError::Corrupt(format!(
                "record {i} directory entry is out of bounds"
            )));
        }
        Ok(&bytes[spans.blob_off + start..spans.blob_off + end])
    }

    fn decode_record<T>(
        &self,
        fam: usize,
        i: usize,
        decode: impl Fn(&mut Reader<'_>) -> Result<T, SnapshotError>,
    ) -> Result<T, SnapshotError> {
        let mut r = Reader::new(self.record_bytes(fam, i)?);
        let record = decode(&mut r)?;
        if !r.finished() {
            return Err(SnapshotError::Corrupt(format!(
                "record {i} has {} trailing byte(s)",
                r.remaining()
            )));
        }
        Ok(record)
    }

    /// Decodes attack pattern `i` (directory order = ascending id).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on an out-of-range index or a record the
    /// checksum pass was skipped on that fails to decode.
    pub fn pattern(&self, i: usize) -> Result<AttackPattern, SnapshotError> {
        self.decode_record(0, i, record_wire::decode_pattern)
    }

    /// Decodes weakness `i` (directory order = ascending id).
    ///
    /// # Errors
    ///
    /// As [`Self::pattern`].
    pub fn weakness(&self, i: usize) -> Result<Weakness, SnapshotError> {
        self.decode_record(1, i, record_wire::decode_weakness)
    }

    /// Decodes vulnerability `i` (directory order = ascending id).
    ///
    /// # Errors
    ///
    /// As [`Self::pattern`].
    pub fn vulnerability(&self, i: usize) -> Result<Vulnerability, SnapshotError> {
        self.decode_record(2, i, record_wire::decode_vulnerability)
    }

    /// Decodes every record into an owned [`Corpus`] — the bridge from a
    /// mapped view to the owned world (e.g. building an association map).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on any malformed or duplicated record.
    pub fn decode_corpus(&self) -> Result<Corpus, SnapshotError> {
        let mut corpus = Corpus::new();
        let dup = |e: cpssec_attackdb::AttackDbError| SnapshotError::Corrupt(e.to_string());
        for i in 0..self.pattern_count() {
            corpus.add_pattern(self.pattern(i)?).map_err(dup)?;
        }
        for i in 0..self.weakness_count() {
            corpus.add_weakness(self.weakness(i)?).map_err(dup)?;
        }
        for i in 0..self.vulnerability_count() {
            corpus
                .add_vulnerability(self.vulnerability(i)?)
                .map_err(dup)?;
        }
        Ok(corpus)
    }
}

/// Zero-copy [`TermLookup`] over one family's columnar index bytes:
/// binary search on the sorted on-disk term dictionary, postings iterated
/// straight from the arena bytes. All reads are clamped; corrupt entries
/// degrade to misses or truncated iteration, never a panic.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IndexView<'a> {
    bytes: &'a [u8],
    spans: FamilySpans,
}

impl<'a> IndexView<'a> {
    /// The heap bytes of term entry `i`, clamped to the heap span.
    fn term_bytes(&self, i: usize) -> &'a [u8] {
        let entry = self.spans.entries_off + i * TERM_ENTRY_LEN;
        let str_off = u32_at(self.bytes, entry) as usize;
        let str_len = u32_at(self.bytes, entry + 4) as usize;
        let heap_end = self.spans.heap_off + self.spans.heap_len as usize;
        let start = (self.spans.heap_off + str_off).min(heap_end);
        let end = start.saturating_add(str_len).min(heap_end);
        &self.bytes[start..end]
    }
}

/// Posting iterator reading `{doc, tf, tfidf, bm25}` records in place.
/// Iteration stops early if a posting references a document outside the
/// family — the corruption guard that keeps the dense scratch table (sized
/// to `doc_count`) in bounds without verifying checksums up front.
pub(crate) struct ViewPostings<'a> {
    bytes: &'a [u8],
    off: usize,
    remaining: u32,
    doc_count: u32,
}

impl Iterator for ViewPostings<'_> {
    type Item = PostingWeight;

    fn next(&mut self) -> Option<PostingWeight> {
        if self.remaining == 0 {
            return None;
        }
        let doc = u32_at(self.bytes, self.off);
        if doc >= self.doc_count {
            self.remaining = 0;
            return None;
        }
        let tfidf = f64_at(self.bytes, self.off + 8);
        let bm25 = f64_at(self.bytes, self.off + 16);
        self.off += POSTING_LEN;
        self.remaining -= 1;
        Some(PostingWeight {
            doc: DocId(doc),
            tfidf,
            bm25,
        })
    }
}

impl TermLookup for IndexView<'_> {
    type PostingIter<'b>
        = ViewPostings<'b>
    where
        Self: 'b;

    fn doc_count(&self) -> usize {
        self.spans.doc_count as usize
    }

    fn lookup(&self, term: &str) -> Option<(f64, Self::PostingIter<'_>)> {
        // Byte-lexicographic comparison equals `str` ordering, which is the
        // order `encode_into` sorted the dictionary by.
        let needle = term.as_bytes();
        let mut lo = 0usize;
        let mut hi = self.spans.term_count as usize;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.term_bytes(mid).cmp(needle) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let entry = self.spans.entries_off + mid * TERM_ENTRY_LEN;
                    let idf = f64_at(self.bytes, entry + 8);
                    let post_start = u32_at(self.bytes, entry + 16);
                    let post_len = u32_at(self.bytes, entry + 20);
                    // Clamp the span to the arena so a corrupt entry cannot
                    // run past the section.
                    let start = post_start.min(self.spans.posting_total);
                    let len = post_len.min(self.spans.posting_total - start);
                    return Some((
                        idf,
                        ViewPostings {
                            bytes: self.bytes,
                            off: self.spans.postings_off + start as usize * POSTING_LEN,
                            remaining: len,
                            doc_count: self.spans.doc_count,
                        },
                    ));
                }
            }
        }
        None
    }
}

thread_local! {
    static VIEW_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// A query engine over a [`SnapshotView`]: the zero-copy counterpart of
/// [`SearchEngine`](crate::SearchEngine), sharing its entire scoring path
/// ([`run_family`]) so results are byte-identical — only the postings
/// storage differs.
#[derive(Debug, Clone)]
pub struct ViewEngine {
    view: SnapshotView,
    config: MatchConfig,
}

impl ViewEngine {
    /// Wraps a view with the default [`MatchConfig`].
    #[must_use]
    pub fn new(view: SnapshotView) -> Self {
        ViewEngine::with_config(view, MatchConfig::default())
    }

    /// Wraps a view with an explicit configuration.
    #[must_use]
    pub fn with_config(view: SnapshotView, config: MatchConfig) -> Self {
        ViewEngine { view, config }
    }

    /// The underlying snapshot view.
    #[must_use]
    pub fn view(&self) -> &SnapshotView {
        &self.view
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> MatchConfig {
        self.config
    }

    /// Matches free text against all three families, reading postings
    /// straight from the snapshot bytes.
    #[must_use]
    pub fn match_text(&self, text: &str) -> MatchSet {
        VIEW_SCRATCH.with(|scratch| self.match_text_with(text, &mut scratch.borrow_mut()))
    }

    /// [`Self::match_text`] with an explicitly owned scratch.
    #[must_use]
    pub fn match_text_with(&self, text: &str, scratch: &mut QueryScratch) -> MatchSet {
        let (terms, extras) = prepare_query(text, self.config.expand_synonyms);
        let bytes: &[u8] = &self.view.bytes;
        let mut span = cpssec_obs::span!("score");
        let p = self.view.patterns;
        let w = self.view.weaknesses;
        let v = self.view.vulnerabilities;
        let set = MatchSet {
            patterns: run_family(
                &self.view.index_view(p),
                &terms,
                &extras,
                self.config,
                scratch,
                |doc| AttackVectorId::Pattern(CapecId::new(u32_at(bytes, p.ids_off + doc * 4))),
            ),
            weaknesses: run_family(
                &self.view.index_view(w),
                &terms,
                &extras,
                self.config,
                scratch,
                |doc| AttackVectorId::Weakness(CweId::new(u32_at(bytes, w.ids_off + doc * 4))),
            ),
            vulnerabilities: run_family(
                &self.view.index_view(v),
                &terms,
                &extras,
                self.config,
                scratch,
                |doc| {
                    let off = v.ids_off + doc * v.id_stride;
                    AttackVectorId::Vulnerability(CveId::new(
                        u16_at(bytes, off),
                        u32_at(bytes, off + 2),
                    ))
                },
            ),
        };
        span.add_items(set.total() as u64);
        set
    }

    /// Matches one component's searchable text at a fidelity level.
    #[must_use]
    pub fn match_component(&self, component: &Component, level: Fidelity) -> MatchSet {
        self.match_text(&component.search_text(level))
    }

    /// Matches one channel's searchable text at a fidelity level.
    #[must_use]
    pub fn match_channel(&self, channel: &Channel, level: Fidelity) -> MatchSet {
        self.match_text(&channel.search_text(level))
    }

    /// Matches every component of a model at a fidelity level, keyed by
    /// component name, in model insertion order.
    #[must_use]
    pub fn match_model(&self, model: &SystemModel, level: Fidelity) -> Vec<(String, MatchSet)> {
        model
            .components()
            .map(|(_, c)| (c.name().to_owned(), self.match_component(c, level)))
            .collect()
    }

    /// [`Self::match_model`] with the fan-out spread across scoped threads;
    /// output identical to the sequential path.
    #[must_use]
    pub fn par_match_model(&self, model: &SystemModel, level: Fidelity) -> Vec<(String, MatchSet)> {
        let components: Vec<&Component> = model.components().map(|(_, c)| c).collect();
        par_fan_out(&components, |c| {
            (c.name().to_owned(), self.match_component(c, level))
        })
    }

    /// Matches every channel of a model at a fidelity level, in channel
    /// insertion order, with the fan-out spread across scoped threads.
    #[must_use]
    pub fn par_match_channels(
        &self,
        model: &SystemModel,
        level: Fidelity,
    ) -> Vec<(ChannelId, MatchSet)> {
        let channels: Vec<(ChannelId, &Channel)> = model.channels().collect();
        par_fan_out(&channels, |&(id, channel)| {
            (id, self.match_channel(channel, level))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{encode, inspect};
    use crate::{ScoringModel, SearchEngine};
    use cpssec_attackdb::seed::{seed_corpus, table1_attributes};

    fn mapped() -> (Corpus, Arc<[u8]>) {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let bytes: Arc<[u8]> = encode(&corpus, &engine).into();
        (corpus, bytes)
    }

    fn assert_bit_identical(a: &MatchSet, b: &MatchSet, context: &str) {
        assert_eq!(a.counts(), b.counts(), "{context}");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id, "{context}");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{context}");
            assert_eq!(x.matched_terms, y.matched_terms, "{context}");
        }
    }

    #[test]
    fn view_queries_are_byte_identical_to_owned() {
        let (corpus, bytes) = mapped();
        let owned = SearchEngine::build(&corpus);
        let view = ViewEngine::new(open(bytes).expect("open"));
        for query in table1_attributes() {
            assert_bit_identical(&owned.match_text(query), &view.match_text(query), query);
        }
        // Negative and empty queries agree too.
        for query in ["", "zephyr marmalade", "&&&"] {
            assert_bit_identical(&owned.match_text(query), &view.match_text(query), query);
        }
    }

    #[test]
    fn view_honors_every_scoring_configuration() {
        let (corpus, bytes) = mapped();
        let view = open(bytes).unwrap();
        for scoring in ScoringModel::ALL {
            for expand in [false, true] {
                let config = MatchConfig {
                    scoring,
                    expand_synonyms: expand,
                    max_hits: Some(5),
                    ..MatchConfig::default()
                };
                let owned = SearchEngine::with_config(&corpus, config);
                let ve = ViewEngine::with_config(view.clone(), config);
                for query in table1_attributes() {
                    assert_bit_identical(
                        &owned.match_text(query),
                        &ve.match_text(query),
                        &format!("{scoring:?} expand={expand} {query}"),
                    );
                }
            }
        }
    }

    #[test]
    fn corpus_view_round_trips_every_record() {
        let (corpus, bytes) = mapped();
        let view = open(bytes).unwrap();
        let cv = view.corpus();
        let stats = corpus.stats();
        assert_eq!(cv.pattern_count(), stats.patterns);
        assert_eq!(cv.weakness_count(), stats.weaknesses);
        assert_eq!(cv.vulnerability_count(), stats.vulnerabilities);
        assert_eq!(cv.decode_corpus().expect("decode"), corpus);
        // Random access agrees with id order.
        let first = cv.pattern(0).unwrap();
        assert_eq!(Some(&first), corpus.patterns().next());
        assert!(cv.pattern(cv.pattern_count()).is_err());
    }

    #[test]
    fn snapshot_id_matches_inspect() {
        let (_, bytes) = mapped();
        let info = inspect(&bytes).unwrap();
        let view = open(bytes.clone()).unwrap();
        assert_eq!(view.snapshot_id(), info.snapshot_id);
        assert_eq!(view.mapped_len(), bytes.len());
    }

    #[test]
    fn open_validates_geometry_and_open_verified_checks_payloads() {
        let (_, bytes) = mapped();
        assert!(open(bytes.clone()).is_ok());
        assert!(open_verified(bytes.clone()).is_ok());

        // Truncation breaks geometry for both paths.
        let cut: Arc<[u8]> = bytes[..bytes.len() - 1].to_vec().into();
        assert_eq!(open(cut).unwrap_err(), SnapshotError::Truncated);

        // A payload-interior flip passes open (O(header)) but fails the
        // verified path with a named section.
        let mut corrupt = bytes.to_vec();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        let corrupt: Arc<[u8]> = corrupt.into();
        assert!(open(corrupt.clone()).is_ok());
        assert_eq!(
            open_verified(corrupt).unwrap_err(),
            SnapshotError::ChecksumMismatch("vulnerabilities")
        );

        // A table flip trips the snapshot_id check in both.
        let mut table = bytes.to_vec();
        table[20] ^= 0xFF;
        let table: Arc<[u8]> = table.into();
        assert_eq!(
            open(table).unwrap_err(),
            SnapshotError::ChecksumMismatch("section table")
        );
    }

    #[test]
    fn unverified_view_never_panics_on_corrupt_payload_bytes() {
        // Flip every byte of the vulnerabilities section (one at a time is
        // too slow here; stride through it) and require queries to complete
        // without panicking — results may differ, safety may not.
        let (_, bytes) = mapped();
        let info = inspect(&bytes).unwrap();
        let vuln = info.sections.last().unwrap();
        let (start, end) = (vuln.offset as usize, (vuln.offset + vuln.len) as usize);
        for pos in (start..end).step_by(97) {
            let mut corrupt = bytes.to_vec();
            corrupt[pos] ^= 0xFF;
            let corrupt: Arc<[u8]> = corrupt.into();
            // Geometry may now be invalid (header counts live in the
            // payload): an error is fine, a panic is not.
            if let Ok(view) = open(corrupt) {
                let ve = ViewEngine::new(view);
                for query in table1_attributes() {
                    let _ = ve.match_text(query);
                }
            }
        }
    }
}
