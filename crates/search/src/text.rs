//! Tokenization, stopwords, and a light stemmer.
//!
//! The paper's prototype relates attack vectors to the model "through
//! natural language processing"; the pipeline here is the classic
//! lowercase → split → stopword → stem sequence. The stemmer is a
//! deliberately small suffix-stripper (a "Porter-lite"): it only needs to
//! conflate the inflections that occur in security prose (plurals,
//! -ing/-ed forms), and it must behave identically on documents and
//! queries, which a fixed rule list guarantees.

/// Words carrying no matching signal in security prose.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "can", "could", "do", "does", "for",
    "from", "had", "has", "have", "if", "in", "into", "is", "it", "its", "may", "more", "most",
    "no", "not", "of", "on", "or", "over", "such", "that", "the", "their", "then", "there",
    "these", "this", "through", "to", "via", "was", "were", "when", "which", "while", "with",
    "within", "without",
];

/// Returns `true` if `word` is a stopword.
///
/// # Examples
///
/// ```
/// assert!(cpssec_search::text::is_stopword("the"));
/// assert!(!cpssec_search::text::is_stopword("linux"));
/// ```
#[must_use]
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Applies the light stemming rules to a lowercase word.
///
/// One pass applies the first matching rule: `-ies` → `-y`, `-sses` →
/// `-ss`, `-ing` dropped from words of length ≥ 6, `-ed` dropped from
/// words of length ≥ 5, final `-s` dropped from words of length ≥ 4 unless
/// they end in `-ss` or `-us`, final `-e` dropped from words of length ≥ 5,
/// and a final doubled consonant (other than `-ss`/`-zz`) undoubled in
/// words of length ≥ 4. Passes repeat until a fixed point, so every
/// inflection of a verb lands on one stem and stemming is idempotent by
/// construction: `parse`/`parses`/`parsed`/`parsing` → `par`,
/// `route`/`routes`/`routed`/`routing` → `rout`, `embeds`/`embedded` →
/// `embed`. (The final-`e` and undoubling rules exist exactly for this
/// conflation — `-s` keeps a base-form `e` that `-ing`/`-ed` stripping
/// never saw, and `-ed`/`-ing` leave a doubled consonant the base form
/// never had. The stems are not always pretty; what retrieval needs is
/// that documents and queries agree on them, which running the identical
/// fixed-point rules on both sides guarantees.)
///
/// # Examples
///
/// ```
/// use cpssec_search::text::stem;
/// assert_eq!(stem("vulnerabilities"), "vulnerability");
/// assert_eq!(stem("windows"), "window");
/// assert_eq!(stem("access"), "access");
/// assert_eq!(stem("routing"), stem("routes"));
/// assert_eq!(stem("parsing"), stem("parses"));
/// ```
#[must_use]
pub fn stem(word: &str) -> String {
    let mut current = word.to_owned();
    loop {
        let next = stem_once(&current);
        if next == current {
            return current;
        }
        current = next;
    }
}

/// One rule pass of [`stem`]; first matching rule wins.
fn stem_once(word: &str) -> String {
    if let Some(base) = word.strip_suffix("ies") {
        if !base.is_empty() {
            return format!("{base}y");
        }
    }
    if word.ends_with("sses") {
        return word[..word.len() - 2].to_owned();
    }
    if word.len() >= 6 {
        if let Some(base) = word.strip_suffix("ing") {
            return base.to_owned();
        }
    }
    if word.len() >= 5 {
        if let Some(base) = word.strip_suffix("ed") {
            return base.to_owned();
        }
    }
    // The plural rule needs a real stem left over: "commands" → "command",
    // but "os"/"dos"/"gas" are not plurals and must survive intact.
    if word.ends_with('s') && !word.ends_with("ss") && !word.ends_with("us") && word.len() >= 4 {
        return word[..word.len() - 1].to_owned();
    }
    // Drop a base-form final "e" so "parse"/"parses" meet "parsing"/"parsed"
    // at the same stem ("pars").
    if word.len() >= 5 && word.ends_with('e') {
        return word[..word.len() - 1].to_owned();
    }
    // Undouble a trailing consonant so "embedded" meets "embeds" at "embed".
    // Applied to base forms too ("install" → "instal") — consistency across
    // inflections is what matters for retrieval, not pretty stems.
    let bytes = word.as_bytes();
    if word.len() >= 4
        && bytes[word.len() - 1] == bytes[word.len() - 2]
        && bytes[word.len() - 1].is_ascii_alphabetic()
        && !matches!(
            bytes[word.len() - 1],
            b'a' | b'e' | b'i' | b'o' | b'u' | b's' | b'z'
        )
    {
        return word[..word.len() - 1].to_owned();
    }
    word.to_owned()
}

/// Tokenizes text into normalized terms: lowercase, alphanumeric runs,
/// stopwords removed, stemmed. Single characters are kept only if they are
/// digits (so "Windows 7" keeps its "7").
///
/// # Examples
///
/// ```
/// use cpssec_search::text::tokenize;
/// assert_eq!(tokenize("The SMBv1 server in Windows 7"), ["smbv1", "server", "window", "7"]);
/// ```
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            push_token(&mut tokens, std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        push_token(&mut tokens, current);
    }
    tokens
}

fn push_token(tokens: &mut Vec<String>, raw: String) {
    if is_stopword(&raw) {
        return;
    }
    let stemmed = stem(&raw);
    // Both drop checks must run on the *stemmed* form too, or a token would
    // survive one pass of tokenization but not two ("Bs" → "b" for the
    // single-character check, "cans" → "can" for the stopword check) —
    // breaking tokenize(tokenize(..)) == tokenize(..).
    if is_stopword(&stemmed) {
        return;
    }
    if stemmed.chars().count() == 1 && !stemmed.chars().next().expect("nonempty").is_ascii_digit() {
        return;
    }
    tokens.push(stemmed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn tokenize_lowercases_and_splits_on_punctuation() {
        // "adaptive"/"appliance" lose their base-form "e" so that their
        // "-ed"/"-ing" inflections land on the same stem.
        assert_eq!(
            tokenize("Cisco Adaptive-Security Appliance (ASA)"),
            ["cisco", "adaptiv", "security", "applianc", "asa"]
        );
    }

    #[test]
    fn digits_are_kept_even_single() {
        assert_eq!(tokenize("Windows 7"), ["window", "7"]);
        assert_eq!(tokenize("cRIO 9063"), ["crio", "9063"]);
    }

    #[test]
    fn single_letters_are_dropped() {
        assert_eq!(tokenize("a b c linux"), ["linux"]);
    }

    #[test]
    fn stopwords_are_dropped() {
        assert_eq!(
            tokenize("the injection of commands"),
            ["injection", "command"]
        );
    }

    #[test]
    fn stemming_conflates_inflections() {
        assert_eq!(stem("attacks"), "attack");
        assert_eq!(stem("parsing"), "par");
        assert_eq!(stem("parses"), "par");
        assert_eq!(stem("crafted"), "craft");
        assert_eq!(stem("classes"), "class");
        assert_eq!(stem("status"), "status");
        assert_eq!(stem("bus"), "bus"); // -us guard prevents over-stemming
    }

    #[test]
    fn all_inflections_of_a_verb_share_one_stem() {
        // The conflation bug this guards against: "-s" keeps a base-form
        // "e" ("parses" → "parse") that "-ing"/"-ed" stripping never saw
        // ("parsing" → "pars"), so a model attribute saying "routing"
        // missed records saying "routes".
        for family in [
            ["parse", "parses", "parsed", "parsing"],
            ["route", "routes", "routed", "routing"],
            ["execute", "executes", "executed", "executing"],
            ["service", "services", "serviced", "servicing"],
            ["attack", "attacks", "attacked", "attacking"],
            ["exploit", "exploits", "exploited", "exploiting"],
            ["craft", "crafts", "crafted", "crafting"],
        ] {
            let stems: Vec<String> = family.iter().map(|w| stem(w)).collect();
            assert!(
                stems.windows(2).all(|w| w[0] == w[1]),
                "{family:?} → {stems:?}"
            );
        }
        // Doubled-consonant forms conflate too.
        assert_eq!(stem("embeds"), stem("embedded"));
        assert_eq!(stem("logs"), stem("logging"));
    }

    #[test]
    fn stemming_is_idempotent_on_query_and_doc() {
        for word in [
            "overflows",
            "services",
            "vulnerabilities",
            "windows",
            "parses",
            "routing",
            "embedded",
            "executes",
        ] {
            let doc = stem(word);
            // A query containing the already-stemmed form still matches.
            assert_eq!(stem(&doc), doc);
        }
    }

    #[test]
    fn query_and_document_normalize_identically() {
        let doc = tokenize("Buffer overflows in parsing routines");
        let query = tokenize("buffer overflow parsing routine");
        assert_eq!(doc, query);
    }

    #[test]
    fn unicode_is_tolerated() {
        assert_eq!(tokenize("Überflow café"), ["überflow", "café"]);
    }

    #[test]
    fn empty_and_symbol_only_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ---").is_empty());
    }
}
