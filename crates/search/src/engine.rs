//! The match engine: attribute text in, scored attack vectors out.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cpssec_attackdb::{AttackVectorId, CapecId, Corpus, CveId, CweId};
use cpssec_model::{Channel, ChannelId, Component, Fidelity, SystemModel};

use crate::index::{InvertedIndex, TermLookup};
use crate::score::{expand_query, ScoringModel};
use crate::text::tokenize;

/// Matching thresholds.
///
/// A candidate document becomes a hit when it shares with the query either
/// one *distinctive* term (IDF at or above [`idf_floor`](Self::idf_floor))
/// or at least [`min_terms`](Self::min_terms) distinct terms. This mirrors
/// keyword search over MITRE feeds: a rare product token ("LabVIEW") is
/// enough on its own, while common words must corroborate each other —
/// which is also why unspecific model text produces the "many irrelevant
/// results" the paper warns about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfig {
    /// IDF at or above which a single shared term makes a hit.
    pub idf_floor: f64,
    /// Number of distinct shared terms that makes a hit regardless of IDF.
    pub min_terms: usize,
    /// Hits scoring below this are dropped.
    pub min_score: f64,
    /// The ranking function for hit scores.
    pub scoring: ScoringModel,
    /// Expand queries with domain synonyms ([`expand_query`]). Expansion
    /// terms contribute to *scores* only, never to the hit criteria, so
    /// turning this on re-ranks results without changing their count.
    pub expand_synonyms: bool,
    /// Cap on hits returned per family. When set, selection runs through a
    /// bounded binary heap of size `k` instead of sorting every candidate,
    /// and returns exactly the prefix the full sort would have: the heap's
    /// ordering is the same `f64::total_cmp`-then-id comparator.
    pub max_hits: Option<usize>,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            idf_floor: 1.8,
            min_terms: 2,
            min_score: 0.0,
            scoring: ScoringModel::TfIdf,
            expand_synonyms: true,
            max_hits: None,
        }
    }
}

/// One matched record with its relevance evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The matched record.
    pub id: AttackVectorId,
    /// Length-normalized TF-IDF score; higher is more relevant.
    pub score: f64,
    /// Number of distinct query terms found in the record.
    pub matched_terms: usize,
}

/// The association of attack vectors to one queried model element: the
/// "main output" of the paper's toolchain.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MatchSet {
    /// Matched attack patterns, best first.
    pub patterns: Vec<Hit>,
    /// Matched weaknesses, best first.
    pub weaknesses: Vec<Hit>,
    /// Matched vulnerabilities, best first.
    pub vulnerabilities: Vec<Hit>,
}

impl MatchSet {
    /// `(patterns, weaknesses, vulnerabilities)` counts — one Table 1 row.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.patterns.len(),
            self.weaknesses.len(),
            self.vulnerabilities.len(),
        )
    }

    /// Total hits across the three families.
    #[must_use]
    pub fn total(&self) -> usize {
        self.patterns.len() + self.weaknesses.len() + self.vulnerabilities.len()
    }

    /// Whether nothing matched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Iterates over all hits, patterns first.
    pub fn iter(&self) -> impl Iterator<Item = &Hit> {
        self.patterns
            .iter()
            .chain(self.weaknesses.iter())
            .chain(self.vulnerabilities.iter())
    }

    /// The matched pattern ids, best first.
    #[must_use]
    pub fn pattern_ids(&self) -> Vec<CapecId> {
        self.patterns
            .iter()
            .filter_map(|h| h.id.as_pattern())
            .collect()
    }

    /// The matched weakness ids, best first.
    #[must_use]
    pub fn weakness_ids(&self) -> Vec<CweId> {
        self.weaknesses
            .iter()
            .filter_map(|h| h.id.as_weakness())
            .collect()
    }

    /// The matched vulnerability ids, best first.
    #[must_use]
    pub fn vulnerability_ids(&self) -> Vec<CveId> {
        self.vulnerabilities
            .iter()
            .filter_map(|h| h.id.as_vulnerability())
            .collect()
    }
}

/// Per-document accumulator slot in the dense scratch table.
#[derive(Debug, Clone, Copy, Default)]
struct Accum {
    score: f64,
    matched: u32,
    max_idf: f64,
}

/// Reusable dense accumulation state for one thread's queries.
///
/// The table has one slot per document of the largest family index; a query
/// touches only the slots on its postings lists (tracked in `touched`) and
/// resets exactly those afterwards, so reuse costs `O(postings touched)`,
/// not `O(corpus)`. [`SearchEngine::match_text`] keeps one per thread
/// automatically; [`SearchEngine::match_text_with`] lets a caller own one
/// explicitly across many queries.
#[derive(Debug, Default)]
pub struct QueryScratch {
    accum: Vec<Accum>,
    touched: Vec<u32>,
}

impl QueryScratch {
    /// Creates an empty scratch; it grows to fit the first engine it serves.
    #[must_use]
    pub fn new() -> Self {
        QueryScratch::default()
    }

    fn ensure(&mut self, len: usize) {
        if self.accum.len() < len {
            self.accum.resize(len, Accum::default());
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// The search engine: three per-family indices over one corpus snapshot.
///
/// Building is `O(total corpus text)` (the three family indices build on
/// separate threads, and per-posting weights for both scoring models are
/// precomputed at freeze time); matching is `O(postings touched)`. The
/// engine holds no reference to the corpus — record ids are the currency
/// between the two.
///
/// # Examples
///
/// ```
/// use cpssec_attackdb::seed::seed_corpus;
/// use cpssec_search::SearchEngine;
///
/// let corpus = seed_corpus();
/// let engine = SearchEngine::build(&corpus);
/// let hits = engine.match_text("NI cRIO 9063");
/// assert_eq!(hits.vulnerabilities.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SearchEngine {
    config: MatchConfig,
    patterns: InvertedIndex,
    pattern_ids: Vec<CapecId>,
    weaknesses: InvertedIndex,
    weakness_ids: Vec<CweId>,
    vulnerabilities: InvertedIndex,
    vulnerability_ids: Vec<CveId>,
    /// Lifetime query counter, shared across clones of this engine so the
    /// incremental-association tests (and the server's metrics) can observe
    /// exactly how many matcher runs an operation cost.
    queries: Arc<AtomicU64>,
}

/// Indexes one record family and pre-freezes its query-side image so the
/// cost lands in the build phase (off the first query). Large families
/// shard across worker threads inside [`InvertedIndex::from_documents`].
fn build_family<I>(records: impl Iterator<Item = (String, I)>) -> (InvertedIndex, Vec<I>) {
    let (texts, ids): (Vec<String>, Vec<I>) = records.unzip();
    let index = InvertedIndex::from_documents(&texts);
    index.freeze();
    (index, ids)
}

impl SearchEngine {
    /// Indexes a corpus with the default [`MatchConfig`].
    #[must_use]
    pub fn build(corpus: &Corpus) -> Self {
        SearchEngine::with_config(corpus, MatchConfig::default())
    }

    /// Indexes a corpus with an explicit configuration. The three family
    /// indices are independent, so they build on separate scoped threads.
    #[must_use]
    pub fn with_config(corpus: &Corpus, config: MatchConfig) -> Self {
        let (
            (patterns, pattern_ids),
            (weaknesses, weakness_ids),
            (vulnerabilities, vulnerability_ids),
        ) = std::thread::scope(|s| {
            let patterns =
                s.spawn(|| build_family(corpus.patterns().map(|p| (p.search_text(), p.id()))));
            let weaknesses =
                s.spawn(|| build_family(corpus.weaknesses().map(|w| (w.search_text(), w.id()))));
            let vulnerabilities =
                build_family(corpus.vulnerabilities().map(|v| (v.search_text(), v.id())));
            (
                patterns.join().expect("pattern index build"),
                weaknesses.join().expect("weakness index build"),
                vulnerabilities,
            )
        });
        SearchEngine {
            config,
            patterns,
            pattern_ids,
            weaknesses,
            weakness_ids,
            vulnerabilities,
            vulnerability_ids,
            queries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Assembles an engine from pre-built (e.g. snapshot-thawed) parts.
    pub(crate) fn from_parts(
        config: MatchConfig,
        patterns: (InvertedIndex, Vec<CapecId>),
        weaknesses: (InvertedIndex, Vec<CweId>),
        vulnerabilities: (InvertedIndex, Vec<CveId>),
    ) -> SearchEngine {
        SearchEngine {
            config,
            patterns: patterns.0,
            pattern_ids: patterns.1,
            weaknesses: weaknesses.0,
            weakness_ids: weaknesses.1,
            vulnerabilities: vulnerabilities.0,
            vulnerability_ids: vulnerabilities.1,
            queries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The three family indices with their id tables, for serialization.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(
        &self,
    ) -> (
        (&InvertedIndex, &[CapecId]),
        (&InvertedIndex, &[CweId]),
        (&InvertedIndex, &[CveId]),
    ) {
        (
            (&self.patterns, &self.pattern_ids),
            (&self.weaknesses, &self.weakness_ids),
            (&self.vulnerabilities, &self.vulnerability_ids),
        )
    }

    /// Mutable access to the three family indices and id tables, for the
    /// `.cpsdelta` apply path (append documents + ids in lockstep).
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (
        (&mut InvertedIndex, &mut Vec<CapecId>),
        (&mut InvertedIndex, &mut Vec<CweId>),
        (&mut InvertedIndex, &mut Vec<CveId>),
    ) {
        (
            (&mut self.patterns, &mut self.pattern_ids),
            (&mut self.weaknesses, &mut self.weakness_ids),
            (&mut self.vulnerabilities, &mut self.vulnerability_ids),
        )
    }

    /// A copy of this engine under a different scoring model. Both models'
    /// weights are precomputed in every frozen index, so no text is
    /// re-processed — this is how a server derives its BM25 engine from
    /// one snapshot decode.
    #[must_use]
    pub fn with_scoring(&self, scoring: ScoringModel) -> SearchEngine {
        let mut engine = self.clone();
        engine.config.scoring = scoring;
        engine.queries = Arc::new(AtomicU64::new(0));
        engine
    }

    /// Number of queries this engine (and its clones) has run so far.
    #[must_use]
    pub fn queries_run(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> MatchConfig {
        self.config
    }

    /// Matches free text (an attribute value, a component description)
    /// against all three families, using a per-thread [`QueryScratch`].
    #[must_use]
    pub fn match_text(&self, text: &str) -> MatchSet {
        SCRATCH.with(|scratch| self.match_text_with(text, &mut scratch.borrow_mut()))
    }

    /// [`Self::match_text`] with an explicitly owned scratch, for callers
    /// running many queries that want to control allocator traffic.
    #[must_use]
    pub fn match_text_with(&self, text: &str, scratch: &mut QueryScratch) -> MatchSet {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let (terms, extras) = prepare_query(text, self.config.expand_synonyms);
        self.match_terms(&terms, &extras, scratch)
    }

    fn match_terms(
        &self,
        terms: &[String],
        extras: &[String],
        scratch: &mut QueryScratch,
    ) -> MatchSet {
        let mut span = cpssec_obs::span!("score");
        let set = MatchSet {
            patterns: run_family(&self.patterns, terms, extras, self.config, scratch, |doc| {
                AttackVectorId::Pattern(self.pattern_ids[doc])
            }),
            weaknesses: run_family(
                &self.weaknesses,
                terms,
                extras,
                self.config,
                scratch,
                |doc| AttackVectorId::Weakness(self.weakness_ids[doc]),
            ),
            vulnerabilities: run_family(
                &self.vulnerabilities,
                terms,
                extras,
                self.config,
                scratch,
                |doc| AttackVectorId::Vulnerability(self.vulnerability_ids[doc]),
            ),
        };
        span.add_items(set.total() as u64);
        set
    }

    /// Matches one component's searchable text at a fidelity level.
    #[must_use]
    pub fn match_component(&self, component: &Component, level: Fidelity) -> MatchSet {
        self.match_text(&component.search_text(level))
    }

    /// Matches one channel's searchable text at a fidelity level — the
    /// paper's "interactions" are model elements too, and protocol
    /// attributes on them ("MODBUS/TCP") match protocol-level records.
    #[must_use]
    pub fn match_channel(&self, channel: &Channel, level: Fidelity) -> MatchSet {
        self.match_text(&channel.search_text(level))
    }

    /// Matches every component of a model at a fidelity level, keyed by
    /// component name, in model insertion order.
    #[must_use]
    pub fn match_model(&self, model: &SystemModel, level: Fidelity) -> Vec<(String, MatchSet)> {
        model
            .components()
            .map(|(_, c)| (c.name().to_owned(), self.match_component(c, level)))
            .collect()
    }

    /// [`Self::match_model`] with the component fan-out spread across scoped
    /// threads. Output is identical (same order, same scores): each thread
    /// writes a disjoint chunk of the result vector, and per-component
    /// matching is already deterministic.
    #[must_use]
    pub fn par_match_model(&self, model: &SystemModel, level: Fidelity) -> Vec<(String, MatchSet)> {
        let components: Vec<&Component> = model.components().map(|(_, c)| c).collect();
        par_fan_out(&components, |c| {
            (c.name().to_owned(), self.match_component(c, level))
        })
    }

    /// Matches every channel of a model at a fidelity level, in channel
    /// insertion order, with the fan-out spread across scoped threads.
    #[must_use]
    pub fn par_match_channels(
        &self,
        model: &SystemModel,
        level: Fidelity,
    ) -> Vec<(ChannelId, MatchSet)> {
        let channels: Vec<(ChannelId, &Channel)> = model.channels().collect();
        par_fan_out(&channels, |&(id, channel)| {
            (id, self.match_channel(channel, level))
        })
    }
}

/// Fan-outs smaller than this run sequentially: spawning a scoped thread
/// costs ~50–100 µs while one matcher query at paper scale runs in ~10 µs,
/// so parallelism only pays once a chunk amortizes the spawn (E7b measured
/// `par_match_model` at 166 µs vs 100 µs sequential on the 8-component
/// model; the tuning sweep is recorded in EXPERIMENTS §E12b).
const PAR_FAN_OUT_MIN: usize = 32;

/// Runs `work` over `items`, splitting the slice into one contiguous chunk
/// per available core; each scoped thread fills a disjoint chunk of the
/// output, preserving input order exactly. Inputs below [`PAR_FAN_OUT_MIN`]
/// run on the calling thread — same results, no spawn overhead.
pub(crate) fn par_fan_out<T: Sync, R: Send>(items: &[T], work: impl Fn(&T) -> R + Sync) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if items.len() < PAR_FAN_OUT_MIN || threads == 1 {
        return items.iter().map(work).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        for (item_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(|| {
                for (item, slot) in item_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(work(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every chunk is filled"))
        .collect()
}

/// Ranks `a` against `b` best-first: descending score, ties broken by
/// ascending id. `total_cmp` keeps the order total even if a pathological
/// configuration (e.g. NaN `min_score` arithmetic upstream) ever produces
/// a NaN score — the pipeline must degrade to a deterministic order, never
/// panic. The order is *strict* (ids are unique per family), so top-k
/// selection through a heap returns exactly the sorted prefix.
fn rank(a: &Hit, b: &Hit) -> std::cmp::Ordering {
    b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id))
}

/// Sorts hits best-first under [`rank`].
fn sort_hits(hits: &mut [Hit]) {
    hits.sort_by(rank);
}

/// A [`Hit`] ordered by [`rank`] so a max-[`BinaryHeap`] keeps its
/// worst-ranked element on top, ready to evict.
///
/// [`BinaryHeap`]: std::collections::BinaryHeap
struct Ranked(Hit);

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        rank(&self.0, &other.0).is_eq()
    }
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        rank(&self.0, &other.0)
    }
}

/// Bounded top-k selection: feeds `hits` through a k-element binary heap
/// and returns the best `k` in [`rank`] order — element for element what
/// `sort_hits` + truncate would produce, in `O(n log k)` instead of
/// `O(n log n)` and without materializing all candidates.
fn top_k_hits(hits: impl Iterator<Item = Hit>, k: usize) -> Vec<Hit> {
    use std::collections::BinaryHeap;
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Ranked> = BinaryHeap::with_capacity(k + 1);
    for hit in hits {
        if heap.len() < k {
            heap.push(Ranked(hit));
        } else if let Some(worst) = heap.peek() {
            if rank(&hit, &worst.0).is_lt() {
                heap.pop();
                heap.push(Ranked(hit));
            }
        }
    }
    // Ascending under `Ord` = best-first under `rank`.
    heap.into_sorted_vec().into_iter().map(|r| r.0).collect()
}

/// Normalizes query text into sorted, deduplicated terms plus (when
/// `expand` is set) the synonym-expansion extras that are genuinely new —
/// shared by [`SearchEngine`] and the zero-copy
/// [`ViewEngine`](crate::view::ViewEngine) so both prepare byte-identical
/// term lists.
pub(crate) fn prepare_query(text: &str, expand: bool) -> (Vec<String>, Vec<String>) {
    let mut span = cpssec_obs::span!("tokenize");
    let mut terms = tokenize(text);
    terms.sort_unstable();
    terms.dedup();
    let extras: Vec<String> = if expand {
        // Keep only genuinely new terms as score-bonus terms.
        expand_query(&terms)
            .into_iter()
            .filter(|t| !terms.contains(t))
            .collect()
    } else {
        Vec::new()
    };
    span.add_items(terms.len() as u64);
    (terms, extras)
}

/// Scores one family index — owned or zero-copy, via [`TermLookup`] — and
/// returns the admitted hits. `wrap` maps a dense doc index to the record
/// id (the caller owns the id table; the view decodes ids straight from
/// snapshot bytes).
pub(crate) fn run_family<L: TermLookup>(
    index: &L,
    terms: &[String],
    extras: &[String],
    config: MatchConfig,
    scratch: &mut QueryScratch,
    wrap: impl Fn(usize) -> AttackVectorId,
) -> Vec<Hit> {
    scratch.ensure(index.doc_count());
    let model = config.scoring;
    for term in terms {
        let Some((idf, postings)) = index.lookup(term) else {
            continue;
        };
        for p in postings {
            let slot = &mut scratch.accum[p.doc.index()];
            if slot.matched == 0 {
                scratch.touched.push(p.doc.0);
            }
            slot.score += p.weight(model);
            slot.matched += 1;
            if idf > slot.max_idf {
                slot.max_idf = idf;
            }
        }
    }
    // Synonym-expansion terms only refine the scores of documents that
    // already matched an original term — they never create hits.
    for term in extras {
        let Some((_, postings)) = index.lookup(term) else {
            continue;
        };
        for p in postings {
            let slot = &mut scratch.accum[p.doc.index()];
            if slot.matched > 0 {
                slot.score += p.weight(model);
            }
        }
    }
    let candidates = scratch.touched.iter().filter_map(|&doc| {
        let acc = scratch.accum[doc as usize];
        let admitted = (acc.max_idf >= config.idf_floor
            || acc.matched as usize >= config.min_terms)
            && acc.score >= config.min_score;
        admitted.then(|| Hit {
            id: wrap(doc as usize),
            score: acc.score,
            matched_terms: acc.matched as usize,
        })
    });
    let hits = match config.max_hits {
        // Capped: bounded-heap selection, O(candidates · log k).
        Some(k) => top_k_hits(candidates, k),
        None => {
            let mut hits: Vec<Hit> = candidates.collect();
            sort_hits(&mut hits);
            hits
        }
    };
    // Reset exactly the slots this query touched so the table is clean for
    // the next family/query without an O(corpus) sweep.
    for &doc in &scratch.touched {
        scratch.accum[doc as usize] = Accum::default();
    }
    scratch.touched.clear();
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::{seed_corpus, table1_attributes};
    use cpssec_attackdb::synth::{generate, SynthSpec};
    use cpssec_model::{Attribute, AttributeKind, ComponentKind};

    fn engine() -> SearchEngine {
        SearchEngine::build(&seed_corpus())
    }

    #[test]
    fn rare_product_token_alone_is_a_hit() {
        let hits = engine().match_text("Labview");
        assert_eq!(hits.vulnerabilities.len(), 3);
        assert!(hits.patterns.is_empty());
        assert!(hits.weaknesses.is_empty());
    }

    #[test]
    fn crio_models_share_their_vulnerabilities() {
        let e = engine();
        let v9063 = e.match_text("NI cRIO 9063").vulnerability_ids();
        let v9064 = e.match_text("NI cRIO 9064").vulnerability_ids();
        assert_eq!(v9063.len(), 3);
        assert_eq!(v9063, v9064);
    }

    #[test]
    fn crio_query_does_not_leak_into_linux_corpus() {
        // "NI cRIO 9063" shares only the weak token "ni" with RT Linux
        // records; that must not be enough.
        let hits = engine().match_text("NI cRIO 9063");
        for id in hits.vulnerability_ids() {
            assert!(
                id.to_string().contains("CVE-2017-2778")
                    || id.to_string().contains("CVE-2018-16804")
                    || id.to_string().contains("CVE-2019-9997")
            );
        }
    }

    #[test]
    fn two_common_terms_corroborate() {
        let hits = engine().match_text("Windows 7");
        assert_eq!(hits.vulnerabilities.len(), 4);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let hits = engine().match_text("Cisco ASA firewall software");
        let scores: Vec<f64> = hits.vulnerabilities.iter().map(|h| h.score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        assert!(scores.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn empty_query_matches_nothing() {
        assert!(engine().match_text("").is_empty());
        assert!(engine().match_text("&&& !!!").is_empty());
    }

    #[test]
    fn unrelated_query_matches_nothing() {
        assert!(engine().match_text("zephyr marmalade").is_empty());
    }

    #[test]
    fn match_component_respects_fidelity() {
        let e = engine();
        let comp = cpssec_model::Component::new("Programming WS", ComponentKind::Workstation)
            .with_attribute(
                Attribute::new(AttributeKind::OperatingSystem, "Windows 7")
                    .at_fidelity(Fidelity::Implementation),
            );
        let abstract_hits = e.match_component(&comp, Fidelity::Conceptual);
        let concrete_hits = e.match_component(&comp, Fidelity::Implementation);
        assert!(concrete_hits.vulnerabilities.len() > abstract_hits.vulnerabilities.len());
    }

    #[test]
    fn counts_form_a_table1_row() {
        let hits = engine().match_text("Cisco ASA");
        let (p, w, v) = hits.counts();
        assert_eq!(v, 3);
        assert_eq!(p + w, 0);
        assert_eq!(hits.total(), 3);
    }

    #[test]
    fn query_counter_counts_matches_and_is_shared_by_clones() {
        let e = engine();
        assert_eq!(e.queries_run(), 0);
        let _ = e.match_text("Windows 7");
        let clone = e.clone();
        let _ = clone.match_text("Cisco ASA");
        assert_eq!(e.queries_run(), 2);
        assert_eq!(clone.queries_run(), 2);
    }

    #[test]
    fn match_is_deterministic() {
        let e = engine();
        assert_eq!(e.match_text("Windows 7"), e.match_text("Windows 7"));
    }

    #[test]
    fn explicit_scratch_reuse_matches_thread_local_path() {
        let e = engine();
        let mut scratch = QueryScratch::new();
        for query in ["Windows 7", "Cisco ASA", "NI RT Linux OS", "Labview"] {
            assert_eq!(e.match_text_with(query, &mut scratch), e.match_text(query));
        }
    }

    #[test]
    fn synthetic_corpus_reproduces_table1_shape() {
        let mut corpus = seed_corpus();
        corpus
            .merge(generate(&SynthSpec::paper2020(7, 0.02)))
            .unwrap();
        let e = SearchEngine::build(&corpus);
        let rows: Vec<(usize, usize, usize)> = table1_attributes()
            .iter()
            .map(|attr| e.match_text(attr).counts())
            .collect();
        let (cisco, linux, win7, labview, crio63, crio64) =
            (rows[0], rows[1], rows[2], rows[3], rows[4], rows[5]);
        // Vulnerabilities dominate for commodity platforms.
        assert!(cisco.2 > 30, "cisco: {cisco:?}");
        assert!(linux.2 > win7.2, "linux {linux:?} vs win7 {win7:?}");
        assert!(win7.2 > cisco.2, "win7 {win7:?} vs cisco {cisco:?}");
        // Patterns/weaknesses only for OS-level attributes.
        assert!(linux.0 >= 50 && linux.1 >= 70, "linux {linux:?}");
        assert!(win7.0 >= 40 && win7.1 >= 70, "win7 {win7:?}");
        // Niche rows stay tiny.
        assert_eq!(labview.0, 0);
        assert_eq!(labview.1, 0);
        assert_eq!(labview.2, 6);
        assert_eq!(crio63, crio64);
        assert_eq!(crio63.2, 7);
        assert_eq!(crio63.0, 0);
    }

    #[test]
    fn lower_idf_floor_widens_results() {
        let corpus = seed_corpus();
        let strict = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                idf_floor: 5.0,
                min_terms: 3,
                ..MatchConfig::default()
            },
        );
        let loose = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                idf_floor: 0.5,
                min_terms: 1,
                ..MatchConfig::default()
            },
        );
        let q = "Windows 7 workstation";
        assert!(loose.match_text(q).total() >= strict.match_text(q).total());
    }

    #[test]
    fn min_score_prunes_weak_hits() {
        let corpus = seed_corpus();
        let base = SearchEngine::build(&corpus);
        let all = base.match_text("Microsoft Windows 7 SMB remote code execution");
        let strict = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                min_score: 1.5,
                ..MatchConfig::default()
            },
        );
        let pruned = strict.match_text("Microsoft Windows 7 SMB remote code execution");
        assert!(pruned.total() < all.total());
        assert!(pruned.iter().all(|h| h.score >= 1.5));
    }

    #[test]
    fn pathological_min_score_is_nan_safe() {
        // A NaN min_score poisons the `score >= min_score` comparison (all
        // comparisons with NaN are false), so every hit is pruned — but
        // nothing may panic, and the outcome must be deterministic.
        let corpus = seed_corpus();
        let nan_floor = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                min_score: f64::NAN,
                ..MatchConfig::default()
            },
        );
        let hits = nan_floor.match_text("Microsoft Windows 7 SMB remote code execution");
        assert!(hits.is_empty(), "NaN threshold admits nothing");
        // An infinite idf_floor with min_terms = 0 admits every touched
        // document; ordering still must not panic on any score pattern.
        let admit_all = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                idf_floor: f64::INFINITY,
                min_terms: 0,
                min_score: f64::NEG_INFINITY,
                ..MatchConfig::default()
            },
        );
        let a = admit_all.match_text("Microsoft Windows 7 SMB remote code execution");
        let b = admit_all.match_text("Microsoft Windows 7 SMB remote code execution");
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn sort_hits_orders_nan_scores_deterministically() {
        let hit = |n: u32, score: f64| Hit {
            id: AttackVectorId::Vulnerability(CveId::new(2020, n)),
            score,
            matched_terms: 1,
        };
        let mut a = vec![hit(1, f64::NAN), hit(2, 1.0), hit(3, f64::NAN), hit(4, 2.0)];
        let mut b = a.clone();
        b.reverse();
        sort_hits(&mut a);
        sort_hits(&mut b);
        // No panic, and the order is total: both permutations agree on the
        // id sequence (NaN != NaN blocks whole-Hit equality).
        let ids = |hits: &[Hit]| hits.iter().map(|h| h.id).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        // NaN sorts above +inf under total_cmp, finite scores keep their
        // descending order after it.
        assert!(a[0].score.is_nan() && a[1].score.is_nan());
        assert_eq!(a[2].score, 2.0);
        assert_eq!(a[3].score, 1.0);
    }

    #[test]
    fn max_hits_heap_returns_exactly_the_sorted_prefix() {
        let mut corpus = seed_corpus();
        corpus
            .merge(generate(&SynthSpec::paper2020(11, 0.05)))
            .unwrap();
        let unbounded = SearchEngine::build(&corpus);
        for k in [0, 1, 2, 3, 7, 25, 10_000] {
            let capped = SearchEngine::with_config(
                &corpus,
                MatchConfig {
                    max_hits: Some(k),
                    ..MatchConfig::default()
                },
            );
            for query in table1_attributes() {
                let full = unbounded.match_text(query);
                let bounded = capped.match_text(query);
                for (all, cut) in [
                    (&full.patterns, &bounded.patterns),
                    (&full.weaknesses, &bounded.weaknesses),
                    (&full.vulnerabilities, &bounded.vulnerabilities),
                ] {
                    assert_eq!(
                        &all[..k.min(all.len())],
                        cut.as_slice(),
                        "k={k} query={query}"
                    );
                }
            }
        }
    }

    #[test]
    fn top_k_orders_nan_scores_like_the_sort() {
        let hit = |n: u32, score: f64| Hit {
            id: AttackVectorId::Vulnerability(CveId::new(2020, n)),
            score,
            matched_terms: 1,
        };
        let pool = vec![
            hit(5, f64::NAN),
            hit(2, 1.0),
            hit(9, f64::NAN),
            hit(4, 2.0),
            hit(1, 1.0),
            hit(7, f64::NEG_INFINITY),
            hit(3, f64::INFINITY),
        ];
        for k in 0..=pool.len() + 1 {
            let mut sorted = pool.clone();
            sort_hits(&mut sorted);
            sorted.truncate(k);
            let heaped = top_k_hits(pool.iter().cloned(), k);
            let ids = |hits: &[Hit]| hits.iter().map(|h| h.id).collect::<Vec<_>>();
            let bits = |hits: &[Hit]| hits.iter().map(|h| h.score.to_bits()).collect::<Vec<_>>();
            assert_eq!(ids(&sorted), ids(&heaped), "k={k}");
            assert_eq!(bits(&sorted), bits(&heaped), "k={k}");
        }
    }

    #[test]
    fn par_fan_out_above_threshold_preserves_order() {
        // Force the threaded path (>= PAR_FAN_OUT_MIN items) and check the
        // output is the identity map in order.
        let items: Vec<usize> = (0..PAR_FAN_OUT_MIN * 3 + 5).collect();
        let out = par_fan_out(&items, |&i| i * 2);
        assert_eq!(out, items.iter().map(|&i| i * 2).collect::<Vec<_>>());
        // And the sequential fallback agrees on a small input.
        let small: Vec<usize> = (0..PAR_FAN_OUT_MIN / 2).collect();
        assert_eq!(
            par_fan_out(&small, |&i| i + 1),
            small.iter().map(|&i| i + 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bm25_reranks_but_keeps_the_same_hit_set() {
        let corpus = seed_corpus();
        let tfidf = SearchEngine::build(&corpus);
        let bm25 = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                scoring: ScoringModel::Bm25,
                ..MatchConfig::default()
            },
        );
        let query = "Microsoft Windows 7 remote code execution";
        let a = tfidf.match_text(query);
        let b = bm25.match_text(query);
        // Identical hit sets (criteria are model-independent)...
        let mut ids_a = a.vulnerability_ids();
        let mut ids_b = b.vulnerability_ids();
        ids_a.sort_unstable();
        ids_b.sort_unstable();
        assert_eq!(ids_a, ids_b);
        // ...but the scores differ.
        assert_ne!(
            a.vulnerabilities[0].score, b.vulnerabilities[0].score,
            "scoring models should disagree on magnitudes"
        );
    }

    #[test]
    fn synonym_expansion_changes_scores_not_counts() {
        let corpus = seed_corpus();
        let expanded = SearchEngine::build(&corpus);
        let plain = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                expand_synonyms: false,
                ..MatchConfig::default()
            },
        );
        let query = "NI RT Linux OS";
        let with = expanded.match_text(query);
        let without = plain.match_text(query);
        assert_eq!(with.counts(), without.counts());
        // The CWE-78 weakness description contains "operating system
        // command": the expansion of "os" should raise its score.
        let score_of = |set: &MatchSet| {
            set.weaknesses
                .iter()
                .find(|h| h.id.to_string() == "CWE-78")
                .map(|h| h.score)
        };
        match (score_of(&with), score_of(&without)) {
            (Some(w), Some(wo)) => assert!(w > wo, "{w} vs {wo}"),
            _ => {
                // CWE-78 must at least be present in one of them via the
                // platform terms; if not, the corpus changed shape.
                assert!(with.total() > 0);
            }
        }
    }

    #[test]
    fn match_model_covers_every_component() {
        let model = cpssec_model::SystemModelBuilder::new("m")
            .component("ws", ComponentKind::Workstation)
            .component("fw", ComponentKind::Firewall)
            .attribute(
                "ws",
                Attribute::new(AttributeKind::OperatingSystem, "Windows 7"),
            )
            .attribute("fw", Attribute::new(AttributeKind::Product, "Cisco ASA"))
            .build()
            .unwrap();
        let results = engine().match_model(&model, Fidelity::Implementation);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, "ws");
        assert!(results[0].1.vulnerabilities.len() >= 4);
        assert!(results[1].1.vulnerabilities.len() >= 3);
    }

    #[test]
    fn par_match_model_equals_sequential_exactly() {
        let e = engine();
        let model = cpssec_scada_model();
        for level in [
            Fidelity::Conceptual,
            Fidelity::Architectural,
            Fidelity::Implementation,
        ] {
            assert_eq!(
                e.par_match_model(&model, level),
                e.match_model(&model, level),
                "parallel fan-out must be bit-identical at {level:?}"
            );
        }
    }

    #[test]
    fn par_match_channels_covers_every_channel_in_order() {
        let e = engine();
        let model = cpssec_scada_model();
        let par = e.par_match_channels(&model, Fidelity::Implementation);
        assert_eq!(par.len(), model.channel_count());
        for (id, set) in &par {
            let channel = model
                .channels()
                .find(|(cid, _)| cid == id)
                .expect("id valid")
                .1;
            assert_eq!(*set, e.match_channel(channel, Fidelity::Implementation));
        }
        // Insertion order preserved.
        let ids: Vec<usize> = par.iter().map(|(id, _)| id.index()).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    /// A miniature SCADA-shaped model without depending on cpssec-scada
    /// (which would be a dependency cycle from inside this crate).
    fn cpssec_scada_model() -> cpssec_model::SystemModel {
        let mut builder = cpssec_model::SystemModelBuilder::new("mini-scada");
        let specs = [
            ("eng-ws", ComponentKind::Workstation, "Windows 7"),
            ("hist", ComponentKind::Historian, "NI RT Linux OS"),
            ("fw", ComponentKind::Firewall, "Cisco ASA"),
            ("plc-a", ComponentKind::Controller, "NI cRIO 9063"),
            ("plc-b", ComponentKind::Controller, "NI cRIO 9064"),
            ("hmi", ComponentKind::Hmi, "Labview"),
        ];
        for (name, kind, product) in specs {
            builder = builder.component(name, kind).attribute(
                name,
                Attribute::new(AttributeKind::Product, product)
                    .at_fidelity(Fidelity::Implementation),
            );
        }
        builder
            .channel("eng-ws", "fw", cpssec_model::ChannelKind::Ethernet)
            .channel("fw", "hist", cpssec_model::ChannelKind::Ethernet)
            .channel("plc-a", "hmi", cpssec_model::ChannelKind::Fieldbus)
            .channel("plc-b", "hmi", cpssec_model::ChannelKind::Fieldbus)
            .build()
            .unwrap()
    }
}
