//! The match engine: attribute text in, scored attack vectors out.

use std::collections::BTreeMap;

use cpssec_attackdb::{AttackVectorId, CapecId, Corpus, CveId, CweId};
use cpssec_model::{Component, Fidelity, SystemModel};

use crate::index::{DocId, InvertedIndex};
use crate::score::{expand_query, ScoringModel};
use crate::text::tokenize;

/// Matching thresholds.
///
/// A candidate document becomes a hit when it shares with the query either
/// one *distinctive* term (IDF at or above [`idf_floor`](Self::idf_floor))
/// or at least [`min_terms`](Self::min_terms) distinct terms. This mirrors
/// keyword search over MITRE feeds: a rare product token ("LabVIEW") is
/// enough on its own, while common words must corroborate each other —
/// which is also why unspecific model text produces the "many irrelevant
/// results" the paper warns about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfig {
    /// IDF at or above which a single shared term makes a hit.
    pub idf_floor: f64,
    /// Number of distinct shared terms that makes a hit regardless of IDF.
    pub min_terms: usize,
    /// Hits scoring below this are dropped.
    pub min_score: f64,
    /// The ranking function for hit scores.
    pub scoring: ScoringModel,
    /// Expand queries with domain synonyms ([`expand_query`]). Expansion
    /// terms contribute to *scores* only, never to the hit criteria, so
    /// turning this on re-ranks results without changing their count.
    pub expand_synonyms: bool,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            idf_floor: 1.8,
            min_terms: 2,
            min_score: 0.0,
            scoring: ScoringModel::TfIdf,
            expand_synonyms: true,
        }
    }
}

/// One matched record with its relevance evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The matched record.
    pub id: AttackVectorId,
    /// Length-normalized TF-IDF score; higher is more relevant.
    pub score: f64,
    /// Number of distinct query terms found in the record.
    pub matched_terms: usize,
}

/// The association of attack vectors to one queried model element: the
/// "main output" of the paper's toolchain.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MatchSet {
    /// Matched attack patterns, best first.
    pub patterns: Vec<Hit>,
    /// Matched weaknesses, best first.
    pub weaknesses: Vec<Hit>,
    /// Matched vulnerabilities, best first.
    pub vulnerabilities: Vec<Hit>,
}

impl MatchSet {
    /// `(patterns, weaknesses, vulnerabilities)` counts — one Table 1 row.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.patterns.len(),
            self.weaknesses.len(),
            self.vulnerabilities.len(),
        )
    }

    /// Total hits across the three families.
    #[must_use]
    pub fn total(&self) -> usize {
        self.patterns.len() + self.weaknesses.len() + self.vulnerabilities.len()
    }

    /// Whether nothing matched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Iterates over all hits, patterns first.
    pub fn iter(&self) -> impl Iterator<Item = &Hit> {
        self.patterns
            .iter()
            .chain(self.weaknesses.iter())
            .chain(self.vulnerabilities.iter())
    }

    /// The matched pattern ids, best first.
    #[must_use]
    pub fn pattern_ids(&self) -> Vec<CapecId> {
        self.patterns.iter().filter_map(|h| h.id.as_pattern()).collect()
    }

    /// The matched weakness ids, best first.
    #[must_use]
    pub fn weakness_ids(&self) -> Vec<CweId> {
        self.weaknesses.iter().filter_map(|h| h.id.as_weakness()).collect()
    }

    /// The matched vulnerability ids, best first.
    #[must_use]
    pub fn vulnerability_ids(&self) -> Vec<CveId> {
        self.vulnerabilities
            .iter()
            .filter_map(|h| h.id.as_vulnerability())
            .collect()
    }
}

/// The search engine: three per-family indices over one corpus snapshot.
///
/// Building is `O(total corpus text)`; matching is `O(postings touched)`.
/// The engine holds no reference to the corpus — record ids are the
/// currency between the two.
///
/// # Examples
///
/// ```
/// use cpssec_attackdb::seed::seed_corpus;
/// use cpssec_search::SearchEngine;
///
/// let corpus = seed_corpus();
/// let engine = SearchEngine::build(&corpus);
/// let hits = engine.match_text("NI cRIO 9063");
/// assert_eq!(hits.vulnerabilities.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SearchEngine {
    config: MatchConfig,
    patterns: InvertedIndex,
    pattern_ids: Vec<CapecId>,
    weaknesses: InvertedIndex,
    weakness_ids: Vec<CweId>,
    vulnerabilities: InvertedIndex,
    vulnerability_ids: Vec<CveId>,
}

impl SearchEngine {
    /// Indexes a corpus with the default [`MatchConfig`].
    #[must_use]
    pub fn build(corpus: &Corpus) -> Self {
        SearchEngine::with_config(corpus, MatchConfig::default())
    }

    /// Indexes a corpus with an explicit configuration.
    #[must_use]
    pub fn with_config(corpus: &Corpus, config: MatchConfig) -> Self {
        let mut patterns = InvertedIndex::new();
        let mut pattern_ids = Vec::new();
        for p in corpus.patterns() {
            patterns.add_document(&p.search_text());
            pattern_ids.push(p.id());
        }
        let mut weaknesses = InvertedIndex::new();
        let mut weakness_ids = Vec::new();
        for w in corpus.weaknesses() {
            weaknesses.add_document(&w.search_text());
            weakness_ids.push(w.id());
        }
        let mut vulnerabilities = InvertedIndex::new();
        let mut vulnerability_ids = Vec::new();
        for v in corpus.vulnerabilities() {
            vulnerabilities.add_document(&v.search_text());
            vulnerability_ids.push(v.id());
        }
        SearchEngine {
            config,
            patterns,
            pattern_ids,
            weaknesses,
            weakness_ids,
            vulnerabilities,
            vulnerability_ids,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> MatchConfig {
        self.config
    }

    /// Matches free text (an attribute value, a component description)
    /// against all three families.
    #[must_use]
    pub fn match_text(&self, text: &str) -> MatchSet {
        let mut terms = tokenize(text);
        terms.sort_unstable();
        terms.dedup();
        if self.config.expand_synonyms {
            let expanded = expand_query(&terms);
            // Keep only genuinely new terms as score-bonus terms.
            let extras: Vec<String> = expanded
                .into_iter()
                .filter(|t| !terms.contains(t))
                .collect();
            return self.match_terms(&terms, &extras);
        }
        self.match_terms(&terms, &[])
    }

    fn match_terms(&self, terms: &[String], extras: &[String]) -> MatchSet {
        MatchSet {
            patterns: run_family(
                &self.patterns,
                &self.pattern_ids,
                terms,
                extras,
                self.config,
                |id| AttackVectorId::Pattern(*id),
            ),
            weaknesses: run_family(
                &self.weaknesses,
                &self.weakness_ids,
                terms,
                extras,
                self.config,
                |id| AttackVectorId::Weakness(*id),
            ),
            vulnerabilities: run_family(
                &self.vulnerabilities,
                &self.vulnerability_ids,
                terms,
                extras,
                self.config,
                |id| AttackVectorId::Vulnerability(*id),
            ),
        }
    }

    /// Matches one component's searchable text at a fidelity level.
    #[must_use]
    pub fn match_component(&self, component: &Component, level: Fidelity) -> MatchSet {
        self.match_text(&component.search_text(level))
    }

    /// Matches one channel's searchable text at a fidelity level — the
    /// paper's "interactions" are model elements too, and protocol
    /// attributes on them ("MODBUS/TCP") match protocol-level records.
    #[must_use]
    pub fn match_channel(&self, channel: &cpssec_model::Channel, level: Fidelity) -> MatchSet {
        self.match_text(&channel.search_text(level))
    }

    /// Matches every component of a model at a fidelity level, keyed by
    /// component name, in model insertion order.
    #[must_use]
    pub fn match_model(&self, model: &SystemModel, level: Fidelity) -> Vec<(String, MatchSet)> {
        model
            .components()
            .map(|(_, c)| (c.name().to_owned(), self.match_component(c, level)))
            .collect()
    }
}

fn run_family<I: Copy>(
    index: &InvertedIndex,
    ids: &[I],
    terms: &[String],
    extras: &[String],
    config: MatchConfig,
    wrap: impl Fn(&I) -> AttackVectorId,
) -> Vec<Hit> {
    #[derive(Default)]
    struct Accum {
        score: f64,
        matched: usize,
        max_idf: f64,
    }
    let mut per_doc: BTreeMap<DocId, Accum> = BTreeMap::new();
    for term in terms {
        for tm in index.term_matches(term, config.scoring) {
            let acc = per_doc.entry(tm.doc).or_default();
            acc.score += tm.weight;
            acc.matched += 1;
            if tm.idf > acc.max_idf {
                acc.max_idf = tm.idf;
            }
        }
    }
    // Synonym-expansion terms only refine the scores of documents that
    // already matched an original term — they never create hits.
    for term in extras {
        for tm in index.term_matches(term, config.scoring) {
            if let Some(acc) = per_doc.get_mut(&tm.doc) {
                acc.score += tm.weight;
            }
        }
    }
    let mut hits: Vec<Hit> = per_doc
        .into_iter()
        .filter(|(_, acc)| acc.max_idf >= config.idf_floor || acc.matched >= config.min_terms)
        .map(|(doc, acc)| Hit {
            id: wrap(&ids[doc.index()]),
            score: acc.score,
            matched_terms: acc.matched,
        })
        .filter(|h| h.score >= config.min_score)
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.id.cmp(&b.id))
    });
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::{seed_corpus, table1_attributes};
    use cpssec_attackdb::synth::{generate, SynthSpec};
    use cpssec_model::{Attribute, AttributeKind, ComponentKind};

    fn engine() -> SearchEngine {
        SearchEngine::build(&seed_corpus())
    }

    #[test]
    fn rare_product_token_alone_is_a_hit() {
        let hits = engine().match_text("Labview");
        assert_eq!(hits.vulnerabilities.len(), 3);
        assert!(hits.patterns.is_empty());
        assert!(hits.weaknesses.is_empty());
    }

    #[test]
    fn crio_models_share_their_vulnerabilities() {
        let e = engine();
        let v9063 = e.match_text("NI cRIO 9063").vulnerability_ids();
        let v9064 = e.match_text("NI cRIO 9064").vulnerability_ids();
        assert_eq!(v9063.len(), 3);
        assert_eq!(v9063, v9064);
    }

    #[test]
    fn crio_query_does_not_leak_into_linux_corpus() {
        // "NI cRIO 9063" shares only the weak token "ni" with RT Linux
        // records; that must not be enough.
        let hits = engine().match_text("NI cRIO 9063");
        for id in hits.vulnerability_ids() {
            assert!(id.to_string().contains("CVE-2017-2778")
                || id.to_string().contains("CVE-2018-16804")
                || id.to_string().contains("CVE-2019-9997"));
        }
    }

    #[test]
    fn two_common_terms_corroborate() {
        let hits = engine().match_text("Windows 7");
        assert_eq!(hits.vulnerabilities.len(), 4);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let hits = engine().match_text("Cisco ASA firewall software");
        let scores: Vec<f64> = hits.vulnerabilities.iter().map(|h| h.score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        assert!(scores.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn empty_query_matches_nothing() {
        assert!(engine().match_text("").is_empty());
        assert!(engine().match_text("&&& !!!").is_empty());
    }

    #[test]
    fn unrelated_query_matches_nothing() {
        assert!(engine().match_text("zephyr marmalade").is_empty());
    }

    #[test]
    fn match_component_respects_fidelity() {
        let e = engine();
        let comp = cpssec_model::Component::new("Programming WS", ComponentKind::Workstation)
            .with_attribute(
                Attribute::new(AttributeKind::OperatingSystem, "Windows 7")
                    .at_fidelity(Fidelity::Implementation),
            );
        let abstract_hits = e.match_component(&comp, Fidelity::Conceptual);
        let concrete_hits = e.match_component(&comp, Fidelity::Implementation);
        assert!(concrete_hits.vulnerabilities.len() > abstract_hits.vulnerabilities.len());
    }

    #[test]
    fn counts_form_a_table1_row() {
        let hits = engine().match_text("Cisco ASA");
        let (p, w, v) = hits.counts();
        assert_eq!(v, 3);
        assert_eq!(p + w, 0);
        assert_eq!(hits.total(), 3);
    }

    #[test]
    fn match_is_deterministic() {
        let e = engine();
        assert_eq!(e.match_text("Windows 7"), e.match_text("Windows 7"));
    }

    #[test]
    fn synthetic_corpus_reproduces_table1_shape() {
        let mut corpus = seed_corpus();
        corpus.merge(generate(&SynthSpec::paper2020(7, 0.02))).unwrap();
        let e = SearchEngine::build(&corpus);
        let rows: Vec<(usize, usize, usize)> = table1_attributes()
            .iter()
            .map(|attr| e.match_text(attr).counts())
            .collect();
        let (cisco, linux, win7, labview, crio63, crio64) =
            (rows[0], rows[1], rows[2], rows[3], rows[4], rows[5]);
        // Vulnerabilities dominate for commodity platforms.
        assert!(cisco.2 > 30, "cisco: {cisco:?}");
        assert!(linux.2 > win7.2, "linux {linux:?} vs win7 {win7:?}");
        assert!(win7.2 > cisco.2, "win7 {win7:?} vs cisco {cisco:?}");
        // Patterns/weaknesses only for OS-level attributes.
        assert!(linux.0 >= 50 && linux.1 >= 70, "linux {linux:?}");
        assert!(win7.0 >= 40 && win7.1 >= 70, "win7 {win7:?}");
        // Niche rows stay tiny.
        assert_eq!(labview.0, 0);
        assert_eq!(labview.1, 0);
        assert_eq!(labview.2, 6);
        assert_eq!(crio63, crio64);
        assert_eq!(crio63.2, 7);
        assert_eq!(crio63.0, 0);
    }

    #[test]
    fn lower_idf_floor_widens_results() {
        let corpus = seed_corpus();
        let strict = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                idf_floor: 5.0,
                min_terms: 3,
                ..MatchConfig::default()
            },
        );
        let loose = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                idf_floor: 0.5,
                min_terms: 1,
                ..MatchConfig::default()
            },
        );
        let q = "Windows 7 workstation";
        assert!(loose.match_text(q).total() >= strict.match_text(q).total());
    }

    #[test]
    fn min_score_prunes_weak_hits() {
        let corpus = seed_corpus();
        let base = SearchEngine::build(&corpus);
        let all = base.match_text("Microsoft Windows 7 SMB remote code execution");
        let strict = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                min_score: 1.5,
                ..MatchConfig::default()
            },
        );
        let pruned = strict.match_text("Microsoft Windows 7 SMB remote code execution");
        assert!(pruned.total() < all.total());
        assert!(pruned.iter().all(|h| h.score >= 1.5));
    }

    #[test]
    fn bm25_reranks_but_keeps_the_same_hit_set() {
        let corpus = seed_corpus();
        let tfidf = SearchEngine::build(&corpus);
        let bm25 = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                scoring: ScoringModel::Bm25,
                ..MatchConfig::default()
            },
        );
        let query = "Microsoft Windows 7 remote code execution";
        let a = tfidf.match_text(query);
        let b = bm25.match_text(query);
        // Identical hit sets (criteria are model-independent)...
        let mut ids_a = a.vulnerability_ids();
        let mut ids_b = b.vulnerability_ids();
        ids_a.sort_unstable();
        ids_b.sort_unstable();
        assert_eq!(ids_a, ids_b);
        // ...but the scores differ.
        assert_ne!(
            a.vulnerabilities[0].score, b.vulnerabilities[0].score,
            "scoring models should disagree on magnitudes"
        );
    }

    #[test]
    fn synonym_expansion_changes_scores_not_counts() {
        let corpus = seed_corpus();
        let expanded = SearchEngine::build(&corpus);
        let plain = SearchEngine::with_config(
            &corpus,
            MatchConfig {
                expand_synonyms: false,
                ..MatchConfig::default()
            },
        );
        let query = "NI RT Linux OS";
        let with = expanded.match_text(query);
        let without = plain.match_text(query);
        assert_eq!(with.counts(), without.counts());
        // The CWE-78 weakness description contains "operating system
        // command": the expansion of "os" should raise its score.
        let score_of = |set: &MatchSet| {
            set.weaknesses
                .iter()
                .find(|h| h.id.to_string() == "CWE-78")
                .map(|h| h.score)
        };
        match (score_of(&with), score_of(&without)) {
            (Some(w), Some(wo)) => assert!(w > wo, "{w} vs {wo}"),
            _ => {
                // CWE-78 must at least be present in one of them via the
                // platform terms; if not, the corpus changed shape.
                assert!(with.total() > 0);
            }
        }
    }

    #[test]
    fn match_model_covers_every_component() {
        let model = cpssec_model::SystemModelBuilder::new("m")
            .component("ws", ComponentKind::Workstation)
            .component("fw", ComponentKind::Firewall)
            .attribute("ws", Attribute::new(AttributeKind::OperatingSystem, "Windows 7"))
            .attribute("fw", Attribute::new(AttributeKind::Product, "Cisco ASA"))
            .build()
            .unwrap();
        let results = engine().match_model(&model, Fidelity::Implementation);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, "ws");
        assert!(results[0].1.vulnerabilities.len() >= 4);
        assert!(results[1].1.vulnerabilities.len() >= 3);
    }
}
