//! Result-space filtering.
//!
//! "Running the prototype tools shows that the total number of attack
//! vectors returned by the search process is large. Filtering functionality
//! is implemented to manage these attack vectors" (§3). Filters compose into
//! a [`FilterPipeline`] applied against a corpus snapshot.

use cpssec_attackdb::{Abstraction, AttackVectorId, Corpus, Severity};

use crate::{Hit, MatchSet};

/// One filtering rule over a match set.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Filter {
    /// Keep hits with score at or above the threshold.
    MinScore(f64),
    /// Keep hits that matched at least this many distinct query terms.
    MinMatchedTerms(usize),
    /// Keep at most `k` best hits in each family.
    TopKPerFamily(usize),
    /// Keep vulnerabilities at or above the severity band (by CVSS), and
    /// patterns at or above it (by typical severity). Records without a
    /// severity are dropped. Weaknesses are unaffected (CWE carries none).
    SeverityAtLeast(Severity),
    /// Keep only patterns at one of the given abstraction levels; other
    /// families are unaffected.
    AbstractionIn(Vec<Abstraction>),
    /// Keep vulnerabilities whose CVSS base score lies in the inclusive
    /// `[min, max]` band; vulnerabilities without a CVSS vector are
    /// dropped. Other families are unaffected (they carry no CVSS).
    CvssRange {
        /// Inclusive lower bound on the base score.
        min: f64,
        /// Inclusive upper bound on the base score.
        max: f64,
    },
    /// Keep only hits whose id is in the given set — the analyst's
    /// "pin these records" selection. Applies across all families.
    IdIn(Vec<AttackVectorId>),
    /// Drop the vulnerability family entirely (the paper's suggestion to
    /// "abstract away vulnerabilities at the earlier stages").
    DropVulnerabilities,
}

impl Filter {
    fn apply(&self, set: &mut MatchSet, corpus: &Corpus) {
        match self {
            Filter::MinScore(threshold) => {
                retain_all(set, |h| h.score >= *threshold);
            }
            Filter::MinMatchedTerms(n) => {
                retain_all(set, |h| h.matched_terms >= *n);
            }
            Filter::TopKPerFamily(k) => {
                set.patterns.truncate(*k);
                set.weaknesses.truncate(*k);
                set.vulnerabilities.truncate(*k);
            }
            Filter::SeverityAtLeast(band) => {
                set.vulnerabilities.retain(|h| match h.id {
                    AttackVectorId::Vulnerability(id) => corpus
                        .vulnerability(id)
                        .and_then(|v| v.severity())
                        .is_some_and(|s| s >= *band),
                    _ => false,
                });
                set.patterns.retain(|h| match h.id {
                    AttackVectorId::Pattern(id) => corpus
                        .pattern(id)
                        .and_then(|p| p.typical_severity())
                        .is_some_and(|s| s >= *band),
                    _ => false,
                });
            }
            Filter::AbstractionIn(levels) => {
                set.patterns.retain(|h| match h.id {
                    AttackVectorId::Pattern(id) => corpus
                        .pattern(id)
                        .is_some_and(|p| levels.contains(&p.abstraction())),
                    _ => false,
                });
            }
            Filter::CvssRange { min, max } => {
                set.vulnerabilities.retain(|h| match h.id {
                    AttackVectorId::Vulnerability(id) => corpus
                        .vulnerability(id)
                        .and_then(|v| v.cvss())
                        .is_some_and(|c| {
                            let score = c.base_score();
                            score >= *min && score <= *max
                        }),
                    _ => false,
                });
            }
            Filter::IdIn(ids) => {
                retain_all(set, |h| ids.contains(&h.id));
            }
            Filter::DropVulnerabilities => set.vulnerabilities.clear(),
        }
    }
}

fn retain_all(set: &mut MatchSet, keep: impl Fn(&Hit) -> bool) {
    set.patterns.retain(&keep);
    set.weaknesses.retain(&keep);
    set.vulnerabilities.retain(&keep);
}

/// An ordered sequence of filters.
///
/// # Examples
///
/// ```
/// use cpssec_attackdb::{seed::seed_corpus, Severity};
/// use cpssec_search::{Filter, FilterPipeline, SearchEngine};
///
/// let corpus = seed_corpus();
/// let engine = SearchEngine::build(&corpus);
/// let raw = engine.match_text("Windows 7");
/// let filtered = FilterPipeline::new()
///     .then(Filter::SeverityAtLeast(Severity::Critical))
///     .apply(&raw, &corpus);
/// assert!(filtered.vulnerabilities.len() <= raw.vulnerabilities.len());
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct FilterPipeline {
    filters: Vec<Filter>,
}

impl FilterPipeline {
    /// Creates an empty (identity) pipeline.
    #[must_use]
    pub fn new() -> Self {
        FilterPipeline::default()
    }

    /// Appends a filter (builder style).
    #[must_use]
    pub fn then(mut self, filter: Filter) -> Self {
        self.filters.push(filter);
        self
    }

    /// Number of filters in the pipeline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Whether the pipeline is the identity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Applies every filter in order and returns the filtered set.
    #[must_use]
    pub fn apply(&self, set: &MatchSet, corpus: &Corpus) -> MatchSet {
        let mut span = cpssec_obs::span!("filter");
        let mut out = set.clone();
        for filter in &self.filters {
            filter.apply(&mut out, corpus);
        }
        span.add_items(out.total() as u64);
        out
    }
}

impl FromIterator<Filter> for FilterPipeline {
    fn from_iter<I: IntoIterator<Item = Filter>>(iter: I) -> Self {
        FilterPipeline {
            filters: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchEngine;
    use cpssec_attackdb::seed::seed_corpus;

    fn raw(query: &str) -> (MatchSet, Corpus) {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        (engine.match_text(query), corpus)
    }

    #[test]
    fn identity_pipeline_is_a_clone() {
        let (set, corpus) = raw("Windows 7");
        assert_eq!(FilterPipeline::new().apply(&set, &corpus), set);
    }

    #[test]
    fn severity_filter_keeps_only_critical() {
        let (set, corpus) = raw("Windows 7");
        let filtered = FilterPipeline::new()
            .then(Filter::SeverityAtLeast(Severity::Critical))
            .apply(&set, &corpus);
        for hit in &filtered.vulnerabilities {
            let id = hit.id.as_vulnerability().unwrap();
            assert_eq!(
                corpus.vulnerability(id).unwrap().severity(),
                Some(Severity::Critical)
            );
        }
        assert!(filtered.vulnerabilities.len() < set.vulnerabilities.len());
    }

    #[test]
    fn top_k_truncates_each_family() {
        let (set, corpus) = raw("operating system command injection platform");
        let filtered = FilterPipeline::new()
            .then(Filter::TopKPerFamily(1))
            .apply(&set, &corpus);
        assert!(filtered.patterns.len() <= 1);
        assert!(filtered.weaknesses.len() <= 1);
        assert!(filtered.vulnerabilities.len() <= 1);
    }

    #[test]
    fn abstraction_filter_restricts_patterns_only() {
        let (set, corpus) = raw("injection of commands into the operating system");
        assert!(!set.patterns.is_empty());
        let filtered = FilterPipeline::new()
            .then(Filter::AbstractionIn(vec![Abstraction::Meta]))
            .apply(&set, &corpus);
        for hit in &filtered.patterns {
            let id = hit.id.as_pattern().unwrap();
            assert_eq!(corpus.pattern(id).unwrap().abstraction(), Abstraction::Meta);
        }
        assert_eq!(filtered.weaknesses, set.weaknesses);
    }

    #[test]
    fn drop_vulnerabilities_clears_family() {
        let (set, corpus) = raw("Windows 7");
        let filtered = FilterPipeline::new()
            .then(Filter::DropVulnerabilities)
            .apply(&set, &corpus);
        assert!(filtered.vulnerabilities.is_empty());
    }

    #[test]
    fn filters_compose_in_order() {
        let (set, corpus) = raw("operating system command injection remote attacker");
        let filtered = FilterPipeline::new()
            .then(Filter::SeverityAtLeast(Severity::High))
            .then(Filter::TopKPerFamily(2))
            .apply(&set, &corpus);
        assert!(filtered.vulnerabilities.len() <= 2);
        assert!(filtered.total() <= 6);
    }

    #[test]
    fn min_matched_terms_prunes_single_term_hits() {
        let (set, corpus) = raw("Windows 7 SMB server");
        let filtered = FilterPipeline::new()
            .then(Filter::MinMatchedTerms(3))
            .apply(&set, &corpus);
        assert!(filtered.iter().all(|h| h.matched_terms >= 3));
        assert!(filtered.total() <= set.total());
    }

    #[test]
    fn pipeline_collects_from_iterator() {
        let p: FilterPipeline = [Filter::MinScore(0.1), Filter::TopKPerFamily(5)]
            .into_iter()
            .collect();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
