//! Exploit chains across the three record families.
//!
//! "Each of these datasets contains interconnections with one another which
//! creates the possibility of capturing both the attacker's perspective
//! from attack pattern and the system owner's perspective from weakness and
//! vulnerability" (§2). A chain is one concrete story:
//! vulnerability → weakness → attack pattern.

use core::fmt;

use cpssec_attackdb::{CapecId, Corpus, CveId, CweId};

use crate::MatchSet;

/// One vulnerability → weakness → attack pattern chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExploitChain {
    /// The concrete vulnerability (system owner's view, implementation level).
    pub vulnerability: CveId,
    /// The weakness class that the vulnerability instantiates.
    pub weakness: CweId,
    /// The attack pattern that exploits the weakness (attacker's view).
    pub pattern: CapecId,
}

impl fmt::Display for ExploitChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} -> {}",
            self.vulnerability, self.weakness, self.pattern
        )
    }
}

/// Mines all chains reachable from the vulnerabilities of a match set,
/// in deterministic order, deduplicated, capped at `limit`.
///
/// The weakness and pattern ends of a chain do not need to have matched
/// the query themselves — the whole point is surfacing the attacker's
/// perspective that attribute text alone would miss.
///
/// # Examples
///
/// ```
/// use cpssec_attackdb::seed::seed_corpus;
/// use cpssec_search::{exploit_chains, SearchEngine};
///
/// let corpus = seed_corpus();
/// let engine = SearchEngine::build(&corpus);
/// let matches = engine.match_text("NI cRIO 9063");
/// let chains = exploit_chains(&matches, &corpus, 100);
/// assert!(!chains.is_empty());
/// ```
#[must_use]
pub fn exploit_chains(set: &MatchSet, corpus: &Corpus, limit: usize) -> Vec<ExploitChain> {
    let mut span = cpssec_obs::span!("chain-build");
    let mut chains = Vec::new();
    for cve in set.vulnerability_ids() {
        for cwe in corpus.weaknesses_for_vulnerability(cve) {
            for capec in corpus.patterns_for_weakness(cwe) {
                chains.push(ExploitChain {
                    vulnerability: cve,
                    weakness: cwe,
                    pattern: capec,
                });
            }
        }
    }
    chains.sort_unstable();
    chains.dedup();
    chains.truncate(limit);
    span.add_items(chains.len() as u64);
    chains
}

/// All chains through one weakness, corpus-wide: every (vulnerability,
/// pattern) pair linked by `weakness`.
#[must_use]
pub fn chains_for_weakness(corpus: &Corpus, weakness: CweId, limit: usize) -> Vec<ExploitChain> {
    let mut chains = Vec::new();
    for cve in corpus.vulnerabilities_for_weakness(weakness) {
        for capec in corpus.patterns_for_weakness(weakness) {
            chains.push(ExploitChain {
                vulnerability: cve,
                weakness,
                pattern: capec,
            });
        }
    }
    chains.sort_unstable();
    chains.dedup();
    chains.truncate(limit);
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchEngine;
    use cpssec_attackdb::seed::seed_corpus;

    #[test]
    fn chains_go_through_linked_weaknesses_only() {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let set = engine.match_text("NI cRIO 9063");
        for chain in exploit_chains(&set, &corpus, 1000) {
            let vuln = corpus.vulnerability(chain.vulnerability).unwrap();
            assert!(vuln.weaknesses().contains(&chain.weakness));
            let pattern = corpus.pattern(chain.pattern).unwrap();
            assert!(pattern.related_weaknesses().contains(&chain.weakness));
        }
    }

    #[test]
    fn crio_chain_includes_malicious_update_story() {
        // The cRIO firmware vulnerability (CWE-829) chains to the Malicious
        // Software Update pattern — the Triton-style story.
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let set = engine.match_text("NI cRIO 9064");
        let chains = exploit_chains(&set, &corpus, 1000);
        assert!(chains
            .iter()
            .any(|c| c.pattern == CapecId::new(186) && c.weakness == CweId::new(829)));
    }

    #[test]
    fn chains_are_deduplicated_and_capped() {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let set = engine.match_text("Windows 7 Cisco ASA NI cRIO 9063 Labview");
        let all = exploit_chains(&set, &corpus, usize::MAX);
        let mut sorted = all.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
        let capped = exploit_chains(&set, &corpus, 2);
        assert_eq!(capped.len(), 2);
        assert_eq!(&all[..2], &capped[..]);
    }

    #[test]
    fn weakness_pivot_enumerates_cross_product() {
        let corpus = seed_corpus();
        let cwe78 = CweId::new(78);
        let chains = chains_for_weakness(&corpus, cwe78, 1000);
        // No seed vulnerability maps to CWE-78 directly, so empty here...
        let vulns = corpus.vulnerabilities_for_weakness(cwe78).len();
        let patterns = corpus.patterns_for_weakness(cwe78).len();
        assert_eq!(chains.len(), vulns * patterns);
        // ...but a weakness with both sides populated yields chains.
        let cwe829 = CweId::new(829);
        let chains = chains_for_weakness(&corpus, cwe829, 1000);
        assert!(!chains.is_empty());
    }

    #[test]
    fn display_reads_left_to_right() {
        let chain = ExploitChain {
            vulnerability: CveId::new(2018, 16804),
            weakness: CweId::new(829),
            pattern: CapecId::new(186),
        };
        assert_eq!(chain.to_string(), "CVE-2018-16804 -> CWE-829 -> CAPEC-186");
    }

    #[test]
    fn empty_match_set_yields_no_chains() {
        let corpus = seed_corpus();
        let set = MatchSet::default();
        assert!(exploit_chains(&set, &corpus, 10).is_empty());
    }

    /// A match set containing exactly one vulnerability hit.
    fn set_with_vulnerability(cve: CveId) -> MatchSet {
        MatchSet {
            vulnerabilities: vec![crate::Hit {
                id: cve.into(),
                score: 1.0,
                matched_terms: 1,
            }],
            ..MatchSet::default()
        }
    }

    #[test]
    fn one_cve_under_two_cwes_chains_through_both() {
        // NVD maps some CVEs to several CWEs; each mapping is its own
        // attacker story and none of them may be duplicated.
        use cpssec_attackdb::{Abstraction, AttackPattern, Corpus, Vulnerability, Weakness};
        let cve = CveId::new(2099, 1);
        let mut corpus = Corpus::new();
        corpus
            .add_weakness(Weakness::new(CweId::new(1), "first", "first weakness"))
            .unwrap();
        corpus
            .add_weakness(Weakness::new(CweId::new(2), "second", "second weakness"))
            .unwrap();
        corpus
            .add_pattern(
                AttackPattern::new(
                    CapecId::new(10),
                    "shared",
                    "exploits both",
                    Abstraction::Meta,
                )
                .with_weakness(CweId::new(1))
                .with_weakness(CweId::new(2)),
            )
            .unwrap();
        corpus
            .add_pattern(
                AttackPattern::new(
                    CapecId::new(20),
                    "narrow",
                    "first only",
                    Abstraction::Detailed,
                )
                .with_weakness(CweId::new(1)),
            )
            .unwrap();
        corpus
            .add_vulnerability(
                Vulnerability::new(cve, "double-classified bug")
                    .with_weakness(CweId::new(1))
                    .with_weakness(CweId::new(2)),
            )
            .unwrap();

        let chains = exploit_chains(&set_with_vulnerability(cve), &corpus, 1000);
        // CWE-1 reaches CAPEC-10 and CAPEC-20, CWE-2 reaches CAPEC-10:
        // three distinct stories, and the shared pattern appears once per
        // weakness, never per duplicate cross-reference row.
        assert_eq!(chains.len(), 3);
        let mut deduped = chains.clone();
        deduped.dedup();
        assert_eq!(deduped.len(), chains.len());
        for cwe in [CweId::new(1), CweId::new(2)] {
            assert!(chains.iter().any(|c| c.weakness == cwe));
        }
        assert_eq!(
            chains
                .iter()
                .filter(|c| c.pattern == CapecId::new(10))
                .count(),
            2
        );
    }

    #[test]
    fn empty_cross_reference_tables_yield_no_chains() {
        // Records exist but nothing links them: an unmapped CVE and a
        // pattern with no related weaknesses leave every cross-reference
        // table empty, so chain mining finds nothing in either direction.
        use cpssec_attackdb::{Abstraction, AttackPattern, Corpus, Vulnerability, Weakness};
        let cve = CveId::new(2099, 2);
        let mut corpus = Corpus::new();
        corpus
            .add_weakness(Weakness::new(CweId::new(3), "orphan", "linked to nothing"))
            .unwrap();
        corpus
            .add_pattern(AttackPattern::new(
                CapecId::new(30),
                "floating",
                "no weakness mapping",
                Abstraction::Standard,
            ))
            .unwrap();
        corpus
            .add_vulnerability(Vulnerability::new(cve, "never classified"))
            .unwrap();

        assert!(exploit_chains(&set_with_vulnerability(cve), &corpus, 1000).is_empty());
        assert!(chains_for_weakness(&corpus, CweId::new(3), 1000).is_empty());
        assert!(corpus.weaknesses_for_vulnerability(cve).is_empty());
        assert!(corpus.patterns_for_weakness(CweId::new(3)).is_empty());
    }
}
