//! A TF-IDF inverted index over one record family.
//!
//! Internally the index is split into a mutable *build side* and an
//! immutable *frozen side*. Documents are interned into a term dictionary
//! (`HashMap<String, u32>`) as they are added; the first query freezes the
//! index into flat per-term entries over a contiguous postings arena, with
//! per-term `idf`/`bm25_idf` and fully normalized per-posting weights for
//! *both* scoring models precomputed. After the freeze, looking up one
//! query term is a single hash probe returning a weight slice — zero
//! allocation, zero arithmetic on the query path.

use std::collections::HashMap;
use std::sync::OnceLock;

use cpssec_attackdb::snapshot::{put_f64_bits, put_u32, Reader, SnapshotError};

use crate::score::{ScoringModel, BM25_B, BM25_K1};
use crate::text::tokenize;

/// Dense index of a document within one [`InvertedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub(crate) u32);

impl DocId {
    /// The dense index backing this identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Build-side posting: raw term frequency, weights not yet computed.
#[derive(Debug, Clone, Copy)]
struct RawPosting {
    doc: DocId,
    tf: u32,
}

/// Frozen per-term dictionary entry: postings-arena span plus the
/// precomputed inverse document frequencies for both scoring models.
#[derive(Debug, Clone, Copy)]
struct TermEntry {
    start: u32,
    len: u32,
    idf: f64,
}

/// Frozen posting with both models' fully normalized weights precomputed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PostingWeight {
    /// The containing document.
    pub doc: DocId,
    /// Length-normalized TF-IDF weight: `(1 + ln tf) · ln(N/df) / √|doc|`.
    pub tfidf: f64,
    /// BM25 weight: `bm25_idf · saturation(tf, |doc|)`.
    pub bm25: f64,
}

impl PostingWeight {
    /// The weight under `model`.
    #[inline]
    pub fn weight(&self, model: ScoringModel) -> f64 {
        match model {
            ScoringModel::TfIdf => self.tfidf,
            ScoringModel::Bm25 => self.bm25,
        }
    }
}

/// One query term's resolved postings: the shared `ln(N/df)` IDF (used by
/// the model-independent hit criteria) and the precomputed weight slice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TermPostings<'a> {
    pub idf: f64,
    pub postings: &'a [PostingWeight],
}

/// Frozen query-side image of the index.
#[derive(Debug, Clone, Default)]
struct Frozen {
    entries: Vec<TermEntry>,
    arena: Vec<PostingWeight>,
}

/// Minimum documents per worker before [`InvertedIndex::from_documents`]
/// shards the build. Tokenizing one corpus record costs ~10 µs; a scoped
/// thread costs ~50–100 µs to start, so a shard needs a few hundred
/// documents before the parallel build wins (measured in EXPERIMENTS §E12b).
const SHARD_MIN_DOCS: usize = 512;

/// One worker's partial index: terms in local first-occurrence order,
/// postings carrying *global* doc ids (each shard owns a contiguous range).
struct ShardIndex {
    terms: Vec<String>,
    postings: Vec<Vec<RawPosting>>,
    doc_lengths: Vec<u32>,
}

/// Interns `tokens` and appends one posting run per distinct term —
/// the shared inner loop of the sequential and sharded builds.
fn push_token_runs(
    tokens: Vec<String>,
    doc: DocId,
    term_ids: &mut HashMap<String, u32>,
    raw: &mut Vec<Vec<RawPosting>>,
) {
    let mut tids: Vec<u32> = Vec::with_capacity(tokens.len());
    for token in tokens {
        let next = raw.len() as u32;
        let tid = *term_ids.entry(token).or_insert(next);
        if tid == next {
            raw.push(Vec::new());
        }
        tids.push(tid);
    }
    tids.sort_unstable();
    let mut run = tids.as_slice();
    while let Some(&tid) = run.first() {
        let tf = run.iter().take_while(|&&t| t == tid).count();
        raw[tid as usize].push(RawPosting { doc, tf: tf as u32 });
        run = &run[tf..];
    }
}

/// Indexes one contiguous chunk of documents starting at global id `base`.
fn index_shard<S: AsRef<str>>(docs: &[S], base: u32) -> ShardIndex {
    let mut term_ids: HashMap<String, u32> = HashMap::new();
    let mut postings: Vec<Vec<RawPosting>> = Vec::new();
    let mut doc_lengths = Vec::with_capacity(docs.len());
    for (offset, doc) in docs.iter().enumerate() {
        let id = DocId(base + offset as u32);
        let tokens = tokenize(doc.as_ref());
        doc_lengths.push(tokens.len() as u32);
        push_token_runs(tokens, id, &mut term_ids, &mut postings);
    }
    let mut terms = vec![String::new(); term_ids.len()];
    for (term, tid) in term_ids {
        terms[tid as usize] = term;
    }
    ShardIndex {
        terms,
        postings,
        doc_lengths,
    }
}

/// Merges shards (in doc order) into one index. Term ids are assigned in
/// shard order and local first-occurrence order, which — because shards
/// cover contiguous ascending doc ranges — is exactly the global
/// first-occurrence order the sequential build produces; per-term postings
/// concatenate in shard order, preserving the doc-ascending invariant.
fn merge_shards(shards: Vec<ShardIndex>) -> InvertedIndex {
    let mut index = InvertedIndex::new();
    for shard in shards {
        index.doc_lengths.extend_from_slice(&shard.doc_lengths);
        let mut remap: Vec<u32> = Vec::with_capacity(shard.terms.len());
        for term in shard.terms {
            let next = index.raw.len() as u32;
            let gid = *index.term_ids.entry(term).or_insert(next);
            if gid == next {
                index.raw.push(Vec::new());
            }
            remap.push(gid);
        }
        for (local, postings) in shard.postings.into_iter().enumerate() {
            let slot = &mut index.raw[remap[local] as usize];
            if slot.is_empty() {
                *slot = postings; // First shard holding this term: move, no copy.
            } else {
                slot.extend_from_slice(&postings);
            }
        }
    }
    index
}

/// One query term's contribution to a document match (test/reference view;
/// the hot path uses [`TermPostings`] slices directly).
#[cfg(test)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TermMatch {
    pub doc: DocId,
    pub weight: f64,
    pub idf: f64,
}

/// An inverted index with TF-IDF weighting.
///
/// Documents are added once and frozen; scoring uses
/// `idf(t) = ln(N / df(t))` and term weight `(1 + ln(tf)) * idf`,
/// normalized by `sqrt(|doc|)` at query time.
///
/// # Examples
///
/// ```
/// use cpssec_search::InvertedIndex;
///
/// let mut index = InvertedIndex::new();
/// index.add_document("a buffer overflow in the kernel");
/// index.add_document("a cross-site scripting issue");
/// assert_eq!(index.len(), 2);
/// assert_eq!(index.document_frequency("overflow"), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    /// Term dictionary: normalized term → dense term id (build-side interner).
    term_ids: HashMap<String, u32>,
    /// Build-side postings, indexed by term id; doc-ascending within a term.
    raw: Vec<Vec<RawPosting>>,
    doc_lengths: Vec<u32>,
    /// Lazily built query-side image; invalidated by [`Self::add_document`].
    frozen: OnceLock<Frozen>,
}

impl InvertedIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Adds a document and returns its id. Order of insertion defines ids.
    pub fn add_document(&mut self, text: &str) -> DocId {
        let id = DocId(u32::try_from(self.doc_lengths.len()).expect("doc count fits u32"));
        let tokens = tokenize(text);
        self.doc_lengths.push(tokens.len() as u32);
        push_token_runs(tokens, id, &mut self.term_ids, &mut self.raw);
        // The query-side image is stale now.
        self.frozen.take();
        id
    }

    /// Builds an index over `docs`, sharding tokenization and term
    /// interning across `std::thread::scope` workers when the input is
    /// large enough to amortize thread startup (below
    /// [`SHARD_MIN_DOCS`] per worker it falls back to the sequential
    /// build). The result is identical (`==` on every observable, and
    /// byte-identical under snapshot encoding) to adding the documents
    /// one by one: shards own contiguous ascending doc-id ranges and the
    /// merge assigns term ids in global first-occurrence order.
    #[must_use]
    pub fn from_documents<S: AsRef<str> + Sync>(docs: &[S]) -> InvertedIndex {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let shards = threads.min(docs.len() / SHARD_MIN_DOCS);
        InvertedIndex::from_documents_sharded(docs, shards.max(1))
    }

    /// [`Self::from_documents`] with an explicit worker count, exposed so
    /// tests and benchmarks can exercise the sharded merge on any machine.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn from_documents_sharded<S: AsRef<str> + Sync>(
        docs: &[S],
        shards: usize,
    ) -> InvertedIndex {
        assert!(shards > 0, "at least one shard");
        let mut span = cpssec_obs::span!("index-build");
        span.add_items(docs.len() as u64);
        if shards == 1 || docs.len() < 2 {
            let mut index = InvertedIndex::new();
            for doc in docs {
                index.add_document(doc.as_ref());
            }
            return index;
        }
        let chunk = docs.len().div_ceil(shards);
        let built: Vec<ShardIndex> = std::thread::scope(|s| {
            let handles: Vec<_> = docs
                .chunks(chunk)
                .enumerate()
                .map(|(i, docs)| s.spawn(move || index_shard(docs, (i * chunk) as u32)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build"))
                .collect()
        });
        merge_shards(built)
    }

    /// Number of documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Whether the index holds no documents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.doc_lengths.is_empty()
    }

    /// Number of distinct terms.
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.term_ids.len()
    }

    /// How many documents contain `term` (after normalization of the
    /// documents; `term` itself is taken verbatim).
    #[must_use]
    pub fn document_frequency(&self, term: &str) -> usize {
        self.term_ids
            .get(term)
            .map_or(0, |&tid| self.raw[tid as usize].len())
    }

    /// Inverse document frequency of `term`: `ln(N / df)`, or `0.0` for
    /// unknown terms or an empty index.
    #[must_use]
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.document_frequency(term);
        if df == 0 || self.doc_lengths.is_empty() {
            return 0.0;
        }
        (self.doc_lengths.len() as f64 / df as f64).ln()
    }

    /// The token count of a document (used for length normalization).
    #[must_use]
    pub fn document_length(&self, doc: DocId) -> usize {
        self.doc_lengths.get(doc.index()).copied().unwrap_or(0) as usize
    }

    /// Mean document length in tokens (1.0 for an empty index).
    #[must_use]
    pub fn average_document_length(&self) -> f64 {
        if self.doc_lengths.is_empty() {
            return 1.0;
        }
        let total: u64 = self.doc_lengths.iter().map(|&l| u64::from(l)).sum();
        (total as f64 / self.doc_lengths.len() as f64).max(1.0)
    }

    /// Forces construction of the frozen query-side image so its cost lands
    /// in the build phase rather than the first query.
    pub(crate) fn freeze(&self) {
        let _ = self.frozen();
    }

    /// The frozen image, built on first use.
    fn frozen(&self) -> &Frozen {
        self.frozen.get_or_init(|| {
            let n = self.doc_lengths.len() as f64;
            let avg = self.average_document_length();
            let total_postings: usize = self.raw.iter().map(Vec::len).sum();
            let mut entries = Vec::with_capacity(self.raw.len());
            let mut arena = Vec::with_capacity(total_postings);
            for postings in &self.raw {
                let start = arena.len() as u32;
                let df = postings.len() as f64;
                let idf = if postings.is_empty() || self.doc_lengths.is_empty() {
                    0.0
                } else {
                    (self.doc_lengths.len() as f64 / df).ln()
                };
                let bm25_idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                for p in postings {
                    let tf = p.tf as f64;
                    // TF-IDF guards zero-length docs; BM25's normalizer is
                    // already safe because `avg >= 1.0`.
                    let len = f64::from(self.doc_lengths[p.doc.index()]);
                    let tfidf = (1.0 + tf.ln()) * idf / len.max(1.0).sqrt();
                    let saturation =
                        tf * (BM25_K1 + 1.0) / (tf + BM25_K1 * (1.0 - BM25_B + BM25_B * len / avg));
                    arena.push(PostingWeight {
                        doc: p.doc,
                        tfidf,
                        bm25: bm25_idf * saturation,
                    });
                }
                entries.push(TermEntry {
                    start,
                    len: postings.len() as u32,
                    idf,
                });
            }
            Frozen { entries, arena }
        })
    }

    /// Serializes the index in the columnar wire layout shared with the
    /// zero-copy [`crate::view::IndexView`]:
    ///
    /// ```text
    /// doc_count      u32
    /// doc_lengths    doc_count × u32
    /// term_count     u32
    /// heap_len       u32
    /// terms_heap     heap_len bytes (terms concatenated, lexicographic)
    /// term_entries   term_count × { str_off u32, str_len u32, idf f64bits,
    ///                               post_start u32, post_len u32 }
    /// posting_total  u32
    /// postings       posting_total × { doc u32, tf u32, tfidf f64bits,
    ///                                  bm25 f64bits }
    /// ```
    ///
    /// Terms are written in lexicographic order (so a borrowed view can
    /// binary-search the entry table in place), each term's postings are
    /// contiguous in the arena, and both models' frozen weights land as raw
    /// `f64` bits — [`Self::decode`] restores without re-tokenizing or
    /// recomputing anything, bit-identical on every score. Sorting also
    /// makes the bytes independent of term-id numbering, so an engine grown
    /// by delta appends encodes identically to one rebuilt from scratch.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        self.freeze();
        let frozen = self.frozen.get().expect("frozen image just built");
        put_u32(out, self.doc_lengths.len() as u32);
        for &len in &self.doc_lengths {
            put_u32(out, len);
        }
        let mut terms: Vec<&str> = vec![""; self.term_ids.len()];
        for (term, &tid) in &self.term_ids {
            terms[tid as usize] = term;
        }
        let mut order: Vec<u32> = (0..terms.len() as u32).collect();
        order.sort_unstable_by_key(|&tid| terms[tid as usize]);
        put_u32(out, terms.len() as u32);
        let heap_len: usize = terms.iter().map(|t| t.len()).sum();
        put_u32(out, u32::try_from(heap_len).expect("term heap fits u32"));
        for &tid in &order {
            out.extend_from_slice(terms[tid as usize].as_bytes());
        }
        let mut str_off = 0u32;
        let mut post_start = 0u32;
        for &tid in &order {
            let term = terms[tid as usize];
            let entry = frozen.entries[tid as usize];
            put_u32(out, str_off);
            put_u32(out, term.len() as u32);
            put_f64_bits(out, entry.idf);
            put_u32(out, post_start);
            put_u32(out, entry.len);
            str_off += term.len() as u32;
            post_start += entry.len;
        }
        put_u32(out, post_start);
        for &tid in &order {
            let entry = frozen.entries[tid as usize];
            let postings = &self.raw[tid as usize];
            let start = entry.start as usize;
            let weights = &frozen.arena[start..start + entry.len as usize];
            for (p, w) in postings.iter().zip(weights) {
                put_u32(out, p.doc.0);
                put_u32(out, p.tf);
                put_f64_bits(out, w.tfidf);
                put_f64_bits(out, w.bm25);
            }
        }
    }

    /// Restores an index serialized by [`Self::encode_into`], assigning
    /// term ids in the (lexicographic) wire order. The frozen image is
    /// installed directly from the stored weight bits — no tokenization,
    /// no floating-point arithmetic — so a thawed index scores
    /// bit-identically to the one that was encoded, and re-encoding it is
    /// a byte-level fixpoint.
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<InvertedIndex, SnapshotError> {
        let doc_count = r.u32()?;
        let mut doc_lengths = Vec::with_capacity(r.capacity_for(doc_count, 4));
        for _ in 0..doc_count {
            doc_lengths.push(r.u32()?);
        }
        let term_count = r.u32()?;
        let heap_len = r.u32()? as usize;
        let heap = r.take(heap_len)?;
        let capacity = r.capacity_for(term_count, 24);
        let mut term_ids = HashMap::with_capacity(capacity);
        // `(idf, post_len)` per term, in wire order.
        let mut metas: Vec<(f64, u32)> = Vec::with_capacity(capacity);
        let mut expected_str_off = 0u32;
        let mut expected_post_start = 0u32;
        let mut prev_term: Option<&str> = None;
        for tid in 0..term_count {
            let str_off = r.u32()?;
            let str_len = r.u32()?;
            let idf = r.f64_bits()?;
            let post_start = r.u32()?;
            let post_len = r.u32()?;
            if str_off != expected_str_off || post_start != expected_post_start {
                return Err(SnapshotError::Corrupt(format!(
                    "term {tid} entry is not contiguous with its predecessor"
                )));
            }
            let end = (str_off as usize)
                .checked_add(str_len as usize)
                .filter(|&end| end <= heap.len())
                .ok_or_else(|| {
                    SnapshotError::Corrupt(format!("term {tid} string overruns the heap"))
                })?;
            let term = core::str::from_utf8(&heap[str_off as usize..end])
                .map_err(|_| SnapshotError::Corrupt(format!("term {tid} is not valid UTF-8")))?;
            if prev_term.is_some_and(|prev| prev >= term) {
                return Err(SnapshotError::Corrupt(format!(
                    "term dictionary is not strictly sorted at entry {tid}"
                )));
            }
            prev_term = Some(term);
            term_ids.insert(term.to_owned(), tid);
            metas.push((idf, post_len));
            expected_str_off += str_len;
            expected_post_start = post_start
                .checked_add(post_len)
                .ok_or_else(|| SnapshotError::Corrupt("postings arena overflows u32".into()))?;
        }
        if expected_str_off as usize != heap.len() {
            return Err(SnapshotError::Corrupt(format!(
                "term heap holds {} byte(s) beyond the last term",
                heap.len() - expected_str_off as usize
            )));
        }
        let posting_total = r.u32()?;
        if posting_total != expected_post_start {
            return Err(SnapshotError::Corrupt(format!(
                "posting arena declares {posting_total} entries but the terms span {expected_post_start}"
            )));
        }
        let mut raw = Vec::with_capacity(metas.len());
        let mut entries = Vec::with_capacity(metas.len());
        let mut arena = Vec::with_capacity(r.capacity_for(posting_total, 24));
        for (idf, post_len) in metas {
            let start = arena.len() as u32;
            let mut postings = Vec::with_capacity(r.capacity_for(post_len, 24));
            for _ in 0..post_len {
                let doc = r.u32()?;
                if doc >= doc_count {
                    return Err(SnapshotError::Corrupt(format!(
                        "posting references document {doc} of {doc_count}"
                    )));
                }
                let tf = r.u32()?;
                let tfidf = r.f64_bits()?;
                let bm25 = r.f64_bits()?;
                postings.push(RawPosting {
                    doc: DocId(doc),
                    tf,
                });
                arena.push(PostingWeight {
                    doc: DocId(doc),
                    tfidf,
                    bm25,
                });
            }
            entries.push(TermEntry {
                start,
                len: post_len,
                idf,
            });
            raw.push(postings);
        }
        let frozen = OnceLock::new();
        let _ = frozen.set(Frozen { entries, arena });
        Ok(InvertedIndex {
            term_ids,
            raw,
            doc_lengths,
            frozen,
        })
    }

    /// Appends one document from pre-tokenized `(term, frequency)` runs in
    /// first-occurrence order — the `.cpsdelta` apply path. Equivalent to
    /// [`Self::add_document`] on the original text when the runs were
    /// produced by [`tokenize`]: terms are interned in run order, postings
    /// are emitted in ascending term-id order, and the frozen image is
    /// invalidated so weights (every idf changes with `N`) recompute on the
    /// next freeze exactly as a from-scratch build would.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on a zero frequency, a duplicated term,
    /// or a `token_count` that disagrees with the frequency sum. On error
    /// the index may hold newly interned terms and must be discarded —
    /// callers apply deltas to a scratch clone and swap on success.
    pub(crate) fn append_document_runs(
        &mut self,
        token_count: u32,
        runs: &[(&str, u32)],
    ) -> Result<DocId, SnapshotError> {
        let doc = DocId(
            u32::try_from(self.doc_lengths.len())
                .map_err(|_| SnapshotError::Corrupt("document count overflows u32".into()))?,
        );
        let mut sum = 0u64;
        let mut tids: Vec<(u32, u32)> = Vec::with_capacity(runs.len());
        for &(term, tf) in runs {
            if tf == 0 {
                return Err(SnapshotError::Corrupt(format!(
                    "term `{term}` has zero frequency in a delta run"
                )));
            }
            sum += u64::from(tf);
            let next = self.raw.len() as u32;
            let tid = match self.term_ids.get(term) {
                Some(&tid) => tid,
                None => {
                    self.term_ids.insert(term.to_owned(), next);
                    self.raw.push(Vec::new());
                    next
                }
            };
            tids.push((tid, tf));
        }
        if sum != u64::from(token_count) {
            return Err(SnapshotError::Corrupt(format!(
                "document length {token_count} disagrees with run frequency sum {sum}"
            )));
        }
        tids.sort_unstable_by_key(|&(tid, _)| tid);
        if tids.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(SnapshotError::Corrupt(
                "duplicate term in delta runs".into(),
            ));
        }
        self.doc_lengths.push(token_count);
        for (tid, tf) in tids {
            self.raw[tid as usize].push(RawPosting { doc, tf });
        }
        self.frozen.take();
        Ok(doc)
    }

    /// Zero-allocation lookup of one query term: a hash probe into the term
    /// dictionary, then a slice of precomputed posting weights.
    pub(crate) fn term_postings(&self, term: &str) -> Option<TermPostings<'_>> {
        let &tid = self.term_ids.get(term)?;
        let frozen = self.frozen();
        let entry = frozen.entries[tid as usize];
        let start = entry.start as usize;
        Some(TermPostings {
            idf: entry.idf,
            postings: &frozen.arena[start..start + entry.len as usize],
        })
    }

    /// All `(document, weight, idf)` contributions for one query term under
    /// the given scoring model — a materialized view of [`Self::term_postings`]
    /// kept for tests and reference scorers; the engine's hot path reads the
    /// weight slices directly.
    #[cfg(test)]
    pub(crate) fn term_matches(&self, term: &str, model: ScoringModel) -> Vec<TermMatch> {
        let Some(tp) = self.term_postings(term) else {
            return Vec::new();
        };
        tp.postings
            .iter()
            .map(|p| TermMatch {
                doc: p.doc,
                weight: p.weight(model),
                idf: tp.idf,
            })
            .collect()
    }
}

/// Abstraction over term-postings storage the query engine scores against:
/// either an owned, thawed [`InvertedIndex`] or a zero-copy
/// [`crate::view::IndexView`] reading a snapshot byte image in place. Both
/// yield the same posting order and the same stored weight bits, which is
/// what makes view queries byte-identical to owned queries.
pub(crate) trait TermLookup {
    /// Iterator over one term's postings, in stored (doc-ascending) order.
    type PostingIter<'a>: Iterator<Item = PostingWeight>
    where
        Self: 'a;

    /// Number of documents in the family (sizes the dense scratch table).
    fn doc_count(&self) -> usize;

    /// Resolves one query term to its shared `ln(N/df)` IDF and posting
    /// iterator, or `None` for unknown terms.
    fn lookup(&self, term: &str) -> Option<(f64, Self::PostingIter<'_>)>;
}

impl TermLookup for InvertedIndex {
    type PostingIter<'a> = std::iter::Copied<std::slice::Iter<'a, PostingWeight>>;

    fn doc_count(&self) -> usize {
        self.len()
    }

    fn lookup(&self, term: &str) -> Option<(f64, Self::PostingIter<'_>)> {
        let tp = self.term_postings(term)?;
        Some((tp.idf, tp.postings.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add_document("buffer overflow in the kernel network stack");
        idx.add_document("kernel race condition");
        idx.add_document("cross site scripting in the web interface");
        idx
    }

    #[test]
    fn document_frequency_counts_documents_not_occurrences() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel kernel kernel");
        idx.add_document("kernel");
        assert_eq!(idx.document_frequency("kernel"), 2);
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let idx = sample();
        assert!(idx.idf("overflow") > idx.idf("kernel"));
        assert_eq!(idx.idf("ghost"), 0.0);
    }

    #[test]
    fn documents_are_normalized_terms_are_verbatim() {
        let idx = sample();
        // Documents were stemmed: "scripting" → "script".
        assert_eq!(idx.document_frequency("script"), 1);
        assert_eq!(idx.document_frequency("scripting"), 0);
    }

    #[test]
    fn term_matches_weight_repeats_sublinearly() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel kernel");
        idx.add_document("other text entirely");
        let matches = idx.term_matches("kernel", ScoringModel::TfIdf);
        assert_eq!(matches.len(), 1);
        // Normalized weight: (1 + ln 2) * idf / sqrt(2).
        let expected = (1.0 + 2.0f64.ln()) * idx.idf("kernel") / 2.0f64.sqrt();
        assert!((matches[0].weight - expected).abs() < 1e-12);
    }

    #[test]
    fn bm25_weights_saturate_with_term_frequency() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel");
        idx.add_document("kernel kernel kernel kernel kernel");
        idx.add_document("other words here");
        let matches = idx.term_matches("kernel", ScoringModel::Bm25);
        assert_eq!(matches.len(), 2);
        // Five occurrences score better than one, but far less than 5x.
        assert!(matches[1].weight > matches[0].weight);
        assert!(matches[1].weight < 3.0 * matches[0].weight);
    }

    #[test]
    fn bm25_idf_differs_from_tfidf_but_reported_idf_is_shared() {
        let idx = sample();
        let tfidf = idx.term_matches("kernel", ScoringModel::TfIdf);
        let bm25 = idx.term_matches("kernel", ScoringModel::Bm25);
        assert_eq!(tfidf.len(), bm25.len());
        for (a, b) in tfidf.iter().zip(bm25.iter()) {
            assert_eq!(a.idf, b.idf, "hit criteria must be model-independent");
        }
    }

    #[test]
    fn average_length_is_safe_on_empty_index() {
        assert_eq!(InvertedIndex::new().average_document_length(), 1.0);
        let mut idx = InvertedIndex::new();
        idx.add_document("two words");
        idx.add_document("four words right here"); // "right"/"here" kept, 4 tokens
        assert_eq!(idx.average_document_length(), 3.0);
    }

    #[test]
    fn lengths_track_token_counts() {
        let idx = sample();
        assert_eq!(idx.document_length(DocId(1)), 3);
        assert_eq!(idx.document_length(DocId(99)), 0);
    }

    #[test]
    fn empty_index_is_well_behaved() {
        let idx = InvertedIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.idf("anything"), 0.0);
        assert!(idx.term_matches("anything", ScoringModel::TfIdf).is_empty());
        assert!(idx.term_matches("anything", ScoringModel::Bm25).is_empty());
    }

    #[test]
    fn adding_a_document_invalidates_the_frozen_image() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel overflow");
        let before = idx.term_postings("kernel").expect("indexed").idf;
        idx.add_document("kernel panic");
        idx.add_document("web interface");
        let after = idx.term_postings("kernel").expect("indexed").idf;
        // df went 1/1 → 2/3: the idf must have been recomputed, not cached.
        assert!(before.abs() < 1e-12, "idf of the only doc's term is ln(1)");
        assert!((after - (3.0f64 / 2.0).ln()).abs() < 1e-12);
        assert_eq!(
            idx.term_postings("kernel").expect("indexed").postings.len(),
            2
        );
    }

    #[test]
    fn sharded_build_is_byte_identical_to_sequential_at_any_shard_count() {
        let docs: Vec<String> = (0..97)
            .map(|i| {
                format!(
                    "kernel overflow document {i} shares token group{} and product{}",
                    i % 7,
                    i % 13
                )
            })
            .collect();
        let encode = |index: &InvertedIndex| {
            let mut out = Vec::new();
            index.encode_into(&mut out);
            out
        };
        let sequential = encode(&InvertedIndex::from_documents_sharded(&docs, 1));
        for shards in [2, 3, 4, 8, 97, 200] {
            let sharded = encode(&InvertedIndex::from_documents_sharded(&docs, shards));
            assert_eq!(sequential, sharded, "{shards} shards diverged");
        }
    }

    #[test]
    fn decode_restores_bit_identical_postings() {
        let idx = sample();
        let mut bytes = Vec::new();
        idx.encode_into(&mut bytes);
        let mut r = Reader::new(&bytes);
        let thawed = InvertedIndex::decode(&mut r).expect("decode");
        assert!(r.finished(), "decode must consume the payload exactly");
        assert_eq!(thawed.len(), idx.len());
        assert_eq!(thawed.term_count(), idx.term_count());
        for term in ["kernel", "overflow", "script", "race"] {
            let a = idx.term_postings(term);
            let b = thawed.term_postings(term);
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.idf.to_bits(), b.idf.to_bits(), "{term}");
                    assert_eq!(a.postings.len(), b.postings.len());
                    for (x, y) in a.postings.iter().zip(b.postings.iter()) {
                        assert_eq!(x.doc, y.doc);
                        assert_eq!(x.tfidf.to_bits(), y.tfidf.to_bits());
                        assert_eq!(x.bm25.to_bits(), y.bm25.to_bits());
                    }
                }
                _ => panic!("presence of `{term}` diverged"),
            }
        }
        // The thawed index stays mutable: adding a document invalidates the
        // installed frozen image and rebuilds it on the next query.
        let mut grown = thawed;
        grown.add_document("kernel regression");
        assert_eq!(grown.document_frequency("kernel"), 3);
    }

    #[test]
    fn decode_rejects_dangling_doc_reference() {
        let idx = sample();
        let mut bytes = Vec::new();
        idx.encode_into(&mut bytes);
        // Corrupt the first posting's doc id: it sits right after the
        // doc-length table, term heap, entry table, and posting_total word.
        let mut r = Reader::new(&bytes);
        let doc_count = r.u32().unwrap();
        for _ in 0..doc_count {
            r.u32().unwrap();
        }
        let term_count = r.u32().unwrap();
        let heap_len = r.u32().unwrap();
        r.take(heap_len as usize).unwrap();
        r.take(term_count as usize * 24).unwrap();
        let posting_total = r.u32().unwrap();
        assert!(posting_total > 0);
        let pos = bytes.len() - r.remaining();
        bytes[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = InvertedIndex::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    #[test]
    fn encoded_terms_are_sorted_and_decode_is_a_fixpoint() {
        let idx = sample();
        let mut bytes = Vec::new();
        idx.encode_into(&mut bytes);
        let thawed = InvertedIndex::decode(&mut Reader::new(&bytes)).expect("decode");
        let mut again = Vec::new();
        thawed.encode_into(&mut again);
        assert_eq!(bytes, again, "decode → encode must be the identity");
    }

    #[test]
    fn append_document_runs_matches_add_document() {
        let text = "kernel overflow kernel panic in routing daemon";
        let mut grown = sample();
        grown.add_document(text);
        let mut appended = sample();
        let tokens = tokenize(text);
        let mut runs: Vec<(String, u32)> = Vec::new();
        for token in &tokens {
            match runs.iter_mut().find(|(t, _)| t == token) {
                Some((_, tf)) => *tf += 1,
                None => runs.push((token.clone(), 1)),
            }
        }
        let refs: Vec<(&str, u32)> = runs.iter().map(|(t, tf)| (t.as_str(), *tf)).collect();
        appended
            .append_document_runs(tokens.len() as u32, &refs)
            .expect("apply");
        let mut a = Vec::new();
        grown.encode_into(&mut a);
        let mut b = Vec::new();
        appended.encode_into(&mut b);
        assert_eq!(a, b, "run-based append must be byte-identical");
    }

    #[test]
    fn append_document_runs_rejects_malformed_runs() {
        let mut idx = sample();
        assert!(matches!(
            idx.append_document_runs(1, &[("kernel", 0)]),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut idx = sample();
        assert!(matches!(
            idx.append_document_runs(3, &[("kernel", 1), ("kernel", 2)]),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut idx = sample();
        assert!(matches!(
            idx.append_document_runs(5, &[("kernel", 1)]),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn term_postings_match_term_matches_for_both_models() {
        let idx = sample();
        for model in ScoringModel::ALL {
            let reference = idx.term_matches("kernel", model);
            let tp = idx.term_postings("kernel").expect("indexed");
            assert_eq!(reference.len(), tp.postings.len());
            for (r, p) in reference.iter().zip(tp.postings.iter()) {
                assert_eq!(r.doc, p.doc);
                assert_eq!(r.weight, p.weight(model), "precomputed bits must agree");
                assert_eq!(r.idf, tp.idf);
            }
        }
    }
}
