//! A TF-IDF inverted index over one record family.
//!
//! Internally the index is split into a mutable *build side* and an
//! immutable *frozen side*. Documents are interned into a term dictionary
//! (`HashMap<String, u32>`) as they are added; the first query freezes the
//! index into flat per-term entries over a contiguous postings arena, with
//! per-term `idf`/`bm25_idf` and fully normalized per-posting weights for
//! *both* scoring models precomputed. After the freeze, looking up one
//! query term is a single hash probe returning a weight slice — zero
//! allocation, zero arithmetic on the query path.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::score::{ScoringModel, BM25_B, BM25_K1};
use crate::text::tokenize;

/// Dense index of a document within one [`InvertedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub(crate) u32);

impl DocId {
    /// The dense index backing this identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Build-side posting: raw term frequency, weights not yet computed.
#[derive(Debug, Clone, Copy)]
struct RawPosting {
    doc: DocId,
    tf: u32,
}

/// Frozen per-term dictionary entry: postings-arena span plus the
/// precomputed inverse document frequencies for both scoring models.
#[derive(Debug, Clone, Copy)]
struct TermEntry {
    start: u32,
    len: u32,
    idf: f64,
}

/// Frozen posting with both models' fully normalized weights precomputed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PostingWeight {
    /// The containing document.
    pub doc: DocId,
    /// Length-normalized TF-IDF weight: `(1 + ln tf) · ln(N/df) / √|doc|`.
    pub tfidf: f64,
    /// BM25 weight: `bm25_idf · saturation(tf, |doc|)`.
    pub bm25: f64,
}

impl PostingWeight {
    /// The weight under `model`.
    #[inline]
    pub fn weight(&self, model: ScoringModel) -> f64 {
        match model {
            ScoringModel::TfIdf => self.tfidf,
            ScoringModel::Bm25 => self.bm25,
        }
    }
}

/// One query term's resolved postings: the shared `ln(N/df)` IDF (used by
/// the model-independent hit criteria) and the precomputed weight slice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TermPostings<'a> {
    pub idf: f64,
    pub postings: &'a [PostingWeight],
}

/// Frozen query-side image of the index.
#[derive(Debug, Clone, Default)]
struct Frozen {
    entries: Vec<TermEntry>,
    arena: Vec<PostingWeight>,
}

/// One query term's contribution to a document match (test/reference view;
/// the hot path uses [`TermPostings`] slices directly).
#[cfg(test)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TermMatch {
    pub doc: DocId,
    pub weight: f64,
    pub idf: f64,
}

/// An inverted index with TF-IDF weighting.
///
/// Documents are added once and frozen; scoring uses
/// `idf(t) = ln(N / df(t))` and term weight `(1 + ln(tf)) * idf`,
/// normalized by `sqrt(|doc|)` at query time.
///
/// # Examples
///
/// ```
/// use cpssec_search::InvertedIndex;
///
/// let mut index = InvertedIndex::new();
/// index.add_document("a buffer overflow in the kernel");
/// index.add_document("a cross-site scripting issue");
/// assert_eq!(index.len(), 2);
/// assert_eq!(index.document_frequency("overflow"), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    /// Term dictionary: normalized term → dense term id (build-side interner).
    term_ids: HashMap<String, u32>,
    /// Build-side postings, indexed by term id; doc-ascending within a term.
    raw: Vec<Vec<RawPosting>>,
    doc_lengths: Vec<u32>,
    /// Lazily built query-side image; invalidated by [`Self::add_document`].
    frozen: OnceLock<Frozen>,
}

impl InvertedIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Adds a document and returns its id. Order of insertion defines ids.
    pub fn add_document(&mut self, text: &str) -> DocId {
        let id = DocId(u32::try_from(self.doc_lengths.len()).expect("doc count fits u32"));
        let tokens = tokenize(text);
        self.doc_lengths.push(tokens.len() as u32);
        // Intern tokens, then count a sorted run per distinct term id.
        let mut tids: Vec<u32> = Vec::with_capacity(tokens.len());
        for token in tokens {
            let next = self.raw.len() as u32;
            let tid = *self.term_ids.entry(token).or_insert(next);
            if tid == next {
                self.raw.push(Vec::new());
            }
            tids.push(tid);
        }
        tids.sort_unstable();
        let mut run = tids.as_slice();
        while let Some(&tid) = run.first() {
            let tf = run.iter().take_while(|&&t| t == tid).count();
            self.raw[tid as usize].push(RawPosting {
                doc: id,
                tf: tf as u32,
            });
            run = &run[tf..];
        }
        // The query-side image is stale now.
        self.frozen.take();
        id
    }

    /// Number of documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Whether the index holds no documents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.doc_lengths.is_empty()
    }

    /// Number of distinct terms.
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.term_ids.len()
    }

    /// How many documents contain `term` (after normalization of the
    /// documents; `term` itself is taken verbatim).
    #[must_use]
    pub fn document_frequency(&self, term: &str) -> usize {
        self.term_ids
            .get(term)
            .map_or(0, |&tid| self.raw[tid as usize].len())
    }

    /// Inverse document frequency of `term`: `ln(N / df)`, or `0.0` for
    /// unknown terms or an empty index.
    #[must_use]
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.document_frequency(term);
        if df == 0 || self.doc_lengths.is_empty() {
            return 0.0;
        }
        (self.doc_lengths.len() as f64 / df as f64).ln()
    }

    /// The token count of a document (used for length normalization).
    #[must_use]
    pub fn document_length(&self, doc: DocId) -> usize {
        self.doc_lengths.get(doc.index()).copied().unwrap_or(0) as usize
    }

    /// Mean document length in tokens (1.0 for an empty index).
    #[must_use]
    pub fn average_document_length(&self) -> f64 {
        if self.doc_lengths.is_empty() {
            return 1.0;
        }
        let total: u64 = self.doc_lengths.iter().map(|&l| u64::from(l)).sum();
        (total as f64 / self.doc_lengths.len() as f64).max(1.0)
    }

    /// Forces construction of the frozen query-side image so its cost lands
    /// in the build phase rather than the first query.
    pub(crate) fn freeze(&self) {
        let _ = self.frozen();
    }

    /// The frozen image, built on first use.
    fn frozen(&self) -> &Frozen {
        self.frozen.get_or_init(|| {
            let n = self.doc_lengths.len() as f64;
            let avg = self.average_document_length();
            let total_postings: usize = self.raw.iter().map(Vec::len).sum();
            let mut entries = Vec::with_capacity(self.raw.len());
            let mut arena = Vec::with_capacity(total_postings);
            for postings in &self.raw {
                let start = arena.len() as u32;
                let df = postings.len() as f64;
                let idf = if postings.is_empty() || self.doc_lengths.is_empty() {
                    0.0
                } else {
                    (self.doc_lengths.len() as f64 / df).ln()
                };
                let bm25_idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                for p in postings {
                    let tf = p.tf as f64;
                    // TF-IDF guards zero-length docs; BM25's normalizer is
                    // already safe because `avg >= 1.0`.
                    let len = f64::from(self.doc_lengths[p.doc.index()]);
                    let tfidf = (1.0 + tf.ln()) * idf / len.max(1.0).sqrt();
                    let saturation =
                        tf * (BM25_K1 + 1.0) / (tf + BM25_K1 * (1.0 - BM25_B + BM25_B * len / avg));
                    arena.push(PostingWeight {
                        doc: p.doc,
                        tfidf,
                        bm25: bm25_idf * saturation,
                    });
                }
                entries.push(TermEntry {
                    start,
                    len: postings.len() as u32,
                    idf,
                });
            }
            Frozen { entries, arena }
        })
    }

    /// Zero-allocation lookup of one query term: a hash probe into the term
    /// dictionary, then a slice of precomputed posting weights.
    pub(crate) fn term_postings(&self, term: &str) -> Option<TermPostings<'_>> {
        let &tid = self.term_ids.get(term)?;
        let frozen = self.frozen();
        let entry = frozen.entries[tid as usize];
        let start = entry.start as usize;
        Some(TermPostings {
            idf: entry.idf,
            postings: &frozen.arena[start..start + entry.len as usize],
        })
    }

    /// All `(document, weight, idf)` contributions for one query term under
    /// the given scoring model — a materialized view of [`Self::term_postings`]
    /// kept for tests and reference scorers; the engine's hot path reads the
    /// weight slices directly.
    #[cfg(test)]
    pub(crate) fn term_matches(&self, term: &str, model: ScoringModel) -> Vec<TermMatch> {
        let Some(tp) = self.term_postings(term) else {
            return Vec::new();
        };
        tp.postings
            .iter()
            .map(|p| TermMatch {
                doc: p.doc,
                weight: p.weight(model),
                idf: tp.idf,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add_document("buffer overflow in the kernel network stack");
        idx.add_document("kernel race condition");
        idx.add_document("cross site scripting in the web interface");
        idx
    }

    #[test]
    fn document_frequency_counts_documents_not_occurrences() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel kernel kernel");
        idx.add_document("kernel");
        assert_eq!(idx.document_frequency("kernel"), 2);
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let idx = sample();
        assert!(idx.idf("overflow") > idx.idf("kernel"));
        assert_eq!(idx.idf("ghost"), 0.0);
    }

    #[test]
    fn documents_are_normalized_terms_are_verbatim() {
        let idx = sample();
        // Documents were stemmed: "scripting" → "script".
        assert_eq!(idx.document_frequency("script"), 1);
        assert_eq!(idx.document_frequency("scripting"), 0);
    }

    #[test]
    fn term_matches_weight_repeats_sublinearly() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel kernel");
        idx.add_document("other text entirely");
        let matches = idx.term_matches("kernel", ScoringModel::TfIdf);
        assert_eq!(matches.len(), 1);
        // Normalized weight: (1 + ln 2) * idf / sqrt(2).
        let expected = (1.0 + 2.0f64.ln()) * idx.idf("kernel") / 2.0f64.sqrt();
        assert!((matches[0].weight - expected).abs() < 1e-12);
    }

    #[test]
    fn bm25_weights_saturate_with_term_frequency() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel");
        idx.add_document("kernel kernel kernel kernel kernel");
        idx.add_document("other words here");
        let matches = idx.term_matches("kernel", ScoringModel::Bm25);
        assert_eq!(matches.len(), 2);
        // Five occurrences score better than one, but far less than 5x.
        assert!(matches[1].weight > matches[0].weight);
        assert!(matches[1].weight < 3.0 * matches[0].weight);
    }

    #[test]
    fn bm25_idf_differs_from_tfidf_but_reported_idf_is_shared() {
        let idx = sample();
        let tfidf = idx.term_matches("kernel", ScoringModel::TfIdf);
        let bm25 = idx.term_matches("kernel", ScoringModel::Bm25);
        assert_eq!(tfidf.len(), bm25.len());
        for (a, b) in tfidf.iter().zip(bm25.iter()) {
            assert_eq!(a.idf, b.idf, "hit criteria must be model-independent");
        }
    }

    #[test]
    fn average_length_is_safe_on_empty_index() {
        assert_eq!(InvertedIndex::new().average_document_length(), 1.0);
        let mut idx = InvertedIndex::new();
        idx.add_document("two words");
        idx.add_document("four words right here"); // "right"/"here" kept, 4 tokens
        assert_eq!(idx.average_document_length(), 3.0);
    }

    #[test]
    fn lengths_track_token_counts() {
        let idx = sample();
        assert_eq!(idx.document_length(DocId(1)), 3);
        assert_eq!(idx.document_length(DocId(99)), 0);
    }

    #[test]
    fn empty_index_is_well_behaved() {
        let idx = InvertedIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.idf("anything"), 0.0);
        assert!(idx.term_matches("anything", ScoringModel::TfIdf).is_empty());
        assert!(idx.term_matches("anything", ScoringModel::Bm25).is_empty());
    }

    #[test]
    fn adding_a_document_invalidates_the_frozen_image() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel overflow");
        let before = idx.term_postings("kernel").expect("indexed").idf;
        idx.add_document("kernel panic");
        idx.add_document("web interface");
        let after = idx.term_postings("kernel").expect("indexed").idf;
        // df went 1/1 → 2/3: the idf must have been recomputed, not cached.
        assert!(before.abs() < 1e-12, "idf of the only doc's term is ln(1)");
        assert!((after - (3.0f64 / 2.0).ln()).abs() < 1e-12);
        assert_eq!(
            idx.term_postings("kernel").expect("indexed").postings.len(),
            2
        );
    }

    #[test]
    fn term_postings_match_term_matches_for_both_models() {
        let idx = sample();
        for model in ScoringModel::ALL {
            let reference = idx.term_matches("kernel", model);
            let tp = idx.term_postings("kernel").expect("indexed");
            assert_eq!(reference.len(), tp.postings.len());
            for (r, p) in reference.iter().zip(tp.postings.iter()) {
                assert_eq!(r.doc, p.doc);
                assert_eq!(r.weight, p.weight(model), "precomputed bits must agree");
                assert_eq!(r.idf, tp.idf);
            }
        }
    }
}
