//! A TF-IDF inverted index over one record family.

use std::collections::BTreeMap;

use crate::score::{ScoringModel, BM25_B, BM25_K1};
use crate::text::tokenize;

/// Dense index of a document within one [`InvertedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub(crate) u32);

impl DocId {
    /// The dense index backing this identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Posting {
    doc: DocId,
    tf: u32,
}

/// One query term's contribution to a document match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TermMatch {
    pub doc: DocId,
    pub weight: f64,
    pub idf: f64,
}

/// An inverted index with TF-IDF weighting.
///
/// Documents are added once and frozen; scoring uses
/// `idf(t) = ln(N / df(t))` and term weight `(1 + ln(tf)) * idf`,
/// normalized by `sqrt(|doc|)` at query time.
///
/// # Examples
///
/// ```
/// use cpssec_search::InvertedIndex;
///
/// let mut index = InvertedIndex::new();
/// index.add_document("a buffer overflow in the kernel");
/// index.add_document("a cross-site scripting issue");
/// assert_eq!(index.len(), 2);
/// assert_eq!(index.document_frequency("overflow"), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    postings: BTreeMap<String, Vec<Posting>>,
    doc_lengths: Vec<u32>,
}

impl InvertedIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Adds a document and returns its id. Order of insertion defines ids.
    pub fn add_document(&mut self, text: &str) -> DocId {
        let id = DocId(u32::try_from(self.doc_lengths.len()).expect("doc count fits u32"));
        let tokens = tokenize(text);
        self.doc_lengths.push(tokens.len() as u32);
        let mut counts: BTreeMap<String, u32> = BTreeMap::new();
        for token in tokens {
            *counts.entry(token).or_insert(0) += 1;
        }
        for (term, tf) in counts {
            self.postings.entry(term).or_default().push(Posting { doc: id, tf });
        }
        id
    }

    /// Number of documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Whether the index holds no documents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.doc_lengths.is_empty()
    }

    /// Number of distinct terms.
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// How many documents contain `term` (after normalization of the
    /// documents; `term` itself is taken verbatim).
    #[must_use]
    pub fn document_frequency(&self, term: &str) -> usize {
        self.postings.get(term).map_or(0, Vec::len)
    }

    /// Inverse document frequency of `term`: `ln(N / df)`, or `0.0` for
    /// unknown terms or an empty index.
    #[must_use]
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.document_frequency(term);
        if df == 0 || self.doc_lengths.is_empty() {
            return 0.0;
        }
        (self.doc_lengths.len() as f64 / df as f64).ln()
    }

    /// The token count of a document (used for length normalization).
    #[must_use]
    pub fn document_length(&self, doc: DocId) -> usize {
        self.doc_lengths.get(doc.index()).copied().unwrap_or(0) as usize
    }

    /// Mean document length in tokens (1.0 for an empty index).
    #[must_use]
    pub fn average_document_length(&self) -> f64 {
        if self.doc_lengths.is_empty() {
            return 1.0;
        }
        let total: u64 = self.doc_lengths.iter().map(|&l| u64::from(l)).sum();
        (total as f64 / self.doc_lengths.len() as f64).max(1.0)
    }

    /// All `(document, weight, idf)` contributions for one query term under
    /// the given scoring model. Weights are fully normalized (length
    /// normalization included), so a document's score is the plain sum of
    /// its term weights. The `idf` field always carries `ln(N/df)` so hit
    /// criteria stay model-independent.
    pub(crate) fn term_matches(&self, term: &str, model: ScoringModel) -> Vec<TermMatch> {
        let idf = self.idf(term);
        let Some(postings) = self.postings.get(term) else {
            return Vec::new();
        };
        match model {
            ScoringModel::TfIdf => postings
                .iter()
                .map(|p| {
                    let len = f64::from(self.doc_lengths[p.doc.index()]).max(1.0);
                    TermMatch {
                        doc: p.doc,
                        weight: (1.0 + (p.tf as f64).ln()) * idf / len.sqrt(),
                        idf,
                    }
                })
                .collect(),
            ScoringModel::Bm25 => {
                let n = self.doc_lengths.len() as f64;
                let df = postings.len() as f64;
                let bm25_idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                let avg = self.average_document_length();
                postings
                    .iter()
                    .map(|p| {
                        let tf = p.tf as f64;
                        let len = f64::from(self.doc_lengths[p.doc.index()]);
                        let saturation =
                            tf * (BM25_K1 + 1.0) / (tf + BM25_K1 * (1.0 - BM25_B + BM25_B * len / avg));
                        TermMatch {
                            doc: p.doc,
                            weight: bm25_idf * saturation,
                            idf,
                        }
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add_document("buffer overflow in the kernel network stack");
        idx.add_document("kernel race condition");
        idx.add_document("cross site scripting in the web interface");
        idx
    }

    #[test]
    fn document_frequency_counts_documents_not_occurrences() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel kernel kernel");
        idx.add_document("kernel");
        assert_eq!(idx.document_frequency("kernel"), 2);
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let idx = sample();
        assert!(idx.idf("overflow") > idx.idf("kernel"));
        assert_eq!(idx.idf("ghost"), 0.0);
    }

    #[test]
    fn documents_are_normalized_terms_are_verbatim() {
        let idx = sample();
        // Documents were stemmed: "scripting" → "script".
        assert_eq!(idx.document_frequency("script"), 1);
        assert_eq!(idx.document_frequency("scripting"), 0);
    }

    #[test]
    fn term_matches_weight_repeats_sublinearly() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel kernel");
        idx.add_document("other text entirely");
        let matches = idx.term_matches("kernel", ScoringModel::TfIdf);
        assert_eq!(matches.len(), 1);
        // Normalized weight: (1 + ln 2) * idf / sqrt(2).
        let expected = (1.0 + 2.0f64.ln()) * idx.idf("kernel") / 2.0f64.sqrt();
        assert!((matches[0].weight - expected).abs() < 1e-12);
    }

    #[test]
    fn bm25_weights_saturate_with_term_frequency() {
        let mut idx = InvertedIndex::new();
        idx.add_document("kernel");
        idx.add_document("kernel kernel kernel kernel kernel");
        idx.add_document("other words here");
        let matches = idx.term_matches("kernel", ScoringModel::Bm25);
        assert_eq!(matches.len(), 2);
        // Five occurrences score better than one, but far less than 5x.
        assert!(matches[1].weight > matches[0].weight);
        assert!(matches[1].weight < 3.0 * matches[0].weight);
    }

    #[test]
    fn bm25_idf_differs_from_tfidf_but_reported_idf_is_shared() {
        let idx = sample();
        let tfidf = idx.term_matches("kernel", ScoringModel::TfIdf);
        let bm25 = idx.term_matches("kernel", ScoringModel::Bm25);
        assert_eq!(tfidf.len(), bm25.len());
        for (a, b) in tfidf.iter().zip(bm25.iter()) {
            assert_eq!(a.idf, b.idf, "hit criteria must be model-independent");
        }
    }

    #[test]
    fn average_length_is_safe_on_empty_index() {
        assert_eq!(InvertedIndex::new().average_document_length(), 1.0);
        let mut idx = InvertedIndex::new();
        idx.add_document("two words");
        idx.add_document("four words right here"); // "right"/"here" kept, 4 tokens
        assert_eq!(idx.average_document_length(), 3.0);
    }

    #[test]
    fn lengths_track_token_counts() {
        let idx = sample();
        assert_eq!(idx.document_length(DocId(1)), 3);
        assert_eq!(idx.document_length(DocId(99)), 0);
    }

    #[test]
    fn empty_index_is_well_behaved() {
        let idx = InvertedIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.idf("anything"), 0.0);
        assert!(idx.term_matches("anything", ScoringModel::TfIdf).is_empty());
        assert!(idx.term_matches("anything", ScoringModel::Bm25).is_empty());
    }
}
