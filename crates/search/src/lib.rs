//! CYBOK-style search engine matching system model attributes to attack
//! vector corpora.
//!
//! This crate implements the paper's second capability: "associate attack
//! vector data to the general model". Inputs are a system model (from
//! [`cpssec_model`]) and security data "in the form of natural text" (from
//! [`cpssec_attackdb`]); the output is the association of attack vectors to
//! model elements.
//!
//! The matcher follows the behaviour the paper reports:
//!
//! * high-level descriptions match attack patterns and weaknesses, while
//!   specific product attributes match vulnerabilities;
//! * the result space is large and "highly sensitive to the fidelity of the
//!   model", so filtering ([`FilterPipeline`]) is a first-class operation;
//! * the databases interlink, so matched vulnerabilities can be chained
//!   through weaknesses to attack patterns ([`exploit_chains`]).
//!
//! # Examples
//!
//! ```
//! use cpssec_attackdb::seed::seed_corpus;
//! use cpssec_search::SearchEngine;
//!
//! let corpus = seed_corpus();
//! let engine = SearchEngine::build(&corpus);
//! let matches = engine.match_text("Cisco ASA");
//! assert!(!matches.vulnerabilities.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chains;
pub mod delta;
mod engine;
mod filter;
mod index;
mod score;
pub mod snapshot;
pub mod text;
pub mod view;

pub use chains::{chains_for_weakness, exploit_chains, ExploitChain};
pub use delta::{apply_delta, build as build_delta, compact_verified, inspect_delta, DeltaInfo};
pub use engine::{Hit, MatchConfig, MatchSet, QueryScratch, SearchEngine};
pub use filter::{Filter, FilterPipeline};
pub use index::{DocId, InvertedIndex};
pub use score::{expand_query, ScoringModel, UnknownScoringModel};
pub use view::{CorpusView, SnapshotView, ViewEngine};
