//! The `.cpsdelta` sidecar: incremental corpus/index growth without a
//! full rebuild.
//!
//! A delta carries a *batch* of new records plus their pre-tokenized term
//! runs, chained to a specific parent state by id. Applying it appends the
//! records to the corpus and the runs to the three family indices
//! ([`InvertedIndex::append_document_runs`]), then re-freezes — every IDF
//! and weight recomputes from raw term frequencies exactly as a
//! from-scratch build would, so the grown engine is *bit-identical* to one
//! rebuilt over the merged corpus. Combined with the append-only id floor
//! (new ids must exceed every existing id, keeping `BTreeMap` id order
//! equal to append order) and the sorted-term snapshot encoding
//! (independent of term-id numbering), this yields the compaction
//! guarantee: [`compact_verified`] proves the re-encoded base snapshot is
//! byte-identical to rebuild-from-scratch at every compaction point.
//!
//! # Layout (delta version 1)
//!
//! ```text
//! magic             "CPSDLT"                 6 bytes
//! version           u16 LE                   2 bytes
//! parent_id         u64 LE                   8 bytes
//! payload_checksum  u64 LE (wide FNV)        8 bytes
//! payload:
//!   batch           record batch (corpus wire format, three families)
//!   runs × 3        per family, per record in id order:
//!                     token_count u32, run_count u32,
//!                     run_count × { term str, tf u32 }
//! ```
//!
//! `parent_id` is either a base snapshot's `snapshot_id` or the
//! [`chain_id`] of a previously applied delta — a hash chain, so a delta
//! can never be applied out of order or to the wrong base.
//!
//! [`InvertedIndex::append_document_runs`]: crate::index::InvertedIndex

use cpssec_attackdb::snapshot as record_wire;
use cpssec_attackdb::snapshot::{put_str, put_u16, put_u32, put_u64, Reader};
use cpssec_attackdb::{AttackPattern, Corpus, Vulnerability, Weakness};
use cpssec_model::fnv1a_64_wide;

use crate::snapshot::{encode, SnapshotError};
use crate::text::tokenize;
use crate::SearchEngine;

/// The six magic bytes every `.cpsdelta` file starts with.
pub const DELTA_MAGIC: [u8; 6] = *b"CPSDLT";

/// The delta format version this build writes and reads.
pub const DELTA_VERSION: u16 = 1;

/// The state id reached by applying a delta: a hash chain over the parent
/// id and the delta's payload checksum. Deterministic, order-sensitive,
/// and collision-resistant enough to catch any mis-sequenced apply.
#[must_use]
pub fn chain_id(parent_id: u64, payload_checksum: u64) -> u64 {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(&parent_id.to_le_bytes());
    buf[8..].copy_from_slice(&payload_checksum.to_le_bytes());
    fnv1a_64_wide(&buf)
}

/// Header-level description of a delta, plus its record counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaInfo {
    /// Delta format version.
    pub version: u16,
    /// The state this delta chains onto (snapshot id or prior chain id).
    pub parent_id: u64,
    /// Wide-FNV checksum of the payload.
    pub payload_checksum: u64,
    /// The state id after applying this delta: [`chain_id`] of the two
    /// fields above.
    pub child_id: u64,
    /// New attack patterns in the batch.
    pub patterns: usize,
    /// New weaknesses in the batch.
    pub weaknesses: usize,
    /// New vulnerabilities in the batch.
    pub vulnerabilities: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl DeltaInfo {
    /// Total records in the batch.
    #[must_use]
    pub fn records(&self) -> usize {
        self.patterns + self.weaknesses + self.vulnerabilities
    }
}

/// One document's pre-tokenized term runs, in first-occurrence order.
struct DocRuns {
    token_count: u32,
    runs: Vec<(String, u32)>,
}

/// Tokenizes `text` into `(token_count, first-occurrence runs)` — the
/// exact shape [`crate::index::InvertedIndex::append_document_runs`]
/// consumes to replicate `add_document` byte-for-byte.
fn token_runs(text: &str) -> DocRuns {
    let tokens = tokenize(text);
    let token_count = tokens.len() as u32;
    let mut runs: Vec<(String, u32)> = Vec::new();
    for token in tokens {
        match runs.iter_mut().find(|(t, _)| *t == token) {
            Some((_, tf)) => *tf += 1,
            None => runs.push((token, 1)),
        }
    }
    DocRuns { token_count, runs }
}

fn put_doc_runs(out: &mut Vec<u8>, doc: &DocRuns) {
    put_u32(out, doc.token_count);
    put_u32(out, u32::try_from(doc.runs.len()).expect("runs fit u32"));
    for (term, tf) in &doc.runs {
        put_str(out, term);
        put_u32(out, *tf);
    }
}

/// Serializes a `.cpsdelta` chaining `batch` onto `parent_id`.
///
/// The batch is tokenized here, at build time — apply never re-tokenizes,
/// it replays the stored runs. Raw `(term, tf)` runs (not weights) ship on
/// the wire because every IDF depends on the post-apply document count;
/// re-freezing after apply recomputes all weights bit-identically to a
/// from-scratch build.
#[must_use]
pub fn build(parent_id: u64, batch: &Corpus) -> Vec<u8> {
    let mut payload = Vec::new();
    record_wire::encode_corpus_into(batch, &mut payload);
    for pattern in batch.patterns() {
        put_doc_runs(&mut payload, &token_runs(&pattern.search_text()));
    }
    for weakness in batch.weaknesses() {
        put_doc_runs(&mut payload, &token_runs(&weakness.search_text()));
    }
    for vulnerability in batch.vulnerabilities() {
        put_doc_runs(&mut payload, &token_runs(&vulnerability.search_text()));
    }
    let mut out = Vec::with_capacity(DELTA_MAGIC.len() + 18 + payload.len());
    out.extend_from_slice(&DELTA_MAGIC);
    put_u16(&mut out, DELTA_VERSION);
    put_u64(&mut out, parent_id);
    put_u64(&mut out, fnv1a_64_wide(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Fully parsed delta: info plus the batch records and their runs, each
/// family's vectors aligned index-for-index.
struct ParsedDelta {
    info: DeltaInfo,
    patterns: Vec<AttackPattern>,
    weaknesses: Vec<Weakness>,
    vulnerabilities: Vec<Vulnerability>,
    pattern_runs: Vec<DocRuns>,
    weakness_runs: Vec<DocRuns>,
    vulnerability_runs: Vec<DocRuns>,
}

fn read_doc_runs(r: &mut Reader<'_>, count: usize) -> Result<Vec<DocRuns>, SnapshotError> {
    let mut docs = Vec::with_capacity(count.min(r.remaining() / 8 + 1));
    for _ in 0..count {
        let token_count = r.u32()?;
        let run_count = r.u32()?;
        let mut runs = Vec::with_capacity(r.capacity_for(run_count, 8));
        for _ in 0..run_count {
            let term = r.str()?.to_owned();
            let tf = r.u32()?;
            runs.push((term, tf));
        }
        docs.push(DocRuns { token_count, runs });
    }
    Ok(docs)
}

fn parse(bytes: &[u8]) -> Result<ParsedDelta, SnapshotError> {
    if bytes.len() < DELTA_MAGIC.len() {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..DELTA_MAGIC.len()] != DELTA_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut r = Reader::new(&bytes[DELTA_MAGIC.len()..]);
    let version = r.u16()?;
    if version != DELTA_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let parent_id = r.u64()?;
    let payload_checksum = r.u64()?;
    let payload = r.take(r.remaining())?;
    if fnv1a_64_wide(payload) != payload_checksum {
        return Err(SnapshotError::ChecksumMismatch("delta payload"));
    }
    // Decoding through a `Corpus` enforces strictly-ascending unique ids
    // within the batch; the per-family vectors come back out in id order.
    let mut pr = Reader::new(payload);
    let batch = record_wire::decode_corpus_from(&mut pr)?;
    let patterns: Vec<AttackPattern> = batch.patterns().cloned().collect();
    let weaknesses: Vec<Weakness> = batch.weaknesses().cloned().collect();
    let vulnerabilities: Vec<Vulnerability> = batch.vulnerabilities().cloned().collect();
    let pattern_runs = read_doc_runs(&mut pr, patterns.len())?;
    let weakness_runs = read_doc_runs(&mut pr, weaknesses.len())?;
    let vulnerability_runs = read_doc_runs(&mut pr, vulnerabilities.len())?;
    if !pr.finished() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing byte(s) after the run table",
            pr.remaining()
        )));
    }
    let info = DeltaInfo {
        version,
        parent_id,
        payload_checksum,
        child_id: chain_id(parent_id, payload_checksum),
        patterns: patterns.len(),
        weaknesses: weaknesses.len(),
        vulnerabilities: vulnerabilities.len(),
        payload_len: payload.len(),
    };
    Ok(ParsedDelta {
        info,
        patterns,
        weaknesses,
        vulnerabilities,
        pattern_runs,
        weakness_runs,
        vulnerability_runs,
    })
}

/// Parses and validates a delta (header, checksum, batch structure)
/// without applying it — the cheap precheck for servers and `inspect`.
///
/// # Errors
///
/// Truncation, bad magic, unsupported version, payload checksum mismatch,
/// or a structurally corrupt batch.
pub fn inspect_delta(bytes: &[u8]) -> Result<DeltaInfo, SnapshotError> {
    parse(bytes).map(|p| p.info)
}

/// Applies a delta to an owned corpus + engine pair in place.
///
/// Verifies the chain (`parent_id` must equal `expected_parent`), enforces
/// the append-only id floor (every batch id must exceed every existing id
/// of its family — the invariant that keeps compaction byte-identical to
/// rebuild), appends records and index runs, and re-freezes the three
/// family indices so weight recomputation lands here, not on the next
/// query. Cost is *O(batch)*, not *O(corpus)*.
///
/// On error the pair may be partially modified and must be discarded:
/// apply to clones and swap on success (what the server and CLI do).
///
/// # Errors
///
/// Any parse error from [`inspect_delta`]; [`SnapshotError::Corrupt`] on
/// a parent-chain mismatch (message names both ids) or an id-floor
/// violation.
pub fn apply_delta(
    corpus: &mut Corpus,
    engine: &mut SearchEngine,
    bytes: &[u8],
    expected_parent: u64,
) -> Result<DeltaInfo, SnapshotError> {
    let mut span = cpssec_obs::span!("delta-apply");
    let parsed = parse(bytes)?;
    if parsed.info.parent_id != expected_parent {
        return Err(SnapshotError::Corrupt(format!(
            "delta parent {:016x} does not match the current state {:016x}",
            parsed.info.parent_id, expected_parent
        )));
    }
    let floor_err = |family: &str| {
        SnapshotError::Corrupt(format!(
            "delta `{family}` batch violates the append-only id floor"
        ))
    };
    if let (Some(first), Some(last)) = (parsed.patterns.first(), corpus.last_pattern_id()) {
        if first.id() <= last {
            return Err(floor_err("patterns"));
        }
    }
    if let (Some(first), Some(last)) = (parsed.weaknesses.first(), corpus.last_weakness_id()) {
        if first.id() <= last {
            return Err(floor_err("weaknesses"));
        }
    }
    if let (Some(first), Some(last)) = (
        parsed.vulnerabilities.first(),
        corpus.last_vulnerability_id(),
    ) {
        if first.id() <= last {
            return Err(floor_err("vulnerabilities"));
        }
    }
    span.add_items(parsed.info.records() as u64);

    let dup = |e: cpssec_attackdb::AttackDbError| SnapshotError::Corrupt(e.to_string());
    let ((p_index, p_ids), (w_index, w_ids), (v_index, v_ids)) = engine.parts_mut();
    for (record, doc) in parsed.patterns.into_iter().zip(&parsed.pattern_runs) {
        let refs: Vec<(&str, u32)> = doc.runs.iter().map(|(t, tf)| (t.as_str(), *tf)).collect();
        p_index.append_document_runs(doc.token_count, &refs)?;
        p_ids.push(record.id());
        corpus.add_pattern(record).map_err(dup)?;
    }
    for (record, doc) in parsed.weaknesses.into_iter().zip(&parsed.weakness_runs) {
        let refs: Vec<(&str, u32)> = doc.runs.iter().map(|(t, tf)| (t.as_str(), *tf)).collect();
        w_index.append_document_runs(doc.token_count, &refs)?;
        w_ids.push(record.id());
        corpus.add_weakness(record).map_err(dup)?;
    }
    for (record, doc) in parsed
        .vulnerabilities
        .into_iter()
        .zip(&parsed.vulnerability_runs)
    {
        let refs: Vec<(&str, u32)> = doc.runs.iter().map(|(t, tf)| (t.as_str(), *tf)).collect();
        v_index.append_document_runs(doc.token_count, &refs)?;
        v_ids.push(record.id());
        corpus.add_vulnerability(record).map_err(dup)?;
    }
    p_index.freeze();
    w_index.freeze();
    v_index.freeze();
    Ok(parsed.info)
}

/// Compacts a delta-grown state into a new base snapshot, **proving** the
/// equivalence invariant on the way: the encoded bytes must be identical
/// to encoding a from-scratch rebuild over the same corpus. The proof
/// costs one rebuild — paid only at compaction points (every K deltas),
/// never per apply.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] if the grown engine's encoding diverges from
/// the rebuild — which would mean the delta chain broke an invariant and
/// the state must not be persisted.
pub fn compact_verified(corpus: &Corpus, engine: &SearchEngine) -> Result<Vec<u8>, SnapshotError> {
    let _span = cpssec_obs::span!("delta-compact");
    let grown = encode(corpus, engine);
    let rebuilt = SearchEngine::with_config(corpus, engine.config());
    if grown != encode(corpus, &rebuilt) {
        return Err(SnapshotError::Corrupt(
            "compacted snapshot diverges from rebuild-from-scratch".into(),
        ));
    }
    Ok(grown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{decode, inspect};
    use cpssec_attackdb::seed::{seed_corpus, table1_attributes};
    use cpssec_attackdb::{Abstraction, CapecId, CveId, CweId};

    /// A small batch with ids safely above everything in the seed corpus.
    fn batch(serial: u32) -> Corpus {
        let mut b = Corpus::new();
        b.add_pattern(AttackPattern::new(
            CapecId::new(900_000 + serial),
            format!("Flowgate spoofing wave {serial}"),
            "Spoofs the quantumworks flowgate session token",
            Abstraction::Standard,
        ))
        .unwrap();
        b.add_weakness(Weakness::new(
            CweId::new(800_000 + serial),
            format!("Quantumworks gateway weakness {serial}"),
            "Improper validation in the quantumworks flownet gateway firmware",
        ))
        .unwrap();
        for i in 0..3 {
            b.add_vulnerability(Vulnerability::new(
                CveId::new(2030, serial * 1000 + i),
                format!("quantumworks flownet gateway buffer overflow variant {i}"),
            ))
            .unwrap();
        }
        b
    }

    fn base() -> (Corpus, SearchEngine, u64) {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let id = inspect(&encode(&corpus, &engine)).unwrap().snapshot_id;
        (corpus, engine, id)
    }

    #[test]
    fn build_inspect_round_trip() {
        let bytes = build(0xABCD, &batch(1));
        let info = inspect_delta(&bytes).unwrap();
        assert_eq!(info.version, DELTA_VERSION);
        assert_eq!(info.parent_id, 0xABCD);
        assert_eq!(info.patterns, 1);
        assert_eq!(info.weaknesses, 1);
        assert_eq!(info.vulnerabilities, 3);
        assert_eq!(info.records(), 5);
        assert_eq!(info.child_id, chain_id(0xABCD, info.payload_checksum));
        assert_ne!(info.child_id, info.parent_id);
    }

    #[test]
    fn apply_grows_state_bit_identical_to_rebuild() {
        let (mut corpus, mut engine, id) = base();
        let info = apply_delta(&mut corpus, &mut engine, &build(id, &batch(1)), id).unwrap();
        assert_eq!(info.records(), 5);

        // The grown engine answers new-record queries...
        let hits = engine.match_text("quantumworks flownet gateway");
        assert!(!hits.is_empty(), "delta records must be queryable");
        // ...and is bit-identical to a from-scratch rebuild on everything.
        let rebuilt = SearchEngine::build(&corpus);
        for query in table1_attributes()
            .iter()
            .copied()
            .chain(["quantumworks flownet gateway"])
        {
            let a = engine.match_text(query);
            let b = rebuilt.match_text(query);
            assert_eq!(a.counts(), b.counts(), "{query}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{query}");
            }
        }
        // Snapshot-level byte equality is the compaction invariant.
        assert_eq!(encode(&corpus, &engine), encode(&corpus, &rebuilt));
    }

    #[test]
    fn chained_deltas_compact_verified_at_every_point() {
        let (mut corpus, mut engine, mut state) = base();
        for serial in 1..=3 {
            let info = apply_delta(
                &mut corpus,
                &mut engine,
                &build(state, &batch(serial)),
                state,
            )
            .unwrap();
            state = info.child_id;
            let compacted = compact_verified(&corpus, &engine).expect("equivalence holds");
            let (c2, _) = decode(&compacted).expect("compacted snapshot decodes");
            assert_eq!(c2, corpus);
        }
    }

    #[test]
    fn wrong_parent_is_rejected_with_both_ids() {
        let (mut corpus, mut engine, id) = base();
        let delta = build(id ^ 1, &batch(1));
        let err = apply_delta(&mut corpus, &mut engine, &delta, id).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("parent"), "{msg}");
        assert!(
            msg.contains(&format!("{:016x}", id ^ 1)) && msg.contains(&format!("{id:016x}")),
            "{msg}"
        );
    }

    #[test]
    fn replaying_a_delta_is_rejected_by_the_chain() {
        let (mut corpus, mut engine, id) = base();
        let delta = build(id, &batch(1));
        let info = apply_delta(&mut corpus, &mut engine, &delta, id).unwrap();
        // Same bytes again: the state id moved, so the chain check fires.
        let err = apply_delta(&mut corpus, &mut engine, &delta, info.child_id).unwrap_err();
        assert!(err.to_string().contains("parent"), "{err}");
    }

    #[test]
    fn id_floor_violation_is_rejected() {
        let (mut corpus, mut engine, id) = base();
        let mut low = Corpus::new();
        // CWE-79 exists in the seed corpus: re-adding ids at or below the
        // floor must fail even though the id itself is not a duplicate key
        // collision until insert time.
        low.add_weakness(Weakness::new(CweId::new(1), "low", "below the floor"))
            .unwrap();
        let err = apply_delta(&mut corpus, &mut engine, &build(id, &low), id).unwrap_err();
        assert!(err.to_string().contains("append-only"), "{err}");
    }

    #[test]
    fn corrupt_delta_bytes_are_rejected() {
        let (_, _, id) = base();
        let bytes = build(id, &batch(1));
        assert_eq!(
            inspect_delta(&bytes[..3]).unwrap_err(),
            SnapshotError::Truncated
        );
        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert_eq!(inspect_delta(&magic).unwrap_err(), SnapshotError::BadMagic);
        let mut version = bytes.clone();
        version[6] = 9;
        assert_eq!(
            inspect_delta(&version).unwrap_err(),
            SnapshotError::UnsupportedVersion(9)
        );
        let mut payload = bytes.clone();
        let last = payload.len() - 1;
        payload[last] ^= 0xFF;
        assert_eq!(
            inspect_delta(&payload).unwrap_err(),
            SnapshotError::ChecksumMismatch("delta payload")
        );
    }

    #[test]
    fn empty_delta_is_a_valid_noop() {
        let (mut corpus, mut engine, id) = base();
        let before = encode(&corpus, &engine);
        let info = apply_delta(&mut corpus, &mut engine, &build(id, &Corpus::new()), id).unwrap();
        assert_eq!(info.records(), 0);
        assert_eq!(encode(&corpus, &engine), before, "state unchanged");
        assert_ne!(info.child_id, id, "but the chain still advances");
    }
}
