//! Scoring models and query expansion.
//!
//! The paper's prototype matches with plain keyword search; this module
//! provides the two standard lexical ranking functions so the choice can
//! be ablated (`cargo bench -p cpssec-bench --bench search_scale`), plus a
//! small domain synonym table: model attributes abbreviate ("OS", "WS",
//! "HMI") where corpus prose spells out, and expansion closes that gap.

use core::fmt;
use core::str::FromStr;

/// The lexical ranking function used for hit scores.
///
/// Both models share the hit *criteria* (distinctive term or corroborating
/// terms — see [`MatchConfig`](crate::MatchConfig)); they differ only in
/// how hits are scored and therefore ranked.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoringModel {
    /// `(1 + ln tf) · ln(N/df)`, normalized by `sqrt(|doc|)`.
    #[default]
    TfIdf,
    /// Okapi BM25 with `k1 = 1.2`, `b = 0.75`.
    Bm25,
}

impl ScoringModel {
    /// All models.
    pub const ALL: [ScoringModel; 2] = [ScoringModel::TfIdf, ScoringModel::Bm25];

    /// Canonical lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ScoringModel::TfIdf => "tfidf",
            ScoringModel::Bm25 => "bm25",
        }
    }
}

impl fmt::Display for ScoringModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ScoringModel {
    type Err = UnknownScoringModel;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScoringModel::ALL
            .iter()
            .copied()
            .find(|m| m.as_str() == s)
            .ok_or_else(|| UnknownScoringModel(s.to_owned()))
    }
}

/// Error parsing a [`ScoringModel`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScoringModel(String);

impl fmt::Display for UnknownScoringModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` is not a scoring model (tfidf, bm25)", self.0)
    }
}

impl std::error::Error for UnknownScoringModel {}

/// BM25 `k1` parameter (term-frequency saturation).
pub(crate) const BM25_K1: f64 = 1.2;
/// BM25 `b` parameter (length normalization).
pub(crate) const BM25_B: f64 = 0.75;

/// Domain synonym table: `(abbreviation, expansions)`. Expansions are
/// already in normalized (stemmed) form so they can be appended directly
/// to a tokenized query.
const SYNONYMS: &[(&str, &[&str])] = &[
    ("os", &["operat", "system"]),
    ("ws", &["workstation"]),
    ("hmi", &["human", "machin", "interfac"]),
    ("plc", &["programmabl", "logic", "controller"]),
    ("rtu", &["remot", "terminal", "unit"]),
    ("sis", &["safety", "instrument", "system"]),
    ("bpcs", &["process", "control", "system"]),
    ("dcs", &["distribut", "control", "system"]),
    ("firewall", &["network", "applianc"]),
];

/// Expands a normalized query term list with domain synonyms.
///
/// Original terms are kept; expansions are appended (deduplicated). The
/// caller deduplicates the final list.
///
/// # Examples
///
/// ```
/// use cpssec_search::expand_query;
/// let expanded = expand_query(&["ni".into(), "rt".into(), "linux".into(), "os".into()]);
/// assert!(expanded.contains(&"operat".to_owned())); // stemmed "operating"
/// assert!(expanded.contains(&"linux".to_owned()));
/// ```
#[must_use]
pub fn expand_query(terms: &[String]) -> Vec<String> {
    let mut out: Vec<String> = terms.to_vec();
    for term in terms {
        if let Some((_, expansions)) = SYNONYMS.iter().find(|(abbr, _)| abbr == term) {
            for expansion in *expansions {
                if !out.iter().any(|t| t == expansion) {
                    out.push((*expansion).to_owned());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_model_names_round_trip() {
        for model in ScoringModel::ALL {
            assert_eq!(model.as_str().parse::<ScoringModel>().unwrap(), model);
        }
        assert!("cosine".parse::<ScoringModel>().is_err());
    }

    #[test]
    fn expansion_keeps_originals_and_deduplicates() {
        let terms = vec!["os".to_owned(), "system".to_owned()];
        let expanded = expand_query(&terms);
        assert_eq!(expanded, ["os", "system", "operat"]);
    }

    #[test]
    fn unknown_terms_pass_through_unchanged() {
        let terms = vec!["labview".to_owned()];
        assert_eq!(expand_query(&terms), ["labview"]);
    }

    #[test]
    fn synonym_expansions_are_normalized_forms() {
        use crate::text::tokenize;
        for (_, expansions) in SYNONYMS {
            for term in *expansions {
                let normalized = tokenize(term);
                assert_eq!(normalized.len(), 1, "{term}");
                assert_eq!(&normalized[0], term, "expansion must be pre-stemmed");
            }
        }
    }

    #[test]
    fn default_model_is_tfidf() {
        assert_eq!(ScoringModel::default(), ScoringModel::TfIdf);
    }
}
