//! Snapshot round-trip properties: `decode(encode(corpus, engine))` must
//! preserve every record, cross-reference, and CVSS vector, and the thawed
//! index must carry bit-identical weights at every experiment scale.
//!
//! Byte-level fixpoint (`encode(decode(bytes)) == bytes`) is the strongest
//! form of the weight check: the encoding stores each idf/tfidf/bm25 value
//! as its raw `f64` bits, so byte equality of two encodings is exactly
//! bit equality of every stored weight, posting, and term.

use cpssec_attackdb::seed::seed_corpus;
use cpssec_attackdb::synth::{generate, SynthSpec};
use cpssec_attackdb::{
    Abstraction, AttackComplexity, AttackPattern, AttackVectorMetric, CapecId, Corpus, CpeName,
    CveId, CvssVector, CweId, Impact, Likelihood, PrivilegesRequired, Scope, Severity,
    UserInteraction, Vulnerability, Weakness,
};
use cpssec_search::{snapshot, SearchEngine};
use proptest::prelude::*;

/// Word pool for synthetic descriptions (includes non-ASCII to exercise
/// string encoding).
const WORDS: &[&str] = &[
    "buffer",
    "overflow",
    "remote",
    "attacker",
    "firmware",
    "plc",
    "scada",
    "injection",
    "café",
    "Ø-ring",
    "modbus",
    "kernel",
];

fn text(indices: &[prop::sample::Index]) -> String {
    indices
        .iter()
        .map(|i| WORDS[i.index(WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

prop_compose! {
    fn arb_cvss()(
        av in 0usize..4, ac in 0usize..2, pr in 0usize..3, ui in 0usize..2,
        s in 0usize..2, c in 0usize..3, i in 0usize..3, a in 0usize..3,
    ) -> CvssVector {
        CvssVector {
            av: [
                AttackVectorMetric::Network,
                AttackVectorMetric::Adjacent,
                AttackVectorMetric::Local,
                AttackVectorMetric::Physical,
            ][av],
            ac: [AttackComplexity::Low, AttackComplexity::High][ac],
            pr: [
                PrivilegesRequired::None,
                PrivilegesRequired::Low,
                PrivilegesRequired::High,
            ][pr],
            ui: [UserInteraction::None, UserInteraction::Required][ui],
            s: [Scope::Unchanged, Scope::Changed][s],
            c: [Impact::None, Impact::Low, Impact::High][c],
            i: [Impact::None, Impact::Low, Impact::High][i],
            a: [Impact::None, Impact::Low, Impact::High][a],
        }
    }
}

/// One synthetic corpus: weaknesses first, then patterns and
/// vulnerabilities whose cross-references point into (and sometimes past)
/// the weakness id range — dangling references are legal in MITRE feeds
/// and must survive the trip too.
#[derive(Debug, Clone)]
struct ArbCorpus(Corpus);

prop_compose! {
    fn arb_corpus()(
        weak_texts in prop::collection::vec(
            prop::collection::vec(any::<prop::sample::Index>(), 1..8), 1..8),
        pattern_specs in prop::collection::vec(
            (
                prop::collection::vec(any::<prop::sample::Index>(), 1..8),
                (any::<bool>(), 0usize..5),
                (any::<bool>(), 0usize..5),
                prop::collection::vec(any::<u32>(), 0..4),
                prop::collection::vec(
                    prop::collection::vec(any::<prop::sample::Index>(), 1..4), 0..3),
            ),
            0..6),
        vuln_specs in prop::collection::vec(
            (
                prop::collection::vec(any::<prop::sample::Index>(), 1..10),
                (any::<bool>(), arb_cvss()),
                prop::collection::vec(any::<u32>(), 0..4),
                prop::collection::vec(
                    (
                        prop::collection::vec(any::<prop::sample::Index>(), 1..3),
                        (any::<bool>(),
                         prop::collection::vec(any::<prop::sample::Index>(), 1..2)),
                    ),
                    0..3),
            ),
            0..10),
    ) -> ArbCorpus {
        let mut corpus = Corpus::new();
        let weak_count = weak_texts.len() as u32;
        for (i, words) in weak_texts.iter().enumerate() {
            let t = text(words);
            corpus
                .add_weakness(
                    Weakness::new(CweId::new(100 + i as u32), &t, &t)
                        .with_platform("ICS")
                        .with_consequence(&t)
                        .with_mitigation(&t),
                )
                .unwrap();
        }
        for (i, (words, likelihood, severity, weak_refs, prereqs)) in
            pattern_specs.iter().enumerate()
        {
            let t = text(words);
            let mut p = AttackPattern::new(
                CapecId::new(500 + i as u32),
                &t,
                &t,
                Abstraction::ALL[i % 3],
            );
            if likelihood.0 {
                p = p.with_likelihood(Likelihood::ALL[likelihood.1]);
            }
            if severity.0 {
                p = p.with_severity(
                    [Severity::None, Severity::Low, Severity::Medium,
                     Severity::High, Severity::Critical][severity.1],
                );
            }
            for r in weak_refs {
                // Half resolve into the weakness range, half dangle.
                p = p.with_weakness(CweId::new(100 + r % (weak_count * 2)));
            }
            for pre in prereqs {
                p = p.with_prerequisite(text(pre));
            }
            corpus.add_pattern(p).unwrap();
        }
        for (i, (words, cvss, weak_refs, cpes)) in vuln_specs.iter().enumerate() {
            let mut v = Vulnerability::new(CveId::new(2031, i as u32 + 1), text(words));
            if cvss.0 {
                v = v.with_cvss(cvss.1);
            }
            for r in weak_refs {
                v = v.with_weakness(CweId::new(100 + r % (weak_count * 2)));
            }
            for (cpe_words, version) in cpes {
                let mut cpe = CpeName::new(text(cpe_words), text(cpe_words));
                if version.0 {
                    cpe = cpe.with_version(text(&version.1));
                }
                v = v.with_affected(cpe);
            }
            corpus.add_vulnerability(v).unwrap();
        }
        ArbCorpus(corpus)
    }
}

proptest! {
    /// Every record, cross-reference, and CVSS vector survives the
    /// snapshot round trip, and re-encoding the decoded pair reproduces
    /// the original bytes.
    #[test]
    fn snapshot_round_trip_preserves_the_corpus(arb in arb_corpus()) {
        let corpus = arb.0;
        let engine = SearchEngine::build(&corpus);
        let bytes = snapshot::encode(&corpus, &engine);
        let (decoded, thawed) = snapshot::decode(&bytes).expect("decode");

        // Corpus equality covers records AND the rebuilt reverse-link
        // index (`Corpus` compares all fields).
        prop_assert_eq!(&decoded, &corpus);

        // Spot-check the pieces the issue calls out explicitly.
        for v in corpus.vulnerabilities() {
            let d = decoded.vulnerability(v.id()).expect("vulnerability survived");
            prop_assert_eq!(d.cvss(), v.cvss(), "CVSS vector for {}", v.id());
            prop_assert_eq!(d.weaknesses(), v.weaknesses());
        }
        for p in corpus.patterns() {
            prop_assert_eq!(
                decoded.pattern(p.id()).expect("pattern survived").related_weaknesses(),
                p.related_weaknesses()
            );
        }
        for w in corpus.weaknesses() {
            prop_assert_eq!(
                decoded.patterns_for_weakness(w.id()),
                corpus.patterns_for_weakness(w.id())
            );
            prop_assert_eq!(
                decoded.vulnerabilities_for_weakness(w.id()),
                corpus.vulnerabilities_for_weakness(w.id())
            );
        }

        prop_assert_eq!(
            snapshot::encode(&decoded, &thawed),
            bytes,
            "decode → encode must be the identity"
        );
    }
}

/// At all three E7b scales, the engine thawed from a snapshot carries
/// weights bit-identical to a freshly built one: their encodings (raw
/// `f64` bits of every idf/tfidf/bm25 value) are byte-equal.
#[test]
fn thawed_weights_are_bit_identical_at_all_e7b_scales() {
    for scale in [0.02, 0.1, 0.3] {
        let mut corpus = seed_corpus();
        corpus
            .merge(generate(&SynthSpec::paper2020(2020, scale)))
            .expect("disjoint id spaces");
        let fresh = SearchEngine::build(&corpus);
        let bytes = snapshot::encode(&corpus, &fresh);
        let (decoded, thawed) = snapshot::decode(&bytes).expect("decode");
        assert_eq!(
            snapshot::encode(&decoded, &thawed),
            bytes,
            "scale {scale}: thawed encoding diverged from fresh"
        );
    }
}
