//! Property tests pinning the interned hot path to a naive reference
//! scorer, and the parallel fan-out to the sequential path.
//!
//! The interned engine precomputes per-posting weights at freeze time and
//! accumulates scores through a dense scratch table; the reference below
//! recomputes everything from raw record text on every query, straight from
//! the formulas in the module docs. Identical hit sets with scores within
//! 1e-9 means the rewrite changed the mechanics, not the model.

use std::collections::BTreeMap;

use cpssec_attackdb::{AttackVectorId, Corpus, CveId, CweId, Vulnerability, Weakness};
use cpssec_model::{
    Attribute, AttributeKind, ChannelKind, ComponentKind, Fidelity, SystemModel, SystemModelBuilder,
};
use cpssec_search::text::tokenize;
use cpssec_search::{expand_query, MatchConfig, ScoringModel, SearchEngine};
use proptest::prelude::*;

/// Security-prose vocabulary with inflection families (exercising the
/// stemmer's conflation), rare product tokens (exercising the IDF floor),
/// and common glue words (exercising the min-terms corroboration rule).
const POOL: &[&str] = &[
    "buffer",
    "overflow",
    "overflows",
    "kernel",
    "remote",
    "attacker",
    "attackers",
    "crafted",
    "parse",
    "parses",
    "parsing",
    "route",
    "routes",
    "routing",
    "execute",
    "executes",
    "executing",
    "command",
    "commands",
    "injection",
    "windows",
    "linux",
    "firmware",
    "labview",
    "scada",
    "modbus",
    "plc",
    "hmi",
    "os",
    "denial",
    "service",
    "services",
    "memory",
    "corruption",
    "embedded",
    "embeds",
    "authentication",
    "bypass",
    "crio9063",
    "asa5506",
];

const BM25_K1: f64 = 1.2;
const BM25_B: f64 = 0.75;

/// One reference-scored document.
#[derive(Debug, Clone, Copy)]
struct RefHit {
    score: f64,
    matched: usize,
}

/// Scores every document of one family exactly as documented: tokenize,
/// per-term `idf = ln(N/df)`, per-model normalized weights, hit criteria
/// `max_idf >= idf_floor || matched >= min_terms`, then `min_score`.
fn reference_hits(doc_texts: &[String], query: &str, config: MatchConfig) -> Vec<Option<RefHit>> {
    let docs: Vec<Vec<String>> = doc_texts.iter().map(|t| tokenize(t)).collect();
    let n = docs.len() as f64;
    let avg = {
        let total: usize = docs.iter().map(Vec::len).sum();
        if docs.is_empty() {
            1.0
        } else {
            (total as f64 / n).max(1.0)
        }
    };
    let df = |term: &str| docs.iter().filter(|d| d.iter().any(|t| t == term)).count();

    let mut terms = tokenize(query);
    terms.sort_unstable();
    terms.dedup();
    let extras: Vec<String> = if config.expand_synonyms {
        expand_query(&terms)
            .into_iter()
            .filter(|t| !terms.contains(t))
            .collect()
    } else {
        Vec::new()
    };

    let weight = |term: &str, doc: &[String]| -> Option<f64> {
        let tf = doc.iter().filter(|t| *t == term).count();
        if tf == 0 {
            return None;
        }
        let df = df(term) as f64;
        Some(match config.scoring {
            ScoringModel::TfIdf => {
                let idf = (n / df).ln();
                (1.0 + (tf as f64).ln()) * idf / (doc.len() as f64).max(1.0).sqrt()
            }
            ScoringModel::Bm25 => {
                let bm25_idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                let tf = tf as f64;
                let len = doc.len() as f64;
                bm25_idf * (tf * (BM25_K1 + 1.0))
                    / (tf + BM25_K1 * (1.0 - BM25_B + BM25_B * len / avg))
            }
        })
    };

    docs.iter()
        .map(|doc| {
            let mut score = 0.0;
            let mut matched = 0;
            let mut max_idf = 0.0f64;
            for term in &terms {
                if let Some(w) = weight(term, doc) {
                    score += w;
                    matched += 1;
                    let idf = (n / df(term) as f64).ln();
                    if idf > max_idf {
                        max_idf = idf;
                    }
                }
            }
            if matched == 0 {
                return None;
            }
            for term in &extras {
                if let Some(w) = weight(term, doc) {
                    score += w;
                }
            }
            let is_hit = (max_idf >= config.idf_floor || matched >= config.min_terms)
                && score >= config.min_score;
            is_hit.then_some(RefHit { score, matched })
        })
        .collect()
}

fn sentence(indices: &[prop::sample::Index]) -> String {
    indices
        .iter()
        .map(|i| POOL[i.index(POOL.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

fn corpus_from(vuln_texts: &[String], weak_texts: &[String]) -> Corpus {
    let mut corpus = Corpus::new();
    for (i, text) in vuln_texts.iter().enumerate() {
        corpus
            .add_vulnerability(Vulnerability::new(CveId::new(2099, i as u32 + 1), text))
            .expect("unique synthetic CVE id");
    }
    for (i, text) in weak_texts.iter().enumerate() {
        corpus
            .add_weakness(Weakness::new(CweId::new(9000 + i as u32), text, text))
            .expect("unique synthetic CWE id");
    }
    corpus
}

prop_compose! {
    fn arb_config()(
        model_is_bm25 in any::<bool>(),
        expand in any::<bool>(),
        min_terms in 1usize..4,
        floor_choice in 0u8..3,
    ) -> MatchConfig {
        MatchConfig {
            idf_floor: [0.8, 1.8, 3.5][floor_choice as usize],
            min_terms,
            min_score: 0.0,
            scoring: if model_is_bm25 { ScoringModel::Bm25 } else { ScoringModel::TfIdf },
            expand_synonyms: expand,
            max_hits: None,
        }
    }
}

proptest! {
    /// The interned engine and the naive reference agree on the hit set
    /// and, within 1e-9, on every score, for both scoring models.
    #[test]
    fn interned_engine_matches_naive_reference(
        vuln_sentences in prop::collection::vec(
            prop::collection::vec(any::<prop::sample::Index>(), 2..12), 2..25),
        query_words in prop::collection::vec(any::<prop::sample::Index>(), 1..6),
        config in arb_config(),
    ) {
        let vuln_texts: Vec<String> = vuln_sentences.iter().map(|s| sentence(s)).collect();
        let corpus = corpus_from(&vuln_texts, &[]);
        let engine = SearchEngine::with_config(&corpus, config);
        let query = sentence(&query_words);

        let hits = engine.match_text_with(&query, &mut cpssec_search::QueryScratch::new());
        prop_assert!(hits.patterns.is_empty());
        prop_assert!(hits.weaknesses.is_empty());

        // Engine hits keyed by CVE id; reference indexed by insertion order,
        // which is exactly the synthetic CVE numbering.
        let mut engine_hits: BTreeMap<u32, (f64, usize)> = BTreeMap::new();
        for h in &hits.vulnerabilities {
            let AttackVectorId::Vulnerability(cve) = h.id else {
                panic!("vulnerability family returned {:?}", h.id);
            };
            let num: u32 = cve.to_string().rsplit('-').next().unwrap().parse().unwrap();
            engine_hits.insert(num, (h.score, h.matched_terms));
        }
        let reference = reference_hits(&vuln_texts, &query, config);
        for (i, expected) in reference.iter().enumerate() {
            let num = i as u32 + 1;
            match expected {
                Some(r) => {
                    let (score, matched) = engine_hits.remove(&num).unwrap_or_else(|| {
                        panic!("reference hit CVE-2099-{num} missing from engine (query {query:?})")
                    });
                    prop_assert!(
                        (score - r.score).abs() <= 1e-9,
                        "score mismatch on CVE-2099-{num}: engine {score} vs reference {}",
                        r.score
                    );
                    prop_assert_eq!(matched, r.matched);
                }
                None => prop_assert!(
                    !engine_hits.contains_key(&num),
                    "engine hit CVE-2099-{} that the reference rejects", num
                ),
            }
        }
        prop_assert!(engine_hits.is_empty(), "engine produced unknown hits: {engine_hits:?}");
    }

    /// The parallel fan-outs return exactly the sequential results — same
    /// order, same scores, bit for bit.
    #[test]
    fn parallel_fan_out_equals_sequential(
        vuln_sentences in prop::collection::vec(
            prop::collection::vec(any::<prop::sample::Index>(), 2..10), 5..20),
        weak_sentences in prop::collection::vec(
            prop::collection::vec(any::<prop::sample::Index>(), 2..10), 0..6),
        component_sentences in prop::collection::vec(
            prop::collection::vec(any::<prop::sample::Index>(), 1..6), 1..9),
        channel_ends in prop::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..6),
    ) {
        let vuln_texts: Vec<String> = vuln_sentences.iter().map(|s| sentence(s)).collect();
        let weak_texts: Vec<String> = weak_sentences.iter().map(|s| sentence(s)).collect();
        let corpus = corpus_from(&vuln_texts, &weak_texts);
        let engine = SearchEngine::build(&corpus);
        let model = arb_model(&component_sentences, &channel_ends);

        for level in [Fidelity::Conceptual, Fidelity::Architectural, Fidelity::Implementation] {
            prop_assert_eq!(
                engine.par_match_model(&model, level),
                engine.match_model(&model, level)
            );
            let par_channels = engine.par_match_channels(&model, level);
            prop_assert_eq!(par_channels.len(), model.channel_count());
            for (id, set) in &par_channels {
                let (_, channel) = model
                    .channels()
                    .find(|(cid, _)| cid == id)
                    .expect("channel id from this model");
                prop_assert_eq!(set, &engine.match_channel(channel, level));
            }
        }
    }
}

/// Builds a model with one component per sentence and channels between
/// index-chosen component pairs (self-loops skipped).
fn arb_model(
    component_sentences: &[Vec<prop::sample::Index>],
    channel_ends: &[(prop::sample::Index, prop::sample::Index)],
) -> SystemModel {
    let names: Vec<String> = (0..component_sentences.len())
        .map(|i| format!("component-{i}"))
        .collect();
    let mut builder = SystemModelBuilder::new("equivalence");
    for (name, words) in names.iter().zip(component_sentences) {
        builder = builder.component(name, ComponentKind::Other).attribute(
            name,
            Attribute::new(AttributeKind::Product, sentence(words))
                .at_fidelity(Fidelity::Implementation),
        );
    }
    for (a, b) in channel_ends {
        let from = &names[a.index(names.len())];
        let to = &names[b.index(names.len())];
        if from != to {
            builder = builder.channel(from, to, ChannelKind::Ethernet);
        }
    }
    builder.build().expect("valid synthetic model")
}
