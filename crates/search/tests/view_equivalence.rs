//! The zero-copy proof: every query answered by a [`ViewEngine`] reading
//! postings straight out of the mapped snapshot bytes must be
//! *byte-identical* to the same query on the owned, decoded
//! [`SearchEngine`] — same hits, same order, same `f64` score bits.
//!
//! Covered here: arbitrary queries under arbitrary configs (proptest),
//! the three E7b corpus scales, and the delta chain — after 1, 3, and K
//! applies, plus one verified compaction.

use std::sync::{Arc, OnceLock};

use cpssec_attackdb::seed::seed_corpus;
use cpssec_attackdb::synth::{delta_batch, stream_into, SynthSpec, DELTA_MENTION};
use cpssec_attackdb::Corpus;
use cpssec_search::{
    apply_delta, build_delta, compact_verified, snapshot, view, MatchConfig, ScoringModel,
    SearchEngine, ViewEngine,
};
use proptest::prelude::*;

/// Query vocabulary: corpus-shaped terms, synonyms-eligible terms, the
/// delta batch's unique mention, non-ASCII, and guaranteed misses.
const WORDS: &[&str] = &[
    "buffer",
    "overflow",
    "remote",
    "code",
    "execution",
    "firmware",
    "plc",
    "scada",
    "modbus",
    "injection",
    "windows",
    "gateway",
    "historian",
    "authentication",
    "café",
    "Quantumworks",
    "FlowNet",
    "zzz-never-indexed",
];

/// Deterministic query set for the scale/delta sweeps.
const QUERIES: &[&str] = &[
    "Microsoft Windows 7 remote code execution",
    "plc firmware modbus injection",
    "buffer overflow in the scada gateway",
    "historian database authentication bypass",
    "Quantumworks FlowNet gateway",
    "zzz-never-indexed",
    "",
];

fn corpus_at(scale: f64) -> Corpus {
    let mut corpus = seed_corpus();
    stream_into(&mut corpus, &SynthSpec::paper2020(2020, scale)).expect("disjoint id spaces");
    corpus
}

/// Asserts that `bytes` answers every query in `queries` identically
/// through the borrowed view and the owned decode, under `config`.
fn assert_equivalent(bytes: &[u8], config: MatchConfig, queries: &[String], label: &str) {
    let mapped: Arc<[u8]> = bytes.to_vec().into();
    let viewed = ViewEngine::with_config(view::open_verified(mapped).expect("open view"), config);
    let (_, owned) = snapshot::decode_with_config(bytes, config).expect("decode");
    for query in queries {
        assert_eq!(
            viewed.match_text(query),
            owned.match_text(query),
            "{label}: view and owned disagree on {query:?}"
        );
    }
}

/// The small base snapshot the proptest queries against, built once.
fn base_bytes() -> &'static Vec<u8> {
    static BASE: OnceLock<Vec<u8>> = OnceLock::new();
    BASE.get_or_init(|| {
        let corpus = corpus_at(0.02);
        let engine = SearchEngine::build(&corpus);
        snapshot::encode(&corpus, &engine)
    })
}

proptest! {
    /// Any query, either scoring model, synonyms on or off: the view's
    /// MatchSet equals the owned engine's, score bits included.
    #[test]
    fn any_query_is_byte_identical_on_the_view(
        words in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
        bm25 in any::<bool>(),
        expand in any::<bool>(),
    ) {
        let query = words
            .iter()
            .map(|i| WORDS[i.index(WORDS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let config = MatchConfig {
            scoring: if bm25 { ScoringModel::Bm25 } else { ScoringModel::TfIdf },
            expand_synonyms: expand,
            ..MatchConfig::default()
        };
        assert_equivalent(base_bytes(), config, &[query], "proptest");
    }
}

/// Scales 0.02 / 0.1 / 0.3 (the E7b ladder up to the paper-shaped 11k
/// corpus): both scoring models agree between view and owned.
#[test]
fn view_matches_owned_across_scales() {
    let queries: Vec<String> = QUERIES.iter().map(|q| (*q).to_owned()).collect();
    for scale in [0.02, 0.1, 0.3] {
        let corpus = corpus_at(scale);
        let engine = SearchEngine::build(&corpus);
        let bytes = snapshot::encode(&corpus, &engine);
        for scoring in [ScoringModel::TfIdf, ScoringModel::Bm25] {
            let config = MatchConfig {
                scoring,
                ..MatchConfig::default()
            };
            assert_equivalent(
                &bytes,
                config,
                &queries,
                &format!("scale {scale} {scoring:?}"),
            );
        }
    }
}

/// Grows the owned pair through K = 4 delta applies, re-encoding at the
/// 1-, 3-, and K-apply checkpoints: each intermediate snapshot answers
/// identically through view and owned, the delta's unique mention term
/// becomes reachable, and the final verified compaction is the same
/// bytes the canonical encoder produces.
#[test]
fn view_matches_owned_after_delta_applies_and_compaction() {
    const K: u32 = 4;
    let queries: Vec<String> = QUERIES.iter().map(|q| (*q).to_owned()).collect();
    let mut corpus = corpus_at(0.02);
    let mut engine = SearchEngine::build(&corpus);
    let bytes = snapshot::encode(&corpus, &engine);
    let mut state = snapshot::inspect(&bytes).expect("inspect").snapshot_id;

    for serial in 0..K {
        let batch = delta_batch(99, 120, serial);
        let delta = build_delta(state, &batch);
        let info = apply_delta(&mut corpus, &mut engine, &delta, state).expect("apply");
        state = info.child_id;
        let applies = serial + 1;
        if applies == 1 || applies == 3 || applies == K {
            let grown = snapshot::encode(&corpus, &engine);
            for scoring in [ScoringModel::TfIdf, ScoringModel::Bm25] {
                let config = MatchConfig {
                    scoring,
                    ..MatchConfig::default()
                };
                assert_equivalent(
                    &grown,
                    config,
                    &queries,
                    &format!("after {applies} delta applies, {scoring:?}"),
                );
            }
            // The appended records are genuinely query-reachable on the
            // borrowed side, not just equal-by-both-missing.
            let mapped: Arc<[u8]> = grown.into();
            let viewed = ViewEngine::new(view::open_verified(mapped).expect("open view"));
            assert!(
                !viewed.match_text(DELTA_MENTION).vulnerabilities.is_empty(),
                "after {applies} applies: delta mention not reachable from the view"
            );
        }
    }

    let compacted = compact_verified(&corpus, &engine).expect("compaction equivalence");
    assert_eq!(
        compacted,
        snapshot::encode(&corpus, &engine),
        "compaction must emit the canonical encoding"
    );
    let rebuilt = SearchEngine::build(&corpus);
    assert_eq!(
        compacted,
        snapshot::encode(&corpus, &rebuilt),
        "delta-grown engine must encode identically to rebuild-from-scratch"
    );
}
