//! Coverage sweep over the filter combinators and exploit-chain traversal
//! on a hand-built six-record corpus, where every link (and missing link)
//! is known exactly — unlike the seed-corpus unit tests, nothing here
//! depends on what the tokenizer happens to match.
//!
//! The corpus:
//!
//! ```text
//! CAPEC-100 (Meta, High)     -> CWE-77
//! CAPEC-200 (Standard, Med)  -> CWE-77, CWE-912   (the "cycle" edge)
//! CWE-77, CWE-912
//! CVE-2021-1000 (CVSS 9.8)   -> CWE-77, CWE-912   (closes the cycle)
//! CVE-2021-2000 (no CVSS)    -> (no weakness links)
//! ```
//!
//! The bipartite link graph contains the cycle
//! CVE-1000 – CWE-77 – CAPEC-200 – CWE-912 – CVE-1000; chain traversal
//! must terminate and deduplicate across it.

use std::str::FromStr;

use cpssec_attackdb::{
    Abstraction, AttackPattern, AttackVectorId, CapecId, Corpus, CveId, CvssVector, CweId,
    Severity, Vulnerability, Weakness,
};
use cpssec_search::{
    chains_for_weakness, exploit_chains, ExploitChain, Filter, FilterPipeline, Hit, MatchSet,
};

const CRITICAL: &str = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H";

fn capec(n: u32) -> CapecId {
    CapecId::new(n)
}

fn cwe(n: u32) -> CweId {
    CweId::new(n)
}

fn cve(n: u32) -> CveId {
    CveId::new(2021, n)
}

/// The six-record corpus described in the module docs.
fn tiny_corpus() -> Corpus {
    let mut corpus = Corpus::new();
    corpus
        .add_pattern(
            AttackPattern::new(
                capec(100),
                "Command Injection",
                "inject commands into a shell interpreter",
                Abstraction::Meta,
            )
            .with_severity(Severity::High)
            .with_weakness(cwe(77)),
        )
        .unwrap();
    corpus
        .add_pattern(
            AttackPattern::new(
                capec(200),
                "Malicious Firmware Update",
                "plant hidden functionality through a firmware update",
                Abstraction::Standard,
            )
            .with_severity(Severity::Medium)
            .with_weakness(cwe(77))
            .with_weakness(cwe(912)),
        )
        .unwrap();
    corpus
        .add_weakness(Weakness::new(
            cwe(77),
            "Command Injection",
            "improper neutralization of special elements in a command",
        ))
        .unwrap();
    corpus
        .add_weakness(Weakness::new(
            cwe(912),
            "Hidden Functionality",
            "functionality not documented and not accessible to users",
        ))
        .unwrap();
    corpus
        .add_vulnerability(
            Vulnerability::new(cve(1000), "remote command injection in the controller")
                .with_cvss(CvssVector::from_str(CRITICAL).unwrap())
                .with_weakness(cwe(77))
                .with_weakness(cwe(912)),
        )
        .unwrap();
    corpus
        .add_vulnerability(Vulnerability::new(
            cve(2000),
            "denial of service with no classified weakness",
        ))
        .unwrap();
    corpus
}

fn hit(id: impl Into<AttackVectorId>, score: f64, matched_terms: usize) -> Hit {
    Hit {
        id: id.into(),
        score,
        matched_terms,
    }
}

/// A match set holding every record of the tiny corpus, best-first.
fn full_set() -> MatchSet {
    MatchSet {
        patterns: vec![hit(capec(100), 0.9, 3), hit(capec(200), 0.4, 1)],
        weaknesses: vec![hit(cwe(77), 0.8, 2), hit(cwe(912), 0.3, 1)],
        vulnerabilities: vec![hit(cve(1000), 0.7, 2), hit(cve(2000), 0.2, 1)],
    }
}

fn apply(filter: Filter) -> MatchSet {
    FilterPipeline::new()
        .then(filter)
        .apply(&full_set(), &tiny_corpus())
}

// --- filter combinators -------------------------------------------------

#[test]
fn min_score_prunes_every_family() {
    let filtered = apply(Filter::MinScore(0.5));
    assert_eq!(filtered.counts(), (1, 1, 1));
    assert!(filtered.iter().all(|h| h.score >= 0.5));
}

#[test]
fn min_matched_terms_prunes_every_family() {
    let filtered = apply(Filter::MinMatchedTerms(2));
    assert_eq!(filtered.counts(), (1, 1, 1));
    assert!(filtered.iter().all(|h| h.matched_terms >= 2));
}

#[test]
fn top_k_keeps_the_best_hit_per_family() {
    let filtered = apply(Filter::TopKPerFamily(1));
    assert_eq!(filtered.counts(), (1, 1, 1));
    assert_eq!(filtered.patterns[0].id, capec(100).into());
    assert_eq!(filtered.weaknesses[0].id, cwe(77).into());
    assert_eq!(filtered.vulnerabilities[0].id, cve(1000).into());
}

#[test]
fn severity_filter_uses_cvss_for_vulns_and_typical_severity_for_patterns() {
    let filtered = apply(Filter::SeverityAtLeast(Severity::High));
    // CAPEC-200 is Medium, CVE-2000 has no CVSS: both dropped.
    assert_eq!(filtered.patterns, vec![hit(capec(100), 0.9, 3)]);
    assert_eq!(filtered.vulnerabilities, vec![hit(cve(1000), 0.7, 2)]);
    // Weaknesses carry no severity and pass through untouched.
    assert_eq!(filtered.weaknesses, full_set().weaknesses);
}

#[test]
fn abstraction_filter_restricts_patterns_only() {
    let filtered = apply(Filter::AbstractionIn(vec![Abstraction::Standard]));
    assert_eq!(filtered.patterns, vec![hit(capec(200), 0.4, 1)]);
    assert_eq!(filtered.weaknesses, full_set().weaknesses);
    assert_eq!(filtered.vulnerabilities, full_set().vulnerabilities);
}

#[test]
fn cvss_range_keeps_vulns_inside_the_inclusive_band() {
    // CVE-1000 scores 9.8; the band edges are inclusive.
    let kept = apply(Filter::CvssRange { min: 9.8, max: 9.8 });
    assert_eq!(kept.vulnerabilities, vec![hit(cve(1000), 0.7, 2)]);
    // Other families never carry CVSS and are unaffected.
    assert_eq!(kept.patterns, full_set().patterns);
    assert_eq!(kept.weaknesses, full_set().weaknesses);

    // A band below 9.8 drops CVE-1000; CVE-2000 has no CVSS vector at
    // all and is dropped by any band.
    let none = apply(Filter::CvssRange { min: 0.0, max: 9.7 });
    assert!(none.vulnerabilities.is_empty());
}

#[test]
fn id_set_filter_pins_records_across_all_families() {
    let filtered = apply(Filter::IdIn(vec![
        capec(200).into(),
        cwe(912).into(),
        cve(2000).into(),
    ]));
    assert_eq!(filtered.patterns, vec![hit(capec(200), 0.4, 1)]);
    assert_eq!(filtered.weaknesses, vec![hit(cwe(912), 0.3, 1)]);
    assert_eq!(filtered.vulnerabilities, vec![hit(cve(2000), 0.2, 1)]);

    let empty = apply(Filter::IdIn(Vec::new()));
    assert_eq!(empty.total(), 0);
}

#[test]
fn drop_vulnerabilities_clears_exactly_one_family() {
    let filtered = apply(Filter::DropVulnerabilities);
    assert!(filtered.vulnerabilities.is_empty());
    assert_eq!(filtered.patterns, full_set().patterns);
    assert_eq!(filtered.weaknesses, full_set().weaknesses);
}

#[test]
fn combinators_compose_left_to_right() {
    // TopK before MinScore is not the same as after: CAPEC-200 survives
    // TopK(2) then dies to MinScore; a pinned id-set applied last can
    // only shrink further.
    let filtered = FilterPipeline::new()
        .then(Filter::TopKPerFamily(2))
        .then(Filter::MinScore(0.5))
        .then(Filter::IdIn(vec![capec(100).into(), cve(1000).into()]))
        .apply(&full_set(), &tiny_corpus());
    assert_eq!(filtered.patterns, vec![hit(capec(100), 0.9, 3)]);
    assert!(filtered.weaknesses.is_empty());
    assert_eq!(filtered.vulnerabilities, vec![hit(cve(1000), 0.7, 2)]);
}

// --- exploit chains -----------------------------------------------------

#[test]
fn chains_enumerate_the_exact_link_closure() {
    let corpus = tiny_corpus();
    let chains = exploit_chains(&full_set(), &corpus, usize::MAX);
    // CVE-1000 → CWE-77 → {CAPEC-100, CAPEC-200}, and
    // CVE-1000 → CWE-912 → CAPEC-200. CVE-2000 contributes nothing.
    let expected = vec![
        ExploitChain {
            vulnerability: cve(1000),
            weakness: cwe(77),
            pattern: capec(100),
        },
        ExploitChain {
            vulnerability: cve(1000),
            weakness: cwe(77),
            pattern: capec(200),
        },
        ExploitChain {
            vulnerability: cve(1000),
            weakness: cwe(912),
            pattern: capec(200),
        },
    ];
    assert_eq!(chains, expected);
}

#[test]
fn vulnerability_without_weakness_links_yields_no_chains() {
    let corpus = tiny_corpus();
    let orphan_only = MatchSet {
        vulnerabilities: vec![hit(cve(2000), 0.2, 1)],
        ..MatchSet::default()
    };
    assert!(exploit_chains(&orphan_only, &corpus, 100).is_empty());
}

#[test]
fn cyclic_links_terminate_and_deduplicate() {
    // CVE-1000 – CWE-77 – CAPEC-200 – CWE-912 – CVE-1000 is a cycle in
    // the link graph. Traversal is one fixed vuln→weakness→pattern walk,
    // so it terminates, and listing the same vulnerability twice in the
    // match set must not duplicate chains.
    let corpus = tiny_corpus();
    let doubled = MatchSet {
        vulnerabilities: vec![hit(cve(1000), 0.7, 2), hit(cve(1000), 0.7, 2)],
        ..MatchSet::default()
    };
    let chains = exploit_chains(&doubled, &corpus, usize::MAX);
    assert_eq!(chains.len(), 3);
    let mut deduped = chains.clone();
    deduped.dedup();
    assert_eq!(deduped.len(), chains.len());
    // CAPEC-200 is reachable through both weaknesses of the cycle.
    assert_eq!(chains.iter().filter(|c| c.pattern == capec(200)).count(), 2);
}

#[test]
fn chain_limit_caps_deterministically() {
    let corpus = tiny_corpus();
    let all = exploit_chains(&full_set(), &corpus, usize::MAX);
    let capped = exploit_chains(&full_set(), &corpus, 2);
    assert_eq!(capped.len(), 2);
    assert_eq!(&all[..2], &capped[..]);
}

#[test]
fn weakness_pivot_covers_the_cross_product() {
    let corpus = tiny_corpus();
    // CWE-77: one linked vuln × two linked patterns.
    let chains = chains_for_weakness(&corpus, cwe(77), 100);
    assert_eq!(chains.len(), 2);
    assert!(chains.iter().all(|c| c.weakness == cwe(77)));
    assert!(chains.iter().all(|c| c.vulnerability == cve(1000)));
    // A weakness nobody links to yields nothing.
    assert!(chains_for_weakness(&corpus, cwe(999), 100).is_empty());
}
