//! Property test: GraphML export → import is lossless for arbitrary
//! attribute strings, including XML-special characters (`&`, `<`, `>`,
//! quotes), pipes (the attr-payload separator), and whitespace edge cases.

use proptest::prelude::*;

use cpssec_model::{
    from_graphml, to_graphml, Attribute, AttributeKind, ChannelKind, ComponentKind, Direction,
    Fidelity, SystemModelBuilder,
};

/// Strings that exercise the XML escaper: printable ASCII with all five
/// XML-special characters well represented, plus pipes, spaces and a few
/// non-ASCII letters. (Control characters are rejected by model-name
/// validation and are not legal XML 1.0 character data, so the model layer
/// never needs to round-trip them.)
fn attr_string() -> impl Strategy<Value = String> {
    let alphabet: Vec<char> = "&<>\"'| éab0z9".chars().collect();
    proptest::collection::vec(proptest::sample::select(alphabet), 0..24)
        .prop_map(|chars| chars.into_iter().collect())
}

fn fidelity() -> impl Strategy<Value = Fidelity> {
    proptest::sample::select(vec![
        Fidelity::Conceptual,
        Fidelity::Architectural,
        Fidelity::Implementation,
    ])
}

proptest! {
    #[test]
    fn attribute_values_round_trip(value in attr_string(), level in fidelity()) {
        let model = SystemModelBuilder::new("rt")
            .component("c", ComponentKind::Controller)
            .attribute(
                "c",
                Attribute::new(AttributeKind::Software, value).at_fidelity(level),
            )
            .build()
            .unwrap();
        let back = from_graphml(&to_graphml(&model)).unwrap();
        prop_assert_eq!(back, model);
    }

    #[test]
    fn custom_keys_and_values_round_trip(key in attr_string(), value in attr_string()) {
        let model = SystemModelBuilder::new("rt")
            .component("c", ComponentKind::Controller)
            .attribute("c", Attribute::custom(format!("k{key}"), value))
            .build()
            .unwrap();
        let back = from_graphml(&to_graphml(&model)).unwrap();
        prop_assert_eq!(back, model);
    }

    #[test]
    fn channel_labels_and_attributes_round_trip(
        label in attr_string(),
        value in attr_string(),
    ) {
        let model = SystemModelBuilder::new("rt")
            .component("a", ComponentKind::Workstation)
            .component("b", ComponentKind::Controller)
            .channel_with(
                "a",
                "b",
                ChannelKind::Ethernet,
                Direction::Forward,
                label,
                vec![Attribute::new(AttributeKind::Protocol, value)],
            )
            .build()
            .unwrap();
        let back = from_graphml(&to_graphml(&model)).unwrap();
        prop_assert_eq!(back, model);
    }

    #[test]
    fn component_names_round_trip(suffix in attr_string()) {
        // Names must be non-empty and control-free; prefix guarantees that.
        let name = format!("n {suffix}");
        let model = SystemModelBuilder::new("rt")
            .component(name, ComponentKind::Sensor)
            .build()
            .unwrap();
        let back = from_graphml(&to_graphml(&model)).unwrap();
        prop_assert_eq!(back, model);
    }
}
