//! Taxonomies for components and channels.
//!
//! The kinds below cover the vocabulary used by industrial control system
//! reference architectures (Purdue model levels 0–4) plus generic IT
//! elements, which is what the paper's SCADA demonstration requires.

use core::fmt;
use core::str::FromStr;

use crate::ModelError;

/// The architectural role of a [`Component`](crate::Component).
///
/// The taxonomy is deliberately closed: security association and posture
/// scoring treat kinds as analysis categories, so downstream code must be
/// able to match exhaustively. Anything that genuinely fits no category can
/// use [`ComponentKind::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum ComponentKind {
    /// A process controller (PLC, BPCS, DCS node).
    Controller,
    /// A dedicated safety instrumented system or safety monitor.
    SafetySystem,
    /// A sensor measuring a physical quantity.
    Sensor,
    /// An actuator driving a physical quantity.
    Actuator,
    /// The physical process under control (plant).
    PhysicalProcess,
    /// An engineering or operator workstation.
    Workstation,
    /// A human-machine interface panel.
    Hmi,
    /// A process data historian.
    Historian,
    /// A network firewall or data diode.
    Firewall,
    /// A switch, router, or other network fabric element.
    Network,
    /// A protocol or network gateway.
    Gateway,
    /// A remote terminal unit.
    Rtu,
    /// A server providing IT services (domain, files, databases).
    Server,
    /// A pure software component (application, runtime, library).
    Software,
    /// A component that fits no other category.
    Other,
}

impl ComponentKind {
    /// All kinds in a fixed, stable order.
    pub const ALL: [ComponentKind; 15] = [
        ComponentKind::Controller,
        ComponentKind::SafetySystem,
        ComponentKind::Sensor,
        ComponentKind::Actuator,
        ComponentKind::PhysicalProcess,
        ComponentKind::Workstation,
        ComponentKind::Hmi,
        ComponentKind::Historian,
        ComponentKind::Firewall,
        ComponentKind::Network,
        ComponentKind::Gateway,
        ComponentKind::Rtu,
        ComponentKind::Server,
        ComponentKind::Software,
        ComponentKind::Other,
    ];

    /// Returns the canonical lowercase name used in GraphML interchange.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ComponentKind::Controller => "controller",
            ComponentKind::SafetySystem => "safety-system",
            ComponentKind::Sensor => "sensor",
            ComponentKind::Actuator => "actuator",
            ComponentKind::PhysicalProcess => "physical-process",
            ComponentKind::Workstation => "workstation",
            ComponentKind::Hmi => "hmi",
            ComponentKind::Historian => "historian",
            ComponentKind::Firewall => "firewall",
            ComponentKind::Network => "network",
            ComponentKind::Gateway => "gateway",
            ComponentKind::Rtu => "rtu",
            ComponentKind::Server => "server",
            ComponentKind::Software => "software",
            ComponentKind::Other => "other",
        }
    }

    /// Returns `true` for kinds that interact with the physical environment.
    ///
    /// These are exactly the kinds for which the paper argues IT-centric
    /// threat modeling is insufficient: attacks on them have direct physical
    /// consequences.
    #[must_use]
    pub fn is_physical(self) -> bool {
        matches!(
            self,
            ComponentKind::Sensor | ComponentKind::Actuator | ComponentKind::PhysicalProcess
        )
    }

    /// Returns `true` for kinds that issue control actions.
    #[must_use]
    pub fn is_controlling(self) -> bool {
        matches!(
            self,
            ComponentKind::Controller
                | ComponentKind::SafetySystem
                | ComponentKind::Rtu
                | ComponentKind::Workstation
        )
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ComponentKind {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ComponentKind::ALL
            .iter()
            .copied()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| ModelError::UnknownKind(s.to_owned()))
    }
}

/// The medium of a [`Channel`](crate::Channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum ChannelKind {
    /// Switched Ethernet (possibly industrial Ethernet).
    Ethernet,
    /// Point-to-point serial (RS-232/RS-485).
    Serial,
    /// An industrial fieldbus (MODBUS, Profibus, CAN, ...).
    Fieldbus,
    /// A 4–20 mA loop or other analog electrical connection.
    Analog,
    /// Radio: Wi-Fi, cellular, proprietary ISM links.
    Wireless,
    /// Direct physical coupling (shaft, pipe, containment).
    Physical,
    /// A logical dependency without its own medium (e.g. software hosting).
    Logical,
}

impl ChannelKind {
    /// All kinds in a fixed, stable order.
    pub const ALL: [ChannelKind; 7] = [
        ChannelKind::Ethernet,
        ChannelKind::Serial,
        ChannelKind::Fieldbus,
        ChannelKind::Analog,
        ChannelKind::Wireless,
        ChannelKind::Physical,
        ChannelKind::Logical,
    ];

    /// Returns the canonical lowercase name used in GraphML interchange.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ChannelKind::Ethernet => "ethernet",
            ChannelKind::Serial => "serial",
            ChannelKind::Fieldbus => "fieldbus",
            ChannelKind::Analog => "analog",
            ChannelKind::Wireless => "wireless",
            ChannelKind::Physical => "physical",
            ChannelKind::Logical => "logical",
        }
    }

    /// Returns `true` if the medium carries digital traffic an attacker on
    /// the network could inject into.
    #[must_use]
    pub fn is_networked(self) -> bool {
        matches!(
            self,
            ChannelKind::Ethernet
                | ChannelKind::Serial
                | ChannelKind::Fieldbus
                | ChannelKind::Wireless
        )
    }
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ChannelKind {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ChannelKind::ALL
            .iter()
            .copied()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| ModelError::UnknownKind(s.to_owned()))
    }
}

/// Direction of information or energy flow on a channel.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Direction {
    /// Flow in both directions (the common case for request/response buses).
    #[default]
    Bidirectional,
    /// Flow only from the channel's `from` end to its `to` end.
    Forward,
}

impl Direction {
    /// Returns the canonical lowercase name used in GraphML interchange.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Bidirectional => "bidirectional",
            Direction::Forward => "forward",
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Direction {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bidirectional" => Ok(Direction::Bidirectional),
            "forward" => Ok(Direction::Forward),
            other => Err(ModelError::UnknownKind(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_kind_round_trips_through_str() {
        for kind in ComponentKind::ALL {
            assert_eq!(kind.as_str().parse::<ComponentKind>().unwrap(), kind);
        }
    }

    #[test]
    fn channel_kind_round_trips_through_str() {
        for kind in ChannelKind::ALL {
            assert_eq!(kind.as_str().parse::<ChannelKind>().unwrap(), kind);
        }
    }

    #[test]
    fn direction_round_trips_through_str() {
        for dir in [Direction::Bidirectional, Direction::Forward] {
            assert_eq!(dir.as_str().parse::<Direction>().unwrap(), dir);
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!("quantum".parse::<ComponentKind>().is_err());
        assert!("telepathy".parse::<ChannelKind>().is_err());
        assert!("sideways".parse::<Direction>().is_err());
    }

    #[test]
    fn physical_kinds_are_the_plant_interface() {
        let physical: Vec<_> = ComponentKind::ALL
            .iter()
            .filter(|k| k.is_physical())
            .collect();
        assert_eq!(physical.len(), 3);
        assert!(ComponentKind::Sensor.is_physical());
        assert!(!ComponentKind::Firewall.is_physical());
    }

    #[test]
    fn controlling_kinds_include_safety_system() {
        assert!(ComponentKind::SafetySystem.is_controlling());
        assert!(!ComponentKind::Sensor.is_controlling());
    }

    #[test]
    fn networked_media_exclude_analog_and_physical() {
        assert!(ChannelKind::Fieldbus.is_networked());
        assert!(!ChannelKind::Analog.is_networked());
        assert!(!ChannelKind::Physical.is_networked());
        assert!(!ChannelKind::Logical.is_networked());
    }

    #[test]
    fn all_lists_are_duplicate_free() {
        let mut names: Vec<_> = ComponentKind::ALL.iter().map(|k| k.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ComponentKind::ALL.len());
    }
}
