//! Stable content hashing of models.
//!
//! The analysis service caches results keyed by *what the model says*, not
//! by which session uploaded it, so two analysts uploading the same
//! architecture share cache entries. The hash is FNV-1a 64 over a canonical
//! field walk — deterministic across processes and platforms (unlike
//! [`std::hash`], whose `DefaultHasher` is seeded and unspecified).

use crate::SystemModel;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64 hasher.
///
/// # Examples
///
/// ```
/// use cpssec_model::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write(b"NI cRIO 9063");
/// assert_eq!(h.finish(), cpssec_model::fnv1a_64(b"NI cRIO 9063"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Starts a hash at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a string field into the hash, terminated with a separator byte
    /// so adjacent fields cannot alias (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0x1f]);
    }

    /// The hash of everything written so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 of a byte string.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Word-folded FNV variant for bulk checksumming: folds eight bytes per
/// multiply (`h = (h ^ word_le) * PRIME`), then the length and the byte
/// tail. Roughly 8× faster than [`fnv1a_64`] on large buffers with the
/// same per-step mixing — suitable for corruption detection over
/// megabyte-scale payloads, NOT interchangeable with [`fnv1a_64`].
#[must_use]
pub fn fnv1a_64_wide(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = (h ^ word).wrapping_mul(FNV_PRIME);
    }
    // Fold the length so buffers differing only in trailing zero bytes
    // cannot collide, then the sub-word tail.
    h = (h ^ bytes.len() as u64).wrapping_mul(FNV_PRIME);
    for &b in chunks.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

impl SystemModel {
    /// A stable content hash of the model: name, components in insertion
    /// order with their full attribute sets, and channels with endpoints.
    ///
    /// Two models with identical content hash to the same value in any
    /// process; any observable difference (an attribute value, a fidelity
    /// tag, a channel label) changes the hash with FNV's mixing quality.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpssec_model::{SystemModelBuilder, ComponentKind};
    ///
    /// # fn main() -> Result<(), cpssec_model::ModelError> {
    /// let a = SystemModelBuilder::new("m")
    ///     .component("plc", ComponentKind::Controller)
    ///     .build()?;
    /// let b = a.clone();
    /// assert_eq!(a.content_hash(), b.content_hash());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(self.name());
        for (_, component) in self.components() {
            h.write(&[0x01]);
            h.write_str(component.name());
            h.write_str(component.kind().as_str());
            h.write_str(component.criticality().as_str());
            h.write(&[u8::from(component.is_entry_point())]);
            for attr in component.attributes().iter() {
                h.write(&[0x02]);
                h.write_str(attr.kind().as_str());
                h.write_str(attr.key());
                h.write_str(attr.fidelity().as_str());
                h.write_str(attr.value());
            }
        }
        for (_, channel) in self.channels() {
            h.write(&[0x03]);
            h.write(&(channel.from().index() as u64).to_le_bytes());
            h.write(&(channel.to().index() as u64).to_le_bytes());
            h.write_str(channel.kind().as_str());
            h.write_str(channel.direction().as_str());
            h.write_str(channel.label());
            for attr in channel.attributes().iter() {
                h.write(&[0x02]);
                h.write_str(attr.kind().as_str());
                h.write_str(attr.key());
                h.write_str(attr.fidelity().as_str());
                h.write_str(attr.value());
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, AttributeKind, ChannelKind, ComponentKind, SystemModelBuilder};

    fn base() -> SystemModel {
        SystemModelBuilder::new("m")
            .component("ws", ComponentKind::Workstation)
            .component("plc", ComponentKind::Controller)
            .channel("ws", "plc", ChannelKind::Ethernet)
            .attribute(
                "ws",
                Attribute::new(AttributeKind::OperatingSystem, "Windows 7"),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn known_vector() {
        // FNV-1a 64 reference vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn identical_models_hash_identically() {
        assert_eq!(base().content_hash(), base().content_hash());
    }

    #[test]
    fn any_field_change_changes_the_hash() {
        let reference = base().content_hash();
        let mut renamed = base();
        renamed
            .component_by_name_mut("ws")
            .unwrap()
            .attributes_mut()
            .insert(Attribute::new(AttributeKind::Software, "Labview"));
        assert_ne!(renamed.content_hash(), reference);

        let relabeled = SystemModelBuilder::new("m2")
            .component("ws", ComponentKind::Workstation)
            .build()
            .unwrap();
        assert_ne!(relabeled.content_hash(), reference);
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let a = SystemModelBuilder::new("ab")
            .component("c", ComponentKind::Other)
            .build()
            .unwrap();
        let b = SystemModelBuilder::new("a")
            .component("bc", ComponentKind::Other)
            .build()
            .unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn wide_hash_detects_single_byte_and_length_changes() {
        let base: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        let reference = fnv1a_64_wide(&base);
        // Any single-byte flip changes the hash, at word-aligned and
        // tail positions alike.
        for i in [0, 7, 8, 500, 992, 999] {
            let mut flipped = base.clone();
            flipped[i] ^= 0x01;
            assert_ne!(fnv1a_64_wide(&flipped), reference, "flip at {i}");
        }
        // Trailing zeros change the hash (the length fold).
        let mut extended = base.clone();
        extended.push(0);
        assert_ne!(fnv1a_64_wide(&extended), reference);
        assert_ne!(fnv1a_64_wide(&[]), fnv1a_64_wide(&[0]));
        // Deterministic.
        assert_eq!(fnv1a_64_wide(&base), reference);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }
}
