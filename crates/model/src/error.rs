//! Error type for model construction and interchange.

use core::fmt;

/// Errors produced while building, querying, or exchanging system models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A component name was used twice within the same model.
    DuplicateComponent(String),
    /// A channel referenced a component name that does not exist.
    UnknownComponent(String),
    /// A lookup used an identifier from a different or newer model.
    InvalidId(String),
    /// A kind name in interchange data was not recognised.
    UnknownKind(String),
    /// A channel connected a component to itself.
    SelfLoop(String),
    /// A component or model name was empty or contained control characters.
    InvalidName(String),
    /// GraphML input was structurally malformed.
    Malformed(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateComponent(name) => {
                write!(f, "duplicate component name `{name}`")
            }
            ModelError::UnknownComponent(name) => {
                write!(f, "unknown component `{name}`")
            }
            ModelError::InvalidId(id) => write!(f, "identifier `{id}` is not valid for this model"),
            ModelError::UnknownKind(kind) => write!(f, "unknown kind name `{kind}`"),
            ModelError::SelfLoop(name) => {
                write!(f, "channel connects component `{name}` to itself")
            }
            ModelError::InvalidName(name) => write!(f, "invalid element name `{name}`"),
            ModelError::Malformed(detail) => write!(f, "malformed interchange data: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_without_trailing_punctuation() {
        let samples = [
            ModelError::DuplicateComponent("a".into()),
            ModelError::UnknownComponent("b".into()),
            ModelError::InvalidId("n9".into()),
            ModelError::UnknownKind("k".into()),
            ModelError::SelfLoop("c".into()),
            ModelError::InvalidName("".into()),
            ModelError::Malformed("missing root".into()),
        ];
        for err in samples {
            let msg = err.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ModelError>();
    }
}
