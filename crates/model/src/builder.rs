//! Fluent construction of system models.

use crate::{
    Attribute, Channel, ChannelKind, Component, ComponentKind, Criticality, Direction, ModelError,
    SystemModel,
};

enum Op {
    Component(Component),
    Channel {
        from: String,
        to: String,
        kind: ChannelKind,
        direction: Direction,
        label: String,
        attributes: Vec<Attribute>,
    },
    Attribute {
        component: String,
        attribute: Attribute,
    },
}

/// A non-consuming builder assembling a [`SystemModel`] by name.
///
/// Components are referenced by name so a model reads like its block
/// diagram; errors (unknown names, duplicates) are reported once, from
/// [`build`](SystemModelBuilder::build).
///
/// # Examples
///
/// ```
/// use cpssec_model::{
///     SystemModelBuilder, ComponentKind, ChannelKind, Attribute, AttributeKind, Criticality,
/// };
///
/// # fn main() -> Result<(), cpssec_model::ModelError> {
/// let model = SystemModelBuilder::new("scada")
///     .component_with("ws", ComponentKind::Workstation, |c| {
///         c.with_entry_point(true)
///             .with_attribute(Attribute::new(AttributeKind::OperatingSystem, "Windows 7"))
///     })
///     .component("plc", ComponentKind::Controller)
///     .channel("ws", "plc", ChannelKind::Ethernet)
///     .build()?;
/// assert_eq!(model.entry_points().len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct SystemModelBuilder {
    name: String,
    ops: Vec<Op>,
}

impl SystemModelBuilder {
    /// Starts a builder for a model called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SystemModelBuilder {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Declares a component.
    #[must_use]
    pub fn component(self, name: impl Into<String>, kind: ComponentKind) -> Self {
        self.component_with(name, kind, |c| c)
    }

    /// Declares a component, customizing it through `configure`.
    #[must_use]
    pub fn component_with(
        mut self,
        name: impl Into<String>,
        kind: ComponentKind,
        configure: impl FnOnce(Component) -> Component,
    ) -> Self {
        self.ops
            .push(Op::Component(configure(Component::new(name, kind))));
        self
    }

    /// Declares a bidirectional channel between two named components.
    #[must_use]
    pub fn channel(
        self,
        from: impl Into<String>,
        to: impl Into<String>,
        kind: ChannelKind,
    ) -> Self {
        self.channel_with(from, to, kind, Direction::Bidirectional, "", Vec::new())
    }

    /// Declares a channel with explicit direction, label and attributes.
    #[must_use]
    pub fn channel_with(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        kind: ChannelKind,
        direction: Direction,
        label: impl Into<String>,
        attributes: Vec<Attribute>,
    ) -> Self {
        self.ops.push(Op::Channel {
            from: from.into(),
            to: to.into(),
            kind,
            direction,
            label: label.into(),
            attributes,
        });
        self
    }

    /// Attaches an attribute to an already declared component.
    #[must_use]
    pub fn attribute(mut self, component: impl Into<String>, attribute: Attribute) -> Self {
        self.ops.push(Op::Attribute {
            component: component.into(),
            attribute,
        });
        self
    }

    /// Convenience: marks a declared component as safety-critical.
    #[must_use]
    pub fn safety_critical(mut self, component: impl Into<String>) -> Self {
        // Encoded as a no-value op through the attribute channel keeps the
        // op list uniform; instead we reuse Op::Attribute with a marker and
        // fix criticality in build. Simpler: push a dedicated closure-less op.
        self.ops.push(Op::Attribute {
            component: component.into(),
            attribute: Attribute::custom("__criticality", Criticality::SafetyCritical.as_str()),
        });
        self
    }

    /// Assembles the model.
    ///
    /// # Errors
    ///
    /// Any [`ModelError`] raised while inserting components, channels, or
    /// attributes — duplicate names, unknown endpoint names, self loops.
    pub fn build(self) -> Result<SystemModel, ModelError> {
        let mut model = SystemModel::new(self.name)?;
        // Components first so channels may be declared in any order.
        for op in &self.ops {
            if let Op::Component(c) = op {
                model.add_component(c.clone())?;
            }
        }
        for op in self.ops {
            match op {
                Op::Component(_) => {}
                Op::Channel {
                    from,
                    to,
                    kind,
                    direction,
                    label,
                    attributes,
                } => {
                    let from_id = model
                        .component_id(&from)
                        .ok_or(ModelError::UnknownComponent(from))?;
                    let to_id = model
                        .component_id(&to)
                        .ok_or(ModelError::UnknownComponent(to))?;
                    let ch = model.add_channel_with(from_id, to_id, kind, direction, label)?;
                    let channel: &mut Channel =
                        model.channel_mut(ch).expect("just-created channel exists");
                    for attr in attributes {
                        channel.attributes_mut().insert(attr);
                    }
                }
                Op::Attribute {
                    component,
                    attribute,
                } => {
                    let comp = model
                        .component_by_name_mut(&component)
                        .ok_or(ModelError::UnknownComponent(component))?;
                    if attribute.key() == "__criticality" {
                        comp.set_criticality(
                            attribute
                                .value()
                                .parse()
                                .expect("marker uses canonical name"),
                        );
                    } else {
                        comp.attributes_mut().insert(attribute);
                    }
                }
            }
        }
        Ok(model)
    }
}

impl std::fmt::Debug for SystemModelBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemModelBuilder")
            .field("name", &self.name)
            .field("ops", &self.ops.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttributeKind;

    #[test]
    fn channels_may_be_declared_before_components() {
        let model = SystemModelBuilder::new("m")
            .channel("a", "b", ChannelKind::Ethernet)
            .component("a", ComponentKind::Other)
            .component("b", ComponentKind::Other)
            .build()
            .unwrap();
        assert_eq!(model.channel_count(), 1);
    }

    #[test]
    fn unknown_endpoint_is_an_error() {
        let err = SystemModelBuilder::new("m")
            .component("a", ComponentKind::Other)
            .channel("a", "ghost", ChannelKind::Ethernet)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::UnknownComponent("ghost".into()));
    }

    #[test]
    fn attribute_op_targets_existing_component() {
        let model = SystemModelBuilder::new("m")
            .component("a", ComponentKind::Other)
            .attribute("a", Attribute::new(AttributeKind::Vendor, "Cisco"))
            .build()
            .unwrap();
        assert_eq!(
            model
                .component_by_name("a")
                .unwrap()
                .attributes()
                .get("vendor"),
            Some("Cisco")
        );
    }

    #[test]
    fn attribute_op_unknown_component_is_an_error() {
        let err = SystemModelBuilder::new("m")
            .attribute("ghost", Attribute::new(AttributeKind::Vendor, "Cisco"))
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::UnknownComponent("ghost".into()));
    }

    #[test]
    fn safety_critical_marker_sets_criticality() {
        let model = SystemModelBuilder::new("m")
            .component("sis", ComponentKind::SafetySystem)
            .safety_critical("sis")
            .build()
            .unwrap();
        assert_eq!(
            model.component_by_name("sis").unwrap().criticality(),
            Criticality::SafetyCritical
        );
        // The marker must not leak as an attribute.
        assert!(model
            .component_by_name("sis")
            .unwrap()
            .attributes()
            .is_empty());
    }

    #[test]
    fn channel_with_attributes_lands_on_channel() {
        let model = SystemModelBuilder::new("m")
            .component("a", ComponentKind::Other)
            .component("b", ComponentKind::Other)
            .channel_with(
                "a",
                "b",
                ChannelKind::Fieldbus,
                Direction::Forward,
                "bus",
                vec![Attribute::new(AttributeKind::Protocol, "MODBUS/TCP")],
            )
            .build()
            .unwrap();
        let (_, ch) = model.channels().next().unwrap();
        assert_eq!(ch.attributes().get("protocol"), Some("MODBUS/TCP"));
        assert_eq!(ch.label(), "bus");
        assert_eq!(ch.direction(), Direction::Forward);
    }

    #[test]
    fn debug_is_nonempty() {
        let dbg = format!("{:?}", SystemModelBuilder::new("m"));
        assert!(dbg.contains("SystemModelBuilder"));
    }
}
