//! Structural diffs between two models.
//!
//! The paper's dashboard lets an analyst "change the model on the fly and
//! immediately see the new results"; a [`ModelDiff`] is the machine-readable
//! record of such a change, keyed by component name so it survives
//! re-indexing.

use std::collections::BTreeSet;

use crate::{Attribute, SystemModel};

/// A change to one attribute of a surviving component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttributeChange {
    /// Attribute present only in the new model.
    Added(Attribute),
    /// Attribute present only in the old model.
    Removed(Attribute),
}

/// All changes affecting one component present in both models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentChange {
    /// The component's (stable) name.
    pub name: String,
    /// Kind changed from old to new.
    pub kind_changed: bool,
    /// Criticality changed from old to new.
    pub criticality_changed: bool,
    /// Entry-point marker changed.
    pub entry_point_changed: bool,
    /// Attribute-level adds/removes.
    pub attributes: Vec<AttributeChange>,
}

impl ComponentChange {
    /// Whether any field actually changed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.kind_changed
            && !self.criticality_changed
            && !self.entry_point_changed
            && self.attributes.is_empty()
    }
}

/// The difference between two models, oriented old → new.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelDiff {
    /// Component names only in the new model.
    pub added_components: Vec<String>,
    /// Component names only in the old model.
    pub removed_components: Vec<String>,
    /// Changes to components present in both.
    pub changed_components: Vec<ComponentChange>,
    /// Channel descriptions (`from -> to [kind]`) only in the new model.
    pub added_channels: Vec<String>,
    /// Channel descriptions only in the old model.
    pub removed_channels: Vec<String>,
}

impl ModelDiff {
    /// Computes the diff between `old` and `new`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpssec_model::{SystemModelBuilder, ComponentKind, ModelDiff};
    ///
    /// # fn main() -> Result<(), cpssec_model::ModelError> {
    /// let old = SystemModelBuilder::new("m")
    ///     .component("a", ComponentKind::Controller)
    ///     .build()?;
    /// let new = SystemModelBuilder::new("m")
    ///     .component("a", ComponentKind::Controller)
    ///     .component("b", ComponentKind::Firewall)
    ///     .build()?;
    /// let diff = ModelDiff::between(&old, &new);
    /// assert_eq!(diff.added_components, vec!["b".to_string()]);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn between(old: &SystemModel, new: &SystemModel) -> ModelDiff {
        let old_names: BTreeSet<&str> = old.components().map(|(_, c)| c.name()).collect();
        let new_names: BTreeSet<&str> = new.components().map(|(_, c)| c.name()).collect();

        let added_components = new_names
            .difference(&old_names)
            .map(|s| (*s).to_owned())
            .collect();
        let removed_components = old_names
            .difference(&new_names)
            .map(|s| (*s).to_owned())
            .collect();

        let mut changed_components = Vec::new();
        for name in old_names.intersection(&new_names) {
            let oc = old.component_by_name(name).expect("name from old");
            let nc = new.component_by_name(name).expect("name from new");
            let old_attrs: BTreeSet<&Attribute> = oc.attributes().iter().collect();
            let new_attrs: BTreeSet<&Attribute> = nc.attributes().iter().collect();
            let mut attributes: Vec<AttributeChange> = new_attrs
                .difference(&old_attrs)
                .map(|a| AttributeChange::Added((*a).clone()))
                .collect();
            attributes.extend(
                old_attrs
                    .difference(&new_attrs)
                    .map(|a| AttributeChange::Removed((*a).clone())),
            );
            let change = ComponentChange {
                name: (*name).to_owned(),
                kind_changed: oc.kind() != nc.kind(),
                criticality_changed: oc.criticality() != nc.criticality(),
                entry_point_changed: oc.is_entry_point() != nc.is_entry_point(),
                attributes,
            };
            if !change.is_empty() {
                changed_components.push(change);
            }
        }

        let describe = |m: &SystemModel| -> BTreeSet<String> {
            m.channels()
                .map(|(_, ch)| {
                    let from = m.component(ch.from()).expect("valid endpoint").name();
                    let to = m.component(ch.to()).expect("valid endpoint").name();
                    format!("{from} -> {to} [{}]", ch.kind())
                })
                .collect()
        };
        let old_channels = describe(old);
        let new_channels = describe(new);

        ModelDiff {
            added_components,
            removed_components,
            changed_components,
            added_channels: new_channels.difference(&old_channels).cloned().collect(),
            removed_channels: old_channels.difference(&new_channels).cloned().collect(),
        }
    }

    /// Whether the two models were identical (modulo identifier numbering).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.added_components.is_empty()
            && self.removed_components.is_empty()
            && self.changed_components.is_empty()
            && self.added_channels.is_empty()
            && self.removed_channels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttributeKind, ChannelKind, ComponentKind, Criticality, SystemModelBuilder};

    fn base() -> SystemModel {
        SystemModelBuilder::new("m")
            .component("ws", ComponentKind::Workstation)
            .component("plc", ComponentKind::Controller)
            .channel("ws", "plc", ChannelKind::Ethernet)
            .attribute(
                "ws",
                Attribute::new(AttributeKind::OperatingSystem, "Windows 7"),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn identical_models_diff_empty() {
        assert!(ModelDiff::between(&base(), &base()).is_empty());
    }

    #[test]
    fn attribute_swap_is_add_plus_remove() {
        let old = base();
        let mut new = base();
        let ws = new.component_by_name_mut("ws").unwrap();
        ws.attributes_mut().remove("os", "Windows 7");
        ws.attributes_mut().insert(Attribute::new(
            AttributeKind::OperatingSystem,
            "NI RT Linux",
        ));
        let diff = ModelDiff::between(&old, &new);
        assert_eq!(diff.changed_components.len(), 1);
        let change = &diff.changed_components[0];
        assert_eq!(change.attributes.len(), 2);
        assert!(change
            .attributes
            .iter()
            .any(|c| matches!(c, AttributeChange::Added(a) if a.value() == "NI RT Linux")));
        assert!(change
            .attributes
            .iter()
            .any(|c| matches!(c, AttributeChange::Removed(a) if a.value() == "Windows 7")));
    }

    #[test]
    fn component_addition_and_removal_detected() {
        let old = base();
        let new = SystemModelBuilder::new("m")
            .component("ws", ComponentKind::Workstation)
            .component("hist", ComponentKind::Historian)
            .attribute(
                "ws",
                Attribute::new(AttributeKind::OperatingSystem, "Windows 7"),
            )
            .build()
            .unwrap();
        let diff = ModelDiff::between(&old, &new);
        assert_eq!(diff.added_components, vec!["hist".to_owned()]);
        assert_eq!(diff.removed_components, vec!["plc".to_owned()]);
        assert_eq!(diff.removed_channels.len(), 1);
    }

    #[test]
    fn criticality_change_detected() {
        let old = base();
        let mut new = base();
        new.component_by_name_mut("plc")
            .unwrap()
            .set_criticality(Criticality::SafetyCritical);
        let diff = ModelDiff::between(&old, &new);
        assert_eq!(diff.changed_components.len(), 1);
        assert!(diff.changed_components[0].criticality_changed);
        assert!(!diff.changed_components[0].kind_changed);
    }

    #[test]
    fn channel_kind_change_shows_as_remove_plus_add() {
        let old = base();
        let new = SystemModelBuilder::new("m")
            .component("ws", ComponentKind::Workstation)
            .component("plc", ComponentKind::Controller)
            .channel("ws", "plc", ChannelKind::Serial)
            .attribute(
                "ws",
                Attribute::new(AttributeKind::OperatingSystem, "Windows 7"),
            )
            .build()
            .unwrap();
        let diff = ModelDiff::between(&old, &new);
        assert_eq!(diff.added_channels.len(), 1);
        assert_eq!(diff.removed_channels.len(), 1);
        assert!(diff.added_channels[0].contains("serial"));
    }
}
