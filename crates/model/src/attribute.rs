//! Attributes: the security-relevant design information attached to model
//! elements.
//!
//! The paper's search process matches *attributes* (e.g. "Windows 7",
//! "NI cRIO 9063") against attack vector corpora; Table 1 is keyed by
//! attribute. An [`Attribute`] is a typed key/value pair plus the
//! [`Fidelity`] at which it becomes part of the model.

use core::fmt;
use core::str::FromStr;

use crate::{Fidelity, ModelError};

/// The semantic category of an attribute.
///
/// Categories matter to the matcher: product and operating-system attributes
/// relate to concrete vulnerabilities, function and description attributes
/// relate to attack patterns and weaknesses (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum AttributeKind {
    /// Hardware or software vendor ("Cisco", "National Instruments").
    Vendor,
    /// A concrete product ("ASA 5506-X", "cRIO 9063").
    Product,
    /// An operating system ("Windows 7", "NI RT Linux").
    OperatingSystem,
    /// Installed software ("LabVIEW", "MODBUS stack").
    Software,
    /// A hardware platform or part.
    Hardware,
    /// A communication protocol ("MODBUS/TCP").
    Protocol,
    /// A version string, qualifying the nearest product/software attribute.
    Version,
    /// The functional role in prose ("supervisory speed control").
    Function,
    /// Free-form descriptive text.
    Description,
    /// Anything else; carries its own key verbatim.
    Custom,
}

impl AttributeKind {
    /// All kinds in a fixed, stable order.
    pub const ALL: [AttributeKind; 10] = [
        AttributeKind::Vendor,
        AttributeKind::Product,
        AttributeKind::OperatingSystem,
        AttributeKind::Software,
        AttributeKind::Hardware,
        AttributeKind::Protocol,
        AttributeKind::Version,
        AttributeKind::Function,
        AttributeKind::Description,
        AttributeKind::Custom,
    ];

    /// Returns the canonical lowercase name used in GraphML interchange.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AttributeKind::Vendor => "vendor",
            AttributeKind::Product => "product",
            AttributeKind::OperatingSystem => "os",
            AttributeKind::Software => "software",
            AttributeKind::Hardware => "hardware",
            AttributeKind::Protocol => "protocol",
            AttributeKind::Version => "version",
            AttributeKind::Function => "function",
            AttributeKind::Description => "description",
            AttributeKind::Custom => "custom",
        }
    }

    /// Returns `true` for kinds that name concrete technology (and therefore
    /// drive vulnerability matching rather than pattern matching).
    #[must_use]
    pub fn is_concrete(self) -> bool {
        matches!(
            self,
            AttributeKind::Vendor
                | AttributeKind::Product
                | AttributeKind::OperatingSystem
                | AttributeKind::Software
                | AttributeKind::Hardware
                | AttributeKind::Version
        )
    }
}

impl fmt::Display for AttributeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for AttributeKind {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AttributeKind::ALL
            .iter()
            .copied()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| ModelError::UnknownKind(s.to_owned()))
    }
}

/// One piece of security-relevant design information.
///
/// # Examples
///
/// ```
/// use cpssec_model::{Attribute, AttributeKind, Fidelity};
///
/// let os = Attribute::new(AttributeKind::OperatingSystem, "Windows 7")
///     .at_fidelity(Fidelity::Implementation);
/// assert_eq!(os.value(), "Windows 7");
/// assert!(os.kind().is_concrete());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Attribute {
    kind: AttributeKind,
    key: String,
    value: String,
    fidelity: Fidelity,
}

impl Attribute {
    /// Creates an attribute of `kind` with the given value, visible at all
    /// fidelities, keyed by the kind's canonical name.
    pub fn new(kind: AttributeKind, value: impl Into<String>) -> Self {
        Attribute {
            kind,
            key: kind.as_str().to_owned(),
            value: value.into(),
            fidelity: Fidelity::Conceptual,
        }
    }

    /// Creates a [`AttributeKind::Custom`] attribute with an explicit key.
    pub fn custom(key: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            kind: AttributeKind::Custom,
            key: key.into(),
            value: value.into(),
            fidelity: Fidelity::Conceptual,
        }
    }

    /// Sets the fidelity at which this attribute enters the model.
    #[must_use]
    pub fn at_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// The semantic category.
    #[must_use]
    pub fn kind(&self) -> AttributeKind {
        self.kind
    }

    /// The attribute key (the kind's canonical name, or the custom key).
    #[must_use]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The attribute value.
    #[must_use]
    pub fn value(&self) -> &str {
        &self.value
    }

    /// The fidelity at which this attribute becomes visible.
    #[must_use]
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.key, self.value)
    }
}

/// An ordered collection of attributes attached to one model element.
///
/// Insertion order is preserved; duplicate `(key, value)` pairs are
/// rejected on insert, but the same key may appear with several values
/// (a workstation can run more than one piece of software).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttributeSet {
    entries: Vec<Attribute>,
}

impl AttributeSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        AttributeSet::default()
    }

    /// Adds an attribute; returns `false` (and leaves the set unchanged) if
    /// an identical `(key, value)` pair is already present.
    pub fn insert(&mut self, attribute: Attribute) -> bool {
        if self
            .entries
            .iter()
            .any(|a| a.key == attribute.key && a.value == attribute.value)
        {
            return false;
        }
        self.entries.push(attribute);
        true
    }

    /// Removes every attribute whose `(key, value)` matches; returns how
    /// many were removed (0 or 1 given the insert invariant).
    pub fn remove(&mut self, key: &str, value: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|a| !(a.key == key && a.value == value));
        before - self.entries.len()
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all attributes in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Attribute> {
        self.entries.iter()
    }

    /// Iterates over attributes visible at `level`.
    pub fn visible_at(&self, level: Fidelity) -> impl Iterator<Item = &Attribute> {
        self.entries
            .iter()
            .filter(move |a| a.fidelity().visible_at(level))
    }

    /// Returns the first value stored under `key`, if any.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|a| a.key == key)
            .map(|a| a.value.as_str())
    }

    /// Returns all values stored under `key` in insertion order.
    pub fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |a| a.key == key)
            .map(|a| a.value.as_str())
    }

    /// Iterates over attributes of a given kind.
    pub fn of_kind(&self, kind: AttributeKind) -> impl Iterator<Item = &Attribute> {
        self.entries.iter().filter(move |a| a.kind == kind)
    }
}

impl FromIterator<Attribute> for AttributeSet {
    fn from_iter<I: IntoIterator<Item = Attribute>>(iter: I) -> Self {
        let mut set = AttributeSet::new();
        set.extend(iter);
        set
    }
}

impl Extend<Attribute> for AttributeSet {
    fn extend<I: IntoIterator<Item = Attribute>>(&mut self, iter: I) {
        for attribute in iter {
            self.insert(attribute);
        }
    }
}

impl<'a> IntoIterator for &'a AttributeSet {
    type Item = &'a Attribute;
    type IntoIter = core::slice::Iter<'a, Attribute>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl IntoIterator for AttributeSet {
    type Item = Attribute;
    type IntoIter = std::vec::IntoIter<Attribute>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win7() -> Attribute {
        Attribute::new(AttributeKind::OperatingSystem, "Windows 7")
            .at_fidelity(Fidelity::Implementation)
    }

    #[test]
    fn new_uses_canonical_key() {
        let attr = Attribute::new(AttributeKind::Product, "cRIO 9063");
        assert_eq!(attr.key(), "product");
        assert_eq!(attr.kind(), AttributeKind::Product);
    }

    #[test]
    fn custom_keeps_explicit_key() {
        let attr = Attribute::custom("rack-slot", "3");
        assert_eq!(attr.key(), "rack-slot");
        assert_eq!(attr.kind(), AttributeKind::Custom);
    }

    #[test]
    fn insert_rejects_exact_duplicates_but_allows_same_key() {
        let mut set = AttributeSet::new();
        assert!(set.insert(Attribute::new(AttributeKind::Software, "LabVIEW")));
        assert!(!set.insert(Attribute::new(AttributeKind::Software, "LabVIEW")));
        assert!(set.insert(Attribute::new(AttributeKind::Software, "MODBUS stack")));
        assert_eq!(set.len(), 2);
        assert_eq!(set.get_all("software").count(), 2);
    }

    #[test]
    fn remove_deletes_matching_pair_only() {
        let mut set: AttributeSet = [
            Attribute::new(AttributeKind::Software, "LabVIEW"),
            Attribute::new(AttributeKind::Software, "TIA Portal"),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.remove("software", "LabVIEW"), 1);
        assert_eq!(set.remove("software", "LabVIEW"), 0);
        assert_eq!(set.get("software"), Some("TIA Portal"));
    }

    #[test]
    fn visibility_filters_by_fidelity() {
        let mut set = AttributeSet::new();
        set.insert(Attribute::new(
            AttributeKind::Function,
            "separation control",
        ));
        set.insert(win7());
        assert_eq!(set.visible_at(Fidelity::Conceptual).count(), 1);
        assert_eq!(set.visible_at(Fidelity::Implementation).count(), 2);
    }

    #[test]
    fn display_is_key_equals_value() {
        assert_eq!(win7().to_string(), "os=Windows 7");
    }

    #[test]
    fn concrete_kinds_drive_vulnerability_matching() {
        assert!(AttributeKind::Product.is_concrete());
        assert!(AttributeKind::Version.is_concrete());
        assert!(!AttributeKind::Function.is_concrete());
        assert!(!AttributeKind::Description.is_concrete());
    }

    #[test]
    fn from_iterator_preserves_order() {
        let set: AttributeSet = [
            Attribute::new(AttributeKind::Vendor, "Cisco"),
            Attribute::new(AttributeKind::Product, "ASA"),
        ]
        .into_iter()
        .collect();
        let keys: Vec<_> = set.iter().map(Attribute::key).collect();
        assert_eq!(keys, ["vendor", "product"]);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in AttributeKind::ALL {
            assert_eq!(kind.as_str().parse::<AttributeKind>().unwrap(), kind);
        }
    }
}
