//! The system model: a typed property graph with analysis queries.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::{
    Channel, ChannelId, ChannelKind, Component, ComponentId, ComponentKind, Criticality, Direction,
    Fidelity, ModelError,
};

/// Summary statistics over a model, used by reports and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Number of components.
    pub components: usize,
    /// Number of channels.
    pub channels: usize,
    /// Total attributes over all components and channels.
    pub attributes: usize,
    /// Number of components marked as entry points.
    pub entry_points: usize,
    /// Number of safety-critical components.
    pub safety_critical: usize,
}

/// The general architectural model: components connected by channels.
///
/// This is the interchange target of the paper's first capability — the
/// structure a SysML (or any other language) model is exported into, and
/// the structure every downstream security analysis consumes.
///
/// # Examples
///
/// ```
/// use cpssec_model::{SystemModelBuilder, ComponentKind, ChannelKind};
///
/// # fn main() -> Result<(), cpssec_model::ModelError> {
/// let model = SystemModelBuilder::new("demo")
///     .component("ws", ComponentKind::Workstation)
///     .component("plc", ComponentKind::Controller)
///     .component("pump", ComponentKind::Actuator)
///     .channel("ws", "plc", ChannelKind::Ethernet)
///     .channel("plc", "pump", ChannelKind::Analog)
///     .build()?;
/// let ws = model.component_id("ws").unwrap();
/// let pump = model.component_id("pump").unwrap();
/// assert!(model.reachable_from(ws).contains(&pump));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemModel {
    name: String,
    components: Vec<Component>,
    channels: Vec<Channel>,
    by_name: BTreeMap<String, ComponentId>,
}

impl SystemModel {
    /// Creates an empty model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidName`] if `name` is empty or contains
    /// control characters.
    pub fn new(name: impl Into<String>) -> Result<Self, ModelError> {
        let name = name.into();
        validate_name(&name)?;
        Ok(SystemModel {
            name,
            components: Vec::new(),
            channels: Vec::new(),
            by_name: BTreeMap::new(),
        })
    }

    /// The model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a component and returns its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateComponent`] if the name is taken and
    /// [`ModelError::InvalidName`] if the name is empty.
    pub fn add_component(&mut self, component: Component) -> Result<ComponentId, ModelError> {
        validate_name(component.name())?;
        if self.by_name.contains_key(component.name()) {
            return Err(ModelError::DuplicateComponent(component.name().to_owned()));
        }
        let id =
            ComponentId(u32::try_from(self.components.len()).expect("component count fits u32"));
        self.by_name.insert(component.name().to_owned(), id);
        self.components.push(component);
        Ok(id)
    }

    /// Connects two components and returns the channel identifier.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidId`] for foreign identifiers and
    /// [`ModelError::SelfLoop`] if both ends are the same component.
    pub fn add_channel(
        &mut self,
        from: ComponentId,
        to: ComponentId,
        kind: ChannelKind,
    ) -> Result<ChannelId, ModelError> {
        self.add_channel_with(from, to, kind, Direction::Bidirectional, "")
    }

    /// Connects two components with an explicit direction and label.
    ///
    /// # Errors
    ///
    /// Same as [`SystemModel::add_channel`].
    pub fn add_channel_with(
        &mut self,
        from: ComponentId,
        to: ComponentId,
        kind: ChannelKind,
        direction: Direction,
        label: impl Into<String>,
    ) -> Result<ChannelId, ModelError> {
        self.check_id(from)?;
        self.check_id(to)?;
        if from == to {
            return Err(ModelError::SelfLoop(
                self.components[from.index()].name().to_owned(),
            ));
        }
        let id = ChannelId(u32::try_from(self.channels.len()).expect("channel count fits u32"));
        self.channels.push(Channel::new(
            from,
            to,
            kind,
            direction,
            label.into(),
            crate::AttributeSet::new(),
        ));
        Ok(id)
    }

    fn check_id(&self, id: ComponentId) -> Result<(), ModelError> {
        if id.index() < self.components.len() {
            Ok(())
        } else {
            Err(ModelError::InvalidId(id.to_string()))
        }
    }

    /// Number of components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Looks a component up by identifier.
    #[must_use]
    pub fn component(&self, id: ComponentId) -> Option<&Component> {
        self.components.get(id.index())
    }

    /// Mutable component lookup by identifier.
    pub fn component_mut(&mut self, id: ComponentId) -> Option<&mut Component> {
        self.components.get_mut(id.index())
    }

    /// Looks a component's identifier up by name.
    #[must_use]
    pub fn component_id(&self, name: &str) -> Option<ComponentId> {
        self.by_name.get(name).copied()
    }

    /// Looks a component up by name.
    #[must_use]
    pub fn component_by_name(&self, name: &str) -> Option<&Component> {
        self.component_id(name).and_then(|id| self.component(id))
    }

    /// Mutable component lookup by name.
    pub fn component_by_name_mut(&mut self, name: &str) -> Option<&mut Component> {
        let id = self.component_id(name)?;
        self.component_mut(id)
    }

    /// Looks a channel up by identifier.
    #[must_use]
    pub fn channel(&self, id: ChannelId) -> Option<&Channel> {
        self.channels.get(id.index())
    }

    /// Mutable channel lookup by identifier.
    pub fn channel_mut(&mut self, id: ChannelId) -> Option<&mut Channel> {
        self.channels.get_mut(id.index())
    }

    /// Iterates over `(id, component)` pairs in insertion order.
    pub fn components(&self) -> impl Iterator<Item = (ComponentId, &Component)> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (ComponentId(i as u32), c))
    }

    /// Iterates over `(id, channel)` pairs in insertion order.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId(i as u32), c))
    }

    /// Identifiers of all components marked as entry points.
    #[must_use]
    pub fn entry_points(&self) -> Vec<ComponentId> {
        self.components()
            .filter(|(_, c)| c.is_entry_point())
            .map(|(id, _)| id)
            .collect()
    }

    /// Identifiers of all components at or above the given criticality.
    #[must_use]
    pub fn components_at_criticality(&self, at_least: Criticality) -> Vec<ComponentId> {
        self.components()
            .filter(|(_, c)| c.criticality() >= at_least)
            .map(|(id, _)| id)
            .collect()
    }

    /// Identifiers of all components of `kind`.
    #[must_use]
    pub fn components_of_kind(&self, kind: ComponentKind) -> Vec<ComponentId> {
        self.components()
            .filter(|(_, c)| c.kind() == kind)
            .map(|(id, _)| id)
            .collect()
    }

    /// Neighbours reachable in one hop from `id`, honouring channel
    /// direction, in deterministic (channel insertion) order with
    /// duplicates removed.
    #[must_use]
    pub fn neighbors(&self, id: ComponentId) -> Vec<ComponentId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for ch in &self.channels {
            if ch.carries_from(id) {
                if let Some(other) = ch.other_end(id) {
                    if seen.insert(other) {
                        out.push(other);
                    }
                }
            }
        }
        out
    }

    /// Degree (number of incident channels, regardless of direction).
    #[must_use]
    pub fn degree(&self, id: ComponentId) -> usize {
        self.channels
            .iter()
            .filter(|ch| ch.from() == id || ch.to() == id)
            .count()
    }

    /// Every component reachable from `start` (excluding `start` itself
    /// unless a cycle returns to it), honouring direction.
    #[must_use]
    pub fn reachable_from(&self, start: ComponentId) -> BTreeSet<ComponentId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        while let Some(node) = queue.pop_front() {
            for next in self.neighbors(node) {
                if next != start && seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        seen
    }

    /// Shortest hop path from `from` to `to`, inclusive of both ends.
    ///
    /// Returns `None` when unreachable. Deterministic: among equal-length
    /// paths the one using earliest-inserted channels wins.
    #[must_use]
    pub fn shortest_path(&self, from: ComponentId, to: ComponentId) -> Option<Vec<ComponentId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<ComponentId, ComponentId> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(node) = queue.pop_front() {
            for next in self.neighbors(node) {
                if next != from && !prev.contains_key(&next) {
                    prev.insert(next, node);
                    if next == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(&p) = prev.get(&cur) {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// All simple paths from `from` to `to` of length at most `max_hops`
    /// channels, in deterministic order. Intended for attack-path
    /// enumeration on architecture-scale graphs (tens of nodes).
    #[must_use]
    pub fn simple_paths(
        &self,
        from: ComponentId,
        to: ComponentId,
        max_hops: usize,
    ) -> Vec<Vec<ComponentId>> {
        let mut paths = Vec::new();
        let mut stack = vec![from];
        let mut on_path: BTreeSet<ComponentId> = BTreeSet::from([from]);
        self.dfs_paths(to, max_hops, &mut stack, &mut on_path, &mut paths);
        paths
    }

    fn dfs_paths(
        &self,
        to: ComponentId,
        max_hops: usize,
        stack: &mut Vec<ComponentId>,
        on_path: &mut BTreeSet<ComponentId>,
        paths: &mut Vec<Vec<ComponentId>>,
    ) {
        let current = *stack.last().expect("stack never empty");
        if current == to {
            paths.push(stack.clone());
            return;
        }
        if stack.len() > max_hops {
            return;
        }
        for next in self.neighbors(current) {
            if on_path.insert(next) {
                stack.push(next);
                self.dfs_paths(to, max_hops, stack, on_path, paths);
                stack.pop();
                on_path.remove(&next);
            }
        }
    }

    /// Projects the model to a fidelity level: same topology, attributes
    /// filtered to those visible at `level`.
    #[must_use]
    pub fn at_fidelity(&self, level: Fidelity) -> SystemModel {
        SystemModel {
            name: self.name.clone(),
            components: self
                .components
                .iter()
                .map(|c| c.at_fidelity(level))
                .collect(),
            channels: self.channels.iter().map(|c| c.at_fidelity(level)).collect(),
            by_name: self.by_name.clone(),
        }
    }

    /// Components with no channels at all — usually a modeling omission
    /// (the paper's analyses walk the graph; an unconnected asset is
    /// invisible to path analysis), returned so reports can flag it.
    #[must_use]
    pub fn isolated_components(&self) -> Vec<ComponentId> {
        self.components()
            .filter(|(id, _)| self.degree(*id) == 0)
            .map(|(id, _)| id)
            .collect()
    }

    /// Checks structural invariants: endpoint ids in range, no self loops,
    /// name index consistent.
    ///
    /// A freshly built model always validates; this guards models coming in
    /// from interchange formats.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`ModelError`].
    pub fn validate(&self) -> Result<(), ModelError> {
        for (name, id) in &self.by_name {
            let comp = self
                .components
                .get(id.index())
                .ok_or_else(|| ModelError::InvalidId(id.to_string()))?;
            if comp.name() != name {
                return Err(ModelError::Malformed(format!(
                    "name index entry `{name}` points at component `{}`",
                    comp.name()
                )));
            }
        }
        if self.by_name.len() != self.components.len() {
            return Err(ModelError::Malformed(
                "name index size differs from component count".to_owned(),
            ));
        }
        for ch in &self.channels {
            self.check_id(ch.from())?;
            self.check_id(ch.to())?;
            if ch.from() == ch.to() {
                return Err(ModelError::SelfLoop(
                    self.components[ch.from().index()].name().to_owned(),
                ));
            }
        }
        Ok(())
    }

    /// Computes summary statistics.
    #[must_use]
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            components: self.components.len(),
            channels: self.channels.len(),
            attributes: self
                .components
                .iter()
                .map(|c| c.attributes().len())
                .sum::<usize>()
                + self
                    .channels
                    .iter()
                    .map(|c| c.attributes().len())
                    .sum::<usize>(),
            entry_points: self
                .components
                .iter()
                .filter(|c| c.is_entry_point())
                .count(),
            safety_critical: self
                .components
                .iter()
                .filter(|c| c.criticality() == Criticality::SafetyCritical)
                .count(),
        }
    }
}

fn validate_name(name: &str) -> Result<(), ModelError> {
    if name.is_empty() || name.chars().any(char::is_control) {
        return Err(ModelError::InvalidName(name.to_owned()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemModelBuilder;

    fn line3() -> SystemModel {
        SystemModelBuilder::new("line")
            .component("a", ComponentKind::Workstation)
            .component("b", ComponentKind::Firewall)
            .component("c", ComponentKind::Controller)
            .channel("a", "b", ChannelKind::Ethernet)
            .channel("b", "c", ChannelKind::Ethernet)
            .build()
            .unwrap()
    }

    #[test]
    fn duplicate_component_names_are_rejected() {
        let mut m = SystemModel::new("m").unwrap();
        m.add_component(Component::new("x", ComponentKind::Other))
            .unwrap();
        let err = m
            .add_component(Component::new("x", ComponentKind::Other))
            .unwrap_err();
        assert_eq!(err, ModelError::DuplicateComponent("x".into()));
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut m = SystemModel::new("m").unwrap();
        let a = m
            .add_component(Component::new("a", ComponentKind::Other))
            .unwrap();
        assert_eq!(
            m.add_channel(a, a, ChannelKind::Logical).unwrap_err(),
            ModelError::SelfLoop("a".into())
        );
    }

    #[test]
    fn foreign_ids_are_rejected() {
        let mut m = SystemModel::new("m").unwrap();
        let a = m
            .add_component(Component::new("a", ComponentKind::Other))
            .unwrap();
        let bogus = ComponentId(99);
        assert!(matches!(
            m.add_channel(a, bogus, ChannelKind::Logical),
            Err(ModelError::InvalidId(_))
        ));
    }

    #[test]
    fn empty_names_are_rejected() {
        assert!(SystemModel::new("").is_err());
        let mut m = SystemModel::new("m").unwrap();
        assert!(m
            .add_component(Component::new("", ComponentKind::Other))
            .is_err());
        assert!(m
            .add_component(Component::new("a\nb", ComponentKind::Other))
            .is_err());
    }

    #[test]
    fn neighbors_honour_direction() {
        let mut m = SystemModel::new("m").unwrap();
        let a = m
            .add_component(Component::new("a", ComponentKind::Other))
            .unwrap();
        let b = m
            .add_component(Component::new("b", ComponentKind::Other))
            .unwrap();
        m.add_channel_with(a, b, ChannelKind::Serial, Direction::Forward, "tx")
            .unwrap();
        assert_eq!(m.neighbors(a), vec![b]);
        assert!(m.neighbors(b).is_empty());
    }

    #[test]
    fn neighbors_deduplicate_parallel_channels() {
        let mut m = SystemModel::new("m").unwrap();
        let a = m
            .add_component(Component::new("a", ComponentKind::Other))
            .unwrap();
        let b = m
            .add_component(Component::new("b", ComponentKind::Other))
            .unwrap();
        m.add_channel(a, b, ChannelKind::Ethernet).unwrap();
        m.add_channel(a, b, ChannelKind::Serial).unwrap();
        assert_eq!(m.neighbors(a), vec![b]);
        assert_eq!(m.degree(a), 2);
    }

    #[test]
    fn reachability_crosses_hops() {
        let m = line3();
        let a = m.component_id("a").unwrap();
        let c = m.component_id("c").unwrap();
        let reach = m.reachable_from(a);
        assert!(reach.contains(&c));
        assert_eq!(reach.len(), 2);
    }

    #[test]
    fn shortest_path_finds_the_line() {
        let m = line3();
        let a = m.component_id("a").unwrap();
        let b = m.component_id("b").unwrap();
        let c = m.component_id("c").unwrap();
        assert_eq!(m.shortest_path(a, c), Some(vec![a, b, c]));
        assert_eq!(m.shortest_path(a, a), Some(vec![a]));
    }

    #[test]
    fn shortest_path_none_when_unreachable() {
        let mut m = SystemModel::new("m").unwrap();
        let a = m
            .add_component(Component::new("a", ComponentKind::Other))
            .unwrap();
        let b = m
            .add_component(Component::new("b", ComponentKind::Other))
            .unwrap();
        assert_eq!(m.shortest_path(a, b), None);
    }

    #[test]
    fn simple_paths_enumerates_alternatives() {
        // a - b - d and a - c - d: two simple paths.
        let m = SystemModelBuilder::new("diamond")
            .component("a", ComponentKind::Other)
            .component("b", ComponentKind::Other)
            .component("c", ComponentKind::Other)
            .component("d", ComponentKind::Other)
            .channel("a", "b", ChannelKind::Ethernet)
            .channel("a", "c", ChannelKind::Ethernet)
            .channel("b", "d", ChannelKind::Ethernet)
            .channel("c", "d", ChannelKind::Ethernet)
            .build()
            .unwrap();
        let a = m.component_id("a").unwrap();
        let d = m.component_id("d").unwrap();
        let paths = m.simple_paths(a, d, 4);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.first(), Some(&a));
            assert_eq!(p.last(), Some(&d));
        }
    }

    #[test]
    fn simple_paths_respects_hop_budget() {
        let m = line3();
        let a = m.component_id("a").unwrap();
        let c = m.component_id("c").unwrap();
        assert!(m.simple_paths(a, c, 1).is_empty());
        assert_eq!(m.simple_paths(a, c, 2).len(), 1);
    }

    #[test]
    fn stats_count_everything() {
        let m = line3();
        let s = m.stats();
        assert_eq!(s.components, 3);
        assert_eq!(s.channels, 2);
        assert_eq!(s.entry_points, 0);
    }

    #[test]
    fn validate_accepts_built_models() {
        line3().validate().unwrap();
    }

    #[test]
    fn at_fidelity_keeps_topology() {
        let m = line3();
        let projected = m.at_fidelity(Fidelity::Conceptual);
        assert_eq!(projected.component_count(), m.component_count());
        assert_eq!(projected.channel_count(), m.channel_count());
        assert_eq!(projected.component_id("b"), m.component_id("b"));
    }

    #[test]
    fn isolated_components_are_flagged() {
        let mut m = line3();
        assert!(m.isolated_components().is_empty());
        let orphan = m
            .add_component(Component::new("orphan", ComponentKind::Historian))
            .unwrap();
        assert_eq!(m.isolated_components(), vec![orphan]);
    }

    #[test]
    fn component_mut_by_name_edits_in_place() {
        let mut m = line3();
        m.component_by_name_mut("c")
            .unwrap()
            .set_criticality(Criticality::SafetyCritical);
        assert_eq!(
            m.components_at_criticality(Criticality::SafetyCritical)
                .len(),
            1
        );
    }
}
