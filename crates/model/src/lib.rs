//! General architectural graph model for cyber-physical systems.
//!
//! This crate implements the first capability demanded by *"Fundamental
//! Challenges of Cyber-Physical Systems Security Modeling"* (DSN 2020):
//! exporting modeling-language-specific system models into a **general
//! architectural model** that downstream security tooling can consume.
//!
//! The model is a typed property graph: [`Component`]s (nodes) carry a
//! [`ComponentKind`], a set of [`Attribute`]s tagged with the
//! [`Fidelity`] level at which they become visible, a [`Criticality`]
//! and an entry-point marker; [`Channel`]s (edges) carry a
//! [`ChannelKind`] and their own attributes. [`SystemModel`] owns both and
//! offers graph queries (neighbours, reachability, paths), validation,
//! fidelity projection, diffing, and GraphML interchange compatible in
//! spirit with the paper's SysML→GraphML exporter.
//!
//! # Examples
//!
//! ```
//! use cpssec_model::{SystemModelBuilder, ComponentKind, ChannelKind};
//!
//! # fn main() -> Result<(), cpssec_model::ModelError> {
//! let model = SystemModelBuilder::new("plant")
//!     .component("controller", ComponentKind::Controller)
//!     .component("valve", ComponentKind::Actuator)
//!     .channel("controller", "valve", ChannelKind::Analog)
//!     .build()?;
//! assert_eq!(model.component_count(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribute;
mod builder;
mod channel;
mod component;
mod diff;
mod error;
mod fidelity;
mod graph;
mod graphml;
mod hash;
mod ident;
mod kind;
pub mod xml;

pub use attribute::{Attribute, AttributeKind, AttributeSet};
pub use builder::SystemModelBuilder;
pub use channel::Channel;
pub use component::{Component, Criticality};
pub use diff::{AttributeChange, ComponentChange, ModelDiff};
pub use error::ModelError;
pub use fidelity::Fidelity;
pub use graph::{ModelStats, SystemModel};
pub use graphml::{from_graphml, to_graphml};
pub use hash::{fnv1a_64, fnv1a_64_wide, Fnv64};
pub use ident::{ChannelId, ComponentId};
pub use kind::{ChannelKind, ComponentKind, Direction};
