//! Channels: the edges of the architectural graph.

use core::fmt;

use crate::{AttributeSet, ChannelKind, ComponentId, Direction, Fidelity};

/// An edge of the architectural graph: an interaction path between two
/// components, with its own medium, direction, and attributes.
///
/// Channels are created through
/// [`SystemModelBuilder`](crate::SystemModelBuilder) or
/// [`SystemModel::add_channel`](crate::SystemModel::add_channel).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Channel {
    from: ComponentId,
    to: ComponentId,
    kind: ChannelKind,
    direction: Direction,
    label: String,
    attributes: AttributeSet,
}

impl Channel {
    pub(crate) fn new(
        from: ComponentId,
        to: ComponentId,
        kind: ChannelKind,
        direction: Direction,
        label: String,
        attributes: AttributeSet,
    ) -> Self {
        Channel {
            from,
            to,
            kind,
            direction,
            label,
            attributes,
        }
    }

    /// The component at the `from` end.
    #[must_use]
    pub fn from(&self) -> ComponentId {
        self.from
    }

    /// The component at the `to` end.
    #[must_use]
    pub fn to(&self) -> ComponentId {
        self.to
    }

    /// The medium.
    #[must_use]
    pub fn kind(&self) -> ChannelKind {
        self.kind
    }

    /// The direction of flow.
    #[must_use]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// A short human-readable label (may be empty).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The attached attributes (protocols, link parameters).
    #[must_use]
    pub fn attributes(&self) -> &AttributeSet {
        &self.attributes
    }

    /// Mutable access to the attached attributes.
    pub fn attributes_mut(&mut self) -> &mut AttributeSet {
        &mut self.attributes
    }

    /// Returns `true` if traffic can flow from `source` toward the other
    /// end, honouring [`Direction::Forward`].
    #[must_use]
    pub fn carries_from(&self, source: ComponentId) -> bool {
        match self.direction {
            Direction::Bidirectional => source == self.from || source == self.to,
            Direction::Forward => source == self.from,
        }
    }

    /// Returns the opposite endpoint if `side` is one of the two ends.
    #[must_use]
    pub fn other_end(&self, side: ComponentId) -> Option<ComponentId> {
        if side == self.from {
            Some(self.to)
        } else if side == self.to {
            Some(self.from)
        } else {
            None
        }
    }

    /// The searchable text of this channel at `level`: its label, medium
    /// name, and every visible attribute value — the interaction-side
    /// counterpart of [`Component::search_text`](crate::Component::search_text).
    #[must_use]
    pub fn search_text(&self, level: Fidelity) -> String {
        let mut text = self.label.clone();
        if !text.is_empty() {
            text.push(' ');
        }
        text.push_str(self.kind.as_str());
        for attr in self.attributes.visible_at(level) {
            text.push(' ');
            text.push_str(attr.value());
        }
        text
    }

    /// Returns a copy containing only attributes visible at `level`.
    #[must_use]
    pub fn at_fidelity(&self, level: Fidelity) -> Channel {
        Channel {
            from: self.from,
            to: self.to,
            kind: self.kind,
            direction: self.direction,
            label: self.label.clone(),
            attributes: self.attributes.visible_at(level).cloned().collect(),
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.direction {
            Direction::Bidirectional => "<->",
            Direction::Forward => "->",
        };
        write!(f, "{} {arrow} {} [{}]", self.from, self.to, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, AttributeKind};

    fn ids() -> (ComponentId, ComponentId) {
        (ComponentId(0), ComponentId(1))
    }

    fn link(direction: Direction) -> Channel {
        let (a, b) = ids();
        Channel::new(
            a,
            b,
            ChannelKind::Fieldbus,
            direction,
            "bus".into(),
            AttributeSet::new(),
        )
    }

    #[test]
    fn bidirectional_carries_from_both_ends() {
        let (a, b) = ids();
        let ch = link(Direction::Bidirectional);
        assert!(ch.carries_from(a));
        assert!(ch.carries_from(b));
    }

    #[test]
    fn forward_carries_only_from_source() {
        let (a, b) = ids();
        let ch = link(Direction::Forward);
        assert!(ch.carries_from(a));
        assert!(!ch.carries_from(b));
    }

    #[test]
    fn other_end_is_symmetric_and_checked() {
        let (a, b) = ids();
        let ch = link(Direction::Bidirectional);
        assert_eq!(ch.other_end(a), Some(b));
        assert_eq!(ch.other_end(b), Some(a));
        assert_eq!(ch.other_end(ComponentId(9)), None);
    }

    #[test]
    fn at_fidelity_filters_channel_attributes() {
        let (a, b) = ids();
        let mut attrs = AttributeSet::new();
        attrs.insert(
            Attribute::new(AttributeKind::Protocol, "MODBUS/TCP")
                .at_fidelity(Fidelity::Architectural),
        );
        let ch = Channel::new(
            a,
            b,
            ChannelKind::Ethernet,
            Direction::Bidirectional,
            String::new(),
            attrs,
        );
        assert!(ch.at_fidelity(Fidelity::Conceptual).attributes().is_empty());
        assert_eq!(
            ch.at_fidelity(Fidelity::Architectural).attributes().len(),
            1
        );
    }

    #[test]
    fn search_text_includes_label_kind_and_visible_attributes() {
        let (a, b) = ids();
        let mut attrs = AttributeSet::new();
        attrs.insert(
            Attribute::new(AttributeKind::Protocol, "MODBUS/TCP")
                .at_fidelity(Fidelity::Architectural),
        );
        let ch = Channel::new(
            a,
            b,
            ChannelKind::Fieldbus,
            Direction::Bidirectional,
            "control bus".into(),
            attrs,
        );
        let abstract_text = ch.search_text(Fidelity::Conceptual);
        assert!(abstract_text.contains("control bus"));
        assert!(abstract_text.contains("fieldbus"));
        assert!(!abstract_text.contains("MODBUS"));
        let concrete_text = ch.search_text(Fidelity::Architectural);
        assert!(concrete_text.contains("MODBUS/TCP"));
    }

    #[test]
    fn display_reflects_direction() {
        assert!(link(Direction::Bidirectional).to_string().contains("<->"));
        assert!(link(Direction::Forward).to_string().contains("->"));
    }
}
