//! GraphML interchange.
//!
//! The paper's prototype exports SysML models to GraphML [11]; this module
//! writes and reads the same structure. Component and channel properties are
//! carried in `<data>` elements under stable key ids; attributes are encoded
//! one `<data key="attr">kind|key|fidelity|value</data>` element each, so a
//! round trip preserves the full model.

use std::fmt::Write as _;

use crate::xml::{escape, Event, Reader};
use crate::{
    Attribute, AttributeKind, ChannelKind, Component, ComponentKind, Criticality, Direction,
    Fidelity, ModelError, SystemModel,
};

const KEYS: &[(&str, &str, &str)] = &[
    // (id, for, attr.name)
    ("d_kind", "node", "kind"),
    ("d_crit", "node", "criticality"),
    ("d_entry", "node", "entry-point"),
    ("d_attr", "all", "attr"),
    ("d_ckind", "edge", "kind"),
    ("d_dir", "edge", "direction"),
    ("d_label", "edge", "label"),
];

/// Serializes a model to a GraphML document.
///
/// # Examples
///
/// ```
/// use cpssec_model::{SystemModelBuilder, ComponentKind, to_graphml, from_graphml};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = SystemModelBuilder::new("m")
///     .component("a", ComponentKind::Controller)
///     .build()?;
/// let xml = to_graphml(&model);
/// let back = from_graphml(&xml)?;
/// assert_eq!(back.component_count(), 1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_graphml(model: &SystemModel) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n");
    for (id, target, name) in KEYS {
        let _ = writeln!(
            out,
            "  <key id=\"{id}\" for=\"{target}\" attr.name=\"{name}\" attr.type=\"string\"/>"
        );
    }
    let _ = writeln!(
        out,
        "  <graph id=\"{}\" edgedefault=\"undirected\">",
        escape(model.name())
    );
    for (id, comp) in model.components() {
        let _ = writeln!(out, "    <node id=\"{id}\">");
        let _ = writeln!(
            out,
            "      <data key=\"d_kind\">{}</data>",
            comp.kind().as_str()
        );
        let _ = writeln!(
            out,
            "      <data key=\"d_crit\">{}</data>",
            comp.criticality().as_str()
        );
        if comp.is_entry_point() {
            out.push_str("      <data key=\"d_entry\">true</data>\n");
        }
        // The component name is stored as an attr-like data entry so import
        // does not have to rely on node ids.
        let _ = writeln!(
            out,
            "      <data key=\"d_attr\">{}</data>",
            escape(&encode_name(comp.name()))
        );
        for attr in comp.attributes().iter() {
            let _ = writeln!(
                out,
                "      <data key=\"d_attr\">{}</data>",
                escape(&encode_attr(attr))
            );
        }
        out.push_str("    </node>\n");
    }
    for (id, ch) in model.channels() {
        let _ = writeln!(
            out,
            "    <edge id=\"{id}\" source=\"{}\" target=\"{}\">",
            ch.from(),
            ch.to()
        );
        let _ = writeln!(
            out,
            "      <data key=\"d_ckind\">{}</data>",
            ch.kind().as_str()
        );
        let _ = writeln!(
            out,
            "      <data key=\"d_dir\">{}</data>",
            ch.direction().as_str()
        );
        if !ch.label().is_empty() {
            let _ = writeln!(
                out,
                "      <data key=\"d_label\">{}</data>",
                escape_preserving_edges(ch.label())
            );
        }
        for attr in ch.attributes().iter() {
            let _ = writeln!(
                out,
                "      <data key=\"d_attr\">{}</data>",
                escape(&encode_attr(attr))
            );
        }
        out.push_str("    </edge>\n");
    }
    out.push_str("  </graph>\n</graphml>\n");
    out
}

fn encode_name(name: &str) -> String {
    format!("__name|||{name}")
}

/// Escapes `|` inside a payload field so the `kind|key|fidelity|value` split
/// stays unambiguous. Only the key needs this: kind and fidelity are
/// enum-generated and the value is the tail of a bounded split, so pipes in
/// it survive verbatim.
fn encode_field(field: &str) -> String {
    field.replace('%', "%25").replace('|', "%7C")
}

fn decode_field(field: &str) -> String {
    field.replace("%7C", "|").replace("%25", "%")
}

fn encode_attr(attr: &Attribute) -> String {
    format!(
        "{}|{}|{}|{}",
        attr.kind().as_str(),
        encode_field(attr.key()),
        attr.fidelity().as_str(),
        attr.value()
    )
}

fn decode_attr(text: &str) -> Result<Attribute, ModelError> {
    let mut parts = text.splitn(4, '|');
    let kind: AttributeKind = parts
        .next()
        .ok_or_else(|| malformed("attr kind"))?
        .parse()?;
    let key = decode_field(parts.next().ok_or_else(|| malformed("attr key"))?);
    let fidelity: Fidelity = parts
        .next()
        .ok_or_else(|| malformed("attr fidelity"))?
        .parse()?;
    let value = parts.next().ok_or_else(|| malformed("attr value"))?;
    let attr = if kind == AttributeKind::Custom {
        Attribute::custom(key, value)
    } else {
        Attribute::new(kind, value)
    };
    Ok(attr.at_fidelity(fidelity))
}

/// Escapes character data, additionally writing leading and trailing
/// whitespace as numeric character references so readers cannot mistake it
/// for layout indentation (the XML reader drops literal whitespace-only
/// runs, and enumeration payloads are trimmed on import).
fn escape_preserving_edges(text: &str) -> String {
    let core_start = text.len() - text.trim_start().len();
    let core_end = text.trim_end().len();
    let mut out = String::with_capacity(text.len());
    for ch in text[..core_start].chars() {
        let _ = write!(out, "&#{};", ch as u32);
    }
    out.push_str(&escape(&text[core_start..core_end.max(core_start)]));
    for ch in text[core_end.max(core_start)..].chars() {
        let _ = write!(out, "&#{};", ch as u32);
    }
    out
}

fn malformed(what: &str) -> ModelError {
    ModelError::Malformed(format!("missing {what}"))
}

#[derive(Debug, Default)]
struct NodeDraft {
    xml_id: String,
    name: Option<String>,
    kind: Option<ComponentKind>,
    criticality: Criticality,
    entry_point: bool,
    attributes: Vec<Attribute>,
}

#[derive(Debug, Default)]
struct EdgeDraft {
    source: String,
    target: String,
    kind: Option<ChannelKind>,
    direction: Direction,
    label: String,
    attributes: Vec<Attribute>,
}

/// Parses a GraphML document produced by [`to_graphml`] (or by compatible
/// exporters using the same key names) back into a [`SystemModel`].
///
/// # Errors
///
/// [`ModelError::Malformed`] for structural problems, plus any model
/// construction error (duplicate names, self loops).
pub fn from_graphml(input: &str) -> Result<SystemModel, ModelError> {
    let mut reader = Reader::new(input);
    let mut graph_name = String::from("imported");
    let mut nodes: Vec<NodeDraft> = Vec::new();
    let mut edges: Vec<EdgeDraft> = Vec::new();
    let mut stack: Vec<String> = Vec::new();
    let mut current_key = String::new();

    while let Some(event) = reader
        .next_event()
        .map_err(|e| ModelError::Malformed(e.to_string()))?
    {
        match event {
            Event::Open {
                name,
                attributes,
                self_closing,
            } => {
                match name.as_str() {
                    "graph" => {
                        if let Some((_, v)) = attributes.iter().find(|(k, _)| k == "id") {
                            graph_name = v.clone();
                        }
                    }
                    "node" => {
                        let xml_id = attributes
                            .iter()
                            .find(|(k, _)| k == "id")
                            .map(|(_, v)| v.clone())
                            .ok_or_else(|| malformed("node id"))?;
                        nodes.push(NodeDraft {
                            xml_id,
                            ..NodeDraft::default()
                        });
                    }
                    "edge" => {
                        let get = |key: &str| {
                            attributes
                                .iter()
                                .find(|(k, _)| k == key)
                                .map(|(_, v)| v.clone())
                        };
                        edges.push(EdgeDraft {
                            source: get("source").ok_or_else(|| malformed("edge source"))?,
                            target: get("target").ok_or_else(|| malformed("edge target"))?,
                            ..EdgeDraft::default()
                        });
                    }
                    "data" => {
                        current_key = attributes
                            .iter()
                            .find(|(k, _)| k == "key")
                            .map(|(_, v)| v.clone())
                            .unwrap_or_default();
                    }
                    _ => {}
                }
                if !self_closing {
                    stack.push(name);
                }
            }
            Event::Close(name) => {
                if name == "data" {
                    current_key.clear();
                }
                stack.pop();
            }
            Event::Text(text) => {
                if stack.last().map(String::as_str) != Some("data") {
                    continue;
                }
                let in_node = stack.iter().rev().any(|s| s == "node");
                let in_edge = stack.iter().rev().any(|s| s == "edge");
                // Attribute and label payloads are preserved verbatim
                // (values may legitimately contain leading or trailing
                // whitespace); enumeration-valued keys are trimmed for
                // robustness against pretty-printed input.
                let verbatim = current_key == "d_attr" || current_key == "d_label";
                let payload = if verbatim { &text } else { text.trim() };
                if in_node {
                    let node = nodes.last_mut().ok_or_else(|| malformed("node context"))?;
                    apply_node_data(node, &current_key, payload)?;
                } else if in_edge {
                    let edge = edges.last_mut().ok_or_else(|| malformed("edge context"))?;
                    apply_edge_data(edge, &current_key, payload)?;
                }
            }
        }
    }

    let mut model = SystemModel::new(graph_name)?;
    let mut ids = std::collections::BTreeMap::new();
    for draft in nodes {
        let name = draft.name.clone().unwrap_or_else(|| draft.xml_id.clone());
        let mut comp = Component::new(name, draft.kind.unwrap_or(ComponentKind::Other))
            .with_criticality(draft.criticality)
            .with_entry_point(draft.entry_point);
        for attr in draft.attributes {
            comp.attributes_mut().insert(attr);
        }
        let id = model.add_component(comp)?;
        ids.insert(draft.xml_id, id);
    }
    for draft in edges {
        let from = *ids
            .get(&draft.source)
            .ok_or_else(|| ModelError::UnknownComponent(draft.source.clone()))?;
        let to = *ids
            .get(&draft.target)
            .ok_or_else(|| ModelError::UnknownComponent(draft.target.clone()))?;
        let ch = model.add_channel_with(
            from,
            to,
            draft.kind.unwrap_or(ChannelKind::Logical),
            draft.direction,
            draft.label,
        )?;
        let channel = model.channel_mut(ch).expect("just-created channel exists");
        for attr in draft.attributes {
            channel.attributes_mut().insert(attr);
        }
    }
    model.validate()?;
    Ok(model)
}

fn apply_node_data(node: &mut NodeDraft, key: &str, text: &str) -> Result<(), ModelError> {
    match key {
        "d_kind" => node.kind = Some(text.parse()?),
        "d_crit" => node.criticality = text.parse()?,
        "d_entry" => node.entry_point = text == "true",
        "d_attr" => {
            if let Some(name) = text.strip_prefix("__name|||") {
                node.name = Some(name.to_owned());
            } else {
                node.attributes.push(decode_attr(text)?);
            }
        }
        _ => {}
    }
    Ok(())
}

fn apply_edge_data(edge: &mut EdgeDraft, key: &str, text: &str) -> Result<(), ModelError> {
    match key {
        "d_ckind" => edge.kind = Some(text.parse()?),
        "d_dir" => edge.direction = text.parse()?,
        "d_label" => edge.label = text.to_owned(),
        "d_attr" => edge.attributes.push(decode_attr(text)?),
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemModelBuilder;

    fn sample() -> SystemModel {
        SystemModelBuilder::new("scada & co")
            .component_with("Programming WS", ComponentKind::Workstation, |c| {
                c.with_entry_point(true)
                    .with_attribute(Attribute::new(AttributeKind::OperatingSystem, "Windows 7"))
                    .with_attribute(
                        Attribute::new(AttributeKind::Software, "LabVIEW <2019>")
                            .at_fidelity(Fidelity::Implementation),
                    )
            })
            .component_with("SIS platform", ComponentKind::SafetySystem, |c| {
                c.with_criticality(Criticality::SafetyCritical)
                    .with_attribute(Attribute::custom("rack", "A1"))
            })
            .channel_with(
                "Programming WS",
                "SIS platform",
                ChannelKind::Ethernet,
                Direction::Forward,
                "eng link",
                vec![Attribute::new(AttributeKind::Protocol, "MODBUS/TCP")],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let model = sample();
        let xml = to_graphml(&model);
        let back = from_graphml(&xml).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn export_escapes_special_characters() {
        let xml = to_graphml(&sample());
        assert!(xml.contains("scada &amp; co"));
        assert!(xml.contains("LabVIEW &lt;2019&gt;"));
    }

    #[test]
    fn import_tolerates_unknown_data_keys() {
        let xml = r#"<graphml><graph id="g" edgedefault="undirected">
            <node id="n0">
              <data key="d_kind">controller</data>
              <data key="d_color">blue</data>
            </node>
        </graph></graphml>"#;
        let model = from_graphml(xml).unwrap();
        assert_eq!(model.component_count(), 1);
        assert_eq!(
            model.components().next().unwrap().1.kind(),
            ComponentKind::Controller
        );
    }

    #[test]
    fn import_defaults_name_to_xml_id() {
        let xml = r#"<graphml><graph id="g" edgedefault="undirected">
            <node id="plc7"><data key="d_kind">controller</data></node>
        </graph></graphml>"#;
        let model = from_graphml(xml).unwrap();
        assert!(model.component_by_name("plc7").is_some());
    }

    #[test]
    fn import_rejects_edges_to_missing_nodes() {
        let xml = r#"<graphml><graph id="g" edgedefault="undirected">
            <node id="a"/>
            <edge id="e0" source="a" target="ghost"/>
        </graph></graphml>"#;
        assert!(matches!(
            from_graphml(xml),
            Err(ModelError::UnknownComponent(_))
        ));
    }

    #[test]
    fn import_rejects_malformed_xml() {
        assert!(matches!(
            from_graphml("<graphml><graph>"),
            Err(ModelError::Malformed(_))
        ));
    }

    #[test]
    fn round_trip_preserves_fidelity_tags() {
        let model = sample();
        let back = from_graphml(&to_graphml(&model)).unwrap();
        let ws = back.component_by_name("Programming WS").unwrap();
        let lv = ws
            .attributes()
            .iter()
            .find(|a| a.value().starts_with("LabVIEW"))
            .unwrap();
        assert_eq!(lv.fidelity(), Fidelity::Implementation);
    }

    #[test]
    fn empty_graph_round_trips() {
        let model = SystemModel::new("empty").unwrap();
        let back = from_graphml(&to_graphml(&model)).unwrap();
        assert_eq!(back.component_count(), 0);
        assert_eq!(back.name(), "empty");
    }
}
