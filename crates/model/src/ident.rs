//! Opaque identifiers for model elements.

use core::fmt;

/// Identifier of a [`Component`](crate::Component) within one
/// [`SystemModel`](crate::SystemModel).
///
/// Identifiers are dense indices assigned in insertion order. They are only
/// meaningful for the model that issued them; using an identifier from a
/// different model yields a lookup error, never a panic.
///
/// # Examples
///
/// ```
/// use cpssec_model::{SystemModelBuilder, ComponentKind};
///
/// # fn main() -> Result<(), cpssec_model::ModelError> {
/// let model = SystemModelBuilder::new("m")
///     .component("a", ComponentKind::Controller)
///     .build()?;
/// let id = model.component_id("a").unwrap();
/// assert_eq!(model.component(id).unwrap().name(), "a");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComponentId(pub(crate) u32);

/// Identifier of a [`Channel`](crate::Channel) within one
/// [`SystemModel`](crate::SystemModel).
///
/// See [`ComponentId`] for identifier semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelId(pub(crate) u32);

impl ComponentId {
    /// Returns the dense index backing this identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ChannelId {
    /// Returns the dense index backing this identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_graphml_convention() {
        assert_eq!(ComponentId(3).to_string(), "n3");
        assert_eq!(ChannelId(7).to_string(), "e7");
    }

    #[test]
    fn ordering_follows_insertion_index() {
        assert!(ComponentId(1) < ComponentId(2));
        assert!(ChannelId(0) < ChannelId(9));
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(ComponentId(42).index(), 42);
        assert_eq!(ChannelId(13).index(), 13);
    }
}
