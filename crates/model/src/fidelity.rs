//! Model fidelity levels and refinement ordering.

use core::fmt;
use core::str::FromStr;

use crate::ModelError;

/// How close a model element is to the eventual implementation.
///
/// The paper argues the attack-vector result space is "highly sensitive to
/// the fidelity of the model": abstract models relate to attack patterns and
/// weaknesses, implementation-level models relate to concrete
/// vulnerabilities. Attributes carry the fidelity at which they become
/// visible, and [`SystemModel::at_fidelity`](crate::SystemModel::at_fidelity)
/// projects a model down to a chosen level.
///
/// The ordering is `Conceptual < Architectural < Implementation`; refining a
/// model only ever *adds* information.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Fidelity {
    /// Mission-level: functions and flows, no technology choices.
    #[default]
    Conceptual,
    /// Architecture-level: component roles, protocols, vendor families.
    Architectural,
    /// Implementation-level: exact products, versions, operating systems.
    Implementation,
}

impl Fidelity {
    /// All levels from most abstract to most concrete.
    pub const ALL: [Fidelity; 3] = [
        Fidelity::Conceptual,
        Fidelity::Architectural,
        Fidelity::Implementation,
    ];

    /// Returns the canonical lowercase name used in GraphML interchange.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Fidelity::Conceptual => "conceptual",
            Fidelity::Architectural => "architectural",
            Fidelity::Implementation => "implementation",
        }
    }

    /// Returns the next, more concrete level, or `None` at the bottom.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpssec_model::Fidelity;
    /// assert_eq!(Fidelity::Conceptual.refined(), Some(Fidelity::Architectural));
    /// assert_eq!(Fidelity::Implementation.refined(), None);
    /// ```
    #[must_use]
    pub fn refined(self) -> Option<Fidelity> {
        match self {
            Fidelity::Conceptual => Some(Fidelity::Architectural),
            Fidelity::Architectural => Some(Fidelity::Implementation),
            Fidelity::Implementation => None,
        }
    }

    /// Returns the previous, more abstract level, or `None` at the top.
    #[must_use]
    pub fn abstracted(self) -> Option<Fidelity> {
        match self {
            Fidelity::Conceptual => None,
            Fidelity::Architectural => Some(Fidelity::Conceptual),
            Fidelity::Implementation => Some(Fidelity::Architectural),
        }
    }

    /// Returns `true` when an attribute introduced at `self` is visible in a
    /// model projected to `level`.
    #[must_use]
    pub fn visible_at(self, level: Fidelity) -> bool {
        self <= level
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Fidelity {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fidelity::ALL
            .iter()
            .copied()
            .find(|l| l.as_str() == s)
            .ok_or_else(|| ModelError::UnknownKind(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_abstract_to_concrete() {
        assert!(Fidelity::Conceptual < Fidelity::Architectural);
        assert!(Fidelity::Architectural < Fidelity::Implementation);
    }

    #[test]
    fn refined_and_abstracted_are_inverse() {
        for level in Fidelity::ALL {
            if let Some(next) = level.refined() {
                assert_eq!(next.abstracted(), Some(level));
            }
            if let Some(prev) = level.abstracted() {
                assert_eq!(prev.refined(), Some(level));
            }
        }
    }

    #[test]
    fn visibility_is_monotone() {
        assert!(Fidelity::Conceptual.visible_at(Fidelity::Implementation));
        assert!(Fidelity::Implementation.visible_at(Fidelity::Implementation));
        assert!(!Fidelity::Implementation.visible_at(Fidelity::Conceptual));
    }

    #[test]
    fn names_round_trip() {
        for level in Fidelity::ALL {
            assert_eq!(level.as_str().parse::<Fidelity>().unwrap(), level);
        }
        assert!("exact".parse::<Fidelity>().is_err());
    }

    #[test]
    fn default_is_conceptual() {
        assert_eq!(Fidelity::default(), Fidelity::Conceptual);
    }
}
