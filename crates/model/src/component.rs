//! Components: the nodes of the architectural graph.

use core::fmt;
use core::str::FromStr;

use crate::{Attribute, AttributeSet, ComponentKind, Fidelity, ModelError};

/// Safety/mission criticality of a component.
///
/// Criticality weights posture metrics and selects the target set for
/// attack-surface path analysis: paths from entry points to
/// [`Criticality::SafetyCritical`] components are the ones whose compromise
/// the paper's thesis says IT-style modeling misses.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Criticality {
    /// Compromise is an inconvenience only.
    #[default]
    Low,
    /// Compromise degrades the mission.
    Medium,
    /// Compromise defeats the mission.
    High,
    /// Compromise can cause a physical hazard (loss of life, destruction).
    SafetyCritical,
}

impl Criticality {
    /// All levels from least to most critical.
    pub const ALL: [Criticality; 4] = [
        Criticality::Low,
        Criticality::Medium,
        Criticality::High,
        Criticality::SafetyCritical,
    ];

    /// Returns the canonical lowercase name used in GraphML interchange.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Criticality::Low => "low",
            Criticality::Medium => "medium",
            Criticality::High => "high",
            Criticality::SafetyCritical => "safety-critical",
        }
    }

    /// A weight in `[1, 4]` used by posture scoring.
    #[must_use]
    pub fn weight(self) -> u32 {
        match self {
            Criticality::Low => 1,
            Criticality::Medium => 2,
            Criticality::High => 3,
            Criticality::SafetyCritical => 4,
        }
    }
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Criticality {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Criticality::ALL
            .iter()
            .copied()
            .find(|c| c.as_str() == s)
            .ok_or_else(|| ModelError::UnknownKind(s.to_owned()))
    }
}

/// A node of the architectural graph: one system element with its
/// security-relevant design information.
///
/// Components are created through
/// [`SystemModelBuilder`](crate::SystemModelBuilder) or
/// [`SystemModel::add_component`](crate::SystemModel::add_component); they
/// are addressed by unique name or by [`ComponentId`](crate::ComponentId).
///
/// # Examples
///
/// ```
/// use cpssec_model::{Component, ComponentKind, Attribute, AttributeKind, Criticality};
///
/// let mut sis = Component::new("SIS platform", ComponentKind::SafetySystem)
///     .with_criticality(Criticality::SafetyCritical);
/// sis.attributes_mut()
///     .insert(Attribute::new(AttributeKind::Product, "NI cRIO 9063"));
/// assert!(sis.kind().is_controlling());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Component {
    name: String,
    kind: ComponentKind,
    attributes: AttributeSet,
    criticality: Criticality,
    entry_point: bool,
}

impl Component {
    /// Creates a component with no attributes, [`Criticality::Low`], not an
    /// entry point.
    pub fn new(name: impl Into<String>, kind: ComponentKind) -> Self {
        Component {
            name: name.into(),
            kind,
            attributes: AttributeSet::new(),
            criticality: Criticality::default(),
            entry_point: false,
        }
    }

    /// Sets the criticality (builder style).
    #[must_use]
    pub fn with_criticality(mut self, criticality: Criticality) -> Self {
        self.criticality = criticality;
        self
    }

    /// Marks the component as an attacker entry point (builder style).
    ///
    /// Entry points are where the modeled adversary first touches the
    /// system: internet-facing interfaces, corporate network uplinks,
    /// removable media bays.
    #[must_use]
    pub fn with_entry_point(mut self, entry_point: bool) -> Self {
        self.entry_point = entry_point;
        self
    }

    /// Adds an attribute (builder style); exact duplicates are ignored.
    #[must_use]
    pub fn with_attribute(mut self, attribute: Attribute) -> Self {
        self.attributes.insert(attribute);
        self
    }

    /// The unique name within its model.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The architectural role.
    #[must_use]
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// The attached attributes.
    #[must_use]
    pub fn attributes(&self) -> &AttributeSet {
        &self.attributes
    }

    /// Mutable access to the attached attributes.
    pub fn attributes_mut(&mut self) -> &mut AttributeSet {
        &mut self.attributes
    }

    /// The criticality level.
    #[must_use]
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// Sets the criticality level.
    pub fn set_criticality(&mut self, criticality: Criticality) {
        self.criticality = criticality;
    }

    /// Whether the component is an attacker entry point.
    #[must_use]
    pub fn is_entry_point(&self) -> bool {
        self.entry_point
    }

    /// Marks or unmarks the component as an entry point.
    pub fn set_entry_point(&mut self, entry_point: bool) {
        self.entry_point = entry_point;
    }

    /// Returns a copy containing only attributes visible at `level`.
    #[must_use]
    pub fn at_fidelity(&self, level: Fidelity) -> Component {
        Component {
            name: self.name.clone(),
            kind: self.kind,
            attributes: self.attributes.visible_at(level).cloned().collect(),
            criticality: self.criticality,
            entry_point: self.entry_point,
        }
    }

    /// The searchable text of this component at `level`: its name plus every
    /// visible attribute value. This is exactly the text the paper's search
    /// process submits per model element.
    #[must_use]
    pub fn search_text(&self, level: Fidelity) -> String {
        let mut text = self.name.clone();
        for attr in self.attributes.visible_at(level) {
            text.push(' ');
            text.push_str(attr.value());
        }
        text
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <{}>", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttributeKind;

    fn bpcs() -> Component {
        Component::new("BPCS platform", ComponentKind::Controller)
            .with_criticality(Criticality::High)
            .with_attribute(Attribute::new(AttributeKind::Product, "NI cRIO 9064"))
            .with_attribute(
                Attribute::new(AttributeKind::OperatingSystem, "NI RT Linux")
                    .at_fidelity(Fidelity::Implementation),
            )
    }

    #[test]
    fn builder_style_accumulates_state() {
        let c = bpcs();
        assert_eq!(c.name(), "BPCS platform");
        assert_eq!(c.criticality(), Criticality::High);
        assert_eq!(c.attributes().len(), 2);
        assert!(!c.is_entry_point());
    }

    #[test]
    fn at_fidelity_drops_invisible_attributes() {
        let c = bpcs();
        let conceptual = c.at_fidelity(Fidelity::Conceptual);
        assert_eq!(conceptual.attributes().len(), 1);
        let implementation = c.at_fidelity(Fidelity::Implementation);
        assert_eq!(implementation.attributes().len(), 2);
    }

    #[test]
    fn search_text_concatenates_name_and_visible_values() {
        let c = bpcs();
        let text = c.search_text(Fidelity::Implementation);
        assert!(text.contains("BPCS platform"));
        assert!(text.contains("NI cRIO 9064"));
        assert!(text.contains("NI RT Linux"));
        let abstract_text = c.search_text(Fidelity::Conceptual);
        assert!(!abstract_text.contains("RT Linux"));
    }

    #[test]
    fn criticality_weights_are_strictly_increasing() {
        let weights: Vec<_> = Criticality::ALL.iter().map(|c| c.weight()).collect();
        assert!(weights.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn criticality_names_round_trip() {
        for c in Criticality::ALL {
            assert_eq!(c.as_str().parse::<Criticality>().unwrap(), c);
        }
    }

    #[test]
    fn display_shows_name_and_kind() {
        assert_eq!(bpcs().to_string(), "BPCS platform <controller>");
    }

    #[test]
    fn entry_point_flag_survives_fidelity_projection() {
        let ws = Component::new("WS", ComponentKind::Workstation).with_entry_point(true);
        assert!(ws.at_fidelity(Fidelity::Conceptual).is_entry_point());
    }
}
