//! A minimal XML reader/writer sufficient for GraphML interchange.
//!
//! This is intentionally not a general XML implementation: it supports
//! elements, attributes, character data, the five predefined entities,
//! comments, processing instructions and XML declarations (skipped), and
//! nothing else (no DTDs, no CDATA, no namespaces beyond verbatim prefixed
//! names). That subset is exactly what GraphML files produced by this crate
//! and by common graph tools use.

use core::fmt;

/// Errors raised while scanning XML input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// Input ended inside a construct.
    UnexpectedEof,
    /// A syntactic expectation failed at the given byte offset.
    Syntax {
        /// Byte offset of the failure.
        at: usize,
        /// What was being parsed.
        detail: String,
    },
    /// An entity reference was not one of the five predefined ones.
    UnknownEntity(String),
    /// Close tag did not match the open tag.
    MismatchedTag {
        /// The tag that was open.
        open: String,
        /// The close tag encountered.
        close: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlError::Syntax { at, detail } => write!(f, "syntax error at byte {at}: {detail}"),
            XmlError::UnknownEntity(name) => write!(f, "unknown entity `&{name};`"),
            XmlError::MismatchedTag { open, close } => {
                write!(f, "close tag `{close}` does not match open tag `{open}`")
            }
        }
    }
}

impl std::error::Error for XmlError {}

/// One parsed XML event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v" ...>`; `self_closing` distinguishes `<x/>`.
    Open {
        /// Element name (namespace prefixes kept verbatim).
        name: String,
        /// Attributes in document order, values entity-decoded.
        attributes: Vec<(String, String)>,
        /// Whether the tag was `<x/>`.
        self_closing: bool,
    },
    /// `</name>`.
    Close(
        /// Element name.
        String,
    ),
    /// Character data between tags, entity-decoded. Literal whitespace-only
    /// runs are skipped as layout; entity-encoded whitespace is delivered.
    Text(String),
}

/// A pull parser over a complete XML document held in memory.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
    open_stack: Vec<String>,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `input`.
    #[must_use]
    pub fn new(input: &'a str) -> Self {
        Reader {
            input: input.as_bytes(),
            pos: 0,
            open_stack: Vec::new(),
        }
    }

    /// Pulls the next event, or `Ok(None)` at clean end of input.
    ///
    /// # Errors
    ///
    /// Any [`XmlError`] for malformed input, including tag mismatches.
    pub fn next_event(&mut self) -> Result<Option<Event>, XmlError> {
        loop {
            if self.pos >= self.input.len() {
                return if self.open_stack.is_empty() {
                    Ok(None)
                } else {
                    Err(XmlError::UnexpectedEof)
                };
            }
            if self.input[self.pos] == b'<' {
                if self.starts_with("<!--") {
                    self.skip_until("-->")?;
                    continue;
                }
                if self.starts_with("<?") {
                    self.skip_until("?>")?;
                    continue;
                }
                if self.starts_with("<!") {
                    // DOCTYPE or similar; skip to the closing '>'.
                    self.skip_until(">")?;
                    continue;
                }
                if self.starts_with("</") {
                    return self.parse_close().map(Some);
                }
                return self.parse_open().map(Some);
            }
            let start = self.pos;
            let text = self.take_text()?;
            // Literal whitespace-only runs are layout (pretty-printing) and
            // are dropped; a run containing any non-whitespace byte — which
            // includes entity references such as `&#32;` — is character data
            // even if it decodes to pure whitespace.
            if !self.input[start..self.pos]
                .iter()
                .all(u8::is_ascii_whitespace)
            {
                return Ok(Some(Event::Text(text)));
            }
        }
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.input[self.pos..].starts_with(prefix.as_bytes())
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        let hay = &self.input[self.pos..];
        match hay.windows(end.len()).position(|w| w == end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(XmlError::UnexpectedEof),
        }
    }

    fn take_text(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw =
            core::str::from_utf8(&self.input[start..self.pos]).map_err(|_| XmlError::Syntax {
                at: start,
                detail: "text is not valid UTF-8".to_owned(),
            })?;
        unescape(raw)
    }

    fn parse_close(&mut self) -> Result<Event, XmlError> {
        self.pos += 2; // "</"
        let name = self.take_name()?;
        self.skip_ws();
        self.expect(b'>')?;
        match self.open_stack.pop() {
            Some(open) if open == name => Ok(Event::Close(name)),
            Some(open) => Err(XmlError::MismatchedTag { open, close: name }),
            None => Err(XmlError::Syntax {
                at: self.pos,
                detail: format!("close tag `{name}` with no open element"),
            }),
        }
    }

    fn parse_open(&mut self) -> Result<Event, XmlError> {
        self.pos += 1; // '<'
        let name = self.take_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek()? {
                b'>' => {
                    self.pos += 1;
                    self.open_stack.push(name.clone());
                    return Ok(Event::Open {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                b'/' => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(Event::Open {
                        name,
                        attributes,
                        self_closing: true,
                    });
                }
                _ => {
                    let key = self.take_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self.peek()?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(XmlError::Syntax {
                            at: self.pos,
                            detail: "attribute value must be quoted".to_owned(),
                        });
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek()? != quote {
                        self.pos += 1;
                    }
                    let raw = core::str::from_utf8(&self.input[start..self.pos]).map_err(|_| {
                        XmlError::Syntax {
                            at: start,
                            detail: "attribute value is not valid UTF-8".to_owned(),
                        }
                    })?;
                    self.pos += 1; // closing quote
                    attributes.push((key, unescape(raw)?));
                }
            }
        }
    }

    fn take_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.pos < self.input.len() && is_name_byte(self.input[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::Syntax {
                at: start,
                detail: "expected a name".to_owned(),
            });
        }
        Ok(core::str::from_utf8(&self.input[start..self.pos])
            .expect("name bytes are ASCII")
            .to_owned())
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Result<u8, XmlError> {
        self.input
            .get(self.pos)
            .copied()
            .ok_or(XmlError::UnexpectedEof)
    }

    fn expect(&mut self, byte: u8) -> Result<(), XmlError> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(XmlError::Syntax {
                at: self.pos,
                detail: format!("expected `{}`", byte as char),
            })
        }
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
}

/// Replaces the five predefined XML entities in `raw`.
///
/// # Errors
///
/// [`XmlError::UnknownEntity`] for any other `&name;` reference, and
/// [`XmlError::UnexpectedEof`] for an unterminated reference.
pub fn unescape(raw: &str) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i + 1..];
        let end = rest.find(';').ok_or(XmlError::UnexpectedEof)?;
        let name = &rest[..end];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            other => {
                if let Some(hex) = other.strip_prefix("#x") {
                    let code = u32::from_str_radix(hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| XmlError::UnknownEntity(other.to_owned()))?;
                    out.push(code);
                } else if let Some(dec) = other.strip_prefix('#') {
                    let code = dec
                        .parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| XmlError::UnknownEntity(other.to_owned()))?;
                    out.push(code);
                } else {
                    return Err(XmlError::UnknownEntity(other.to_owned()));
                }
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Escapes text for use as XML character data or an attribute value.
#[must_use]
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<Event> {
        let mut reader = Reader::new(input);
        let mut out = Vec::new();
        while let Some(ev) = reader.next_event().unwrap() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn parses_nested_elements_with_attributes() {
        let evs = events(r#"<g id="a"><node id="n0" kind="x"/><node id="n1">hi</node></g>"#);
        assert_eq!(evs.len(), 6);
        match &evs[0] {
            Event::Open {
                name,
                attributes,
                self_closing,
            } => {
                assert_eq!(name, "g");
                assert_eq!(attributes, &[("id".to_owned(), "a".to_owned())]);
                assert!(!self_closing);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            &evs[1],
            Event::Open {
                self_closing: true,
                ..
            }
        ));
        assert_eq!(evs[3], Event::Text("hi".to_owned()));
    }

    #[test]
    fn skips_declaration_comments_and_doctype() {
        let evs = events("<?xml version=\"1.0\"?><!-- c --><!DOCTYPE g><g></g>");
        assert_eq!(evs.len(), 2);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let evs = events("<a>\n  <b/>\n</a>");
        assert_eq!(evs.len(), 3);
    }

    #[test]
    fn entities_decode_in_text_and_attributes() {
        let evs = events(r#"<a k="&lt;&amp;&gt;">x &quot;y&quot; &#65;&#x42;</a>"#);
        match &evs[0] {
            Event::Open { attributes, .. } => assert_eq!(attributes[0].1, "<&>"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evs[1], Event::Text("x \"y\" AB".to_owned()));
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let mut r = Reader::new("<a>&nbsp;</a>");
        r.next_event().unwrap();
        assert_eq!(
            r.next_event().unwrap_err(),
            XmlError::UnknownEntity("nbsp".to_owned())
        );
    }

    #[test]
    fn mismatched_close_tag_is_an_error() {
        let mut r = Reader::new("<a></b>");
        r.next_event().unwrap();
        assert!(matches!(
            r.next_event().unwrap_err(),
            XmlError::MismatchedTag { .. }
        ));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut r = Reader::new("<a><b>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        assert_eq!(r.next_event().unwrap_err(), XmlError::UnexpectedEof);
    }

    #[test]
    fn escape_then_unescape_round_trips() {
        let nasty = "a<b&c>\"d'\u{e9}";
        assert_eq!(unescape(&escape(nasty)).unwrap(), nasty);
    }

    #[test]
    fn single_quoted_attributes_are_accepted() {
        let evs = events("<a k='v'/>");
        match &evs[0] {
            Event::Open { attributes, .. } => assert_eq!(attributes[0].1, "v"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn close_without_open_is_an_error() {
        let mut r = Reader::new("</a>");
        assert!(matches!(r.next_event(), Err(XmlError::Syntax { .. })));
    }
}
