//! Log-linear (HDR-style) latency histogram over microsecond values.
//!
//! Values 0..16 µs get exact single-value buckets; above that, each
//! power-of-two octave is split into 16 linear sub-buckets, giving a
//! worst-case relative error of 1/16 (6.25%) across the tracked range
//! of 1 µs .. 2^24-1 µs (~16.7 s). Recording is a pair of relaxed
//! atomic increments — safe to hammer from every server worker.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Largest tracked value in µs (~16.7 s); larger values clamp here.
pub const MAX_VALUE_US: u64 = (1 << 24) - 1;
/// Total bucket count: 16 exact values + 20 octaves x 16 sub-buckets.
pub const NUM_BUCKETS: usize = 21 << SUB_BITS;

/// Bucket index for a value (clamped to [`MAX_VALUE_US`]).
pub fn index_of(value: u64) -> usize {
    let v = value.min(MAX_VALUE_US);
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let octave = (exp - (SUB_BITS - 1)) as usize;
    let sub = ((v >> (exp - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (octave << SUB_BITS) | sub
}

/// Inclusive `(low, high)` value range covered by bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    debug_assert!(idx < NUM_BUCKETS);
    if idx < SUB_BUCKETS {
        return (idx as u64, idx as u64);
    }
    let octave = (idx >> SUB_BITS) as u32;
    let sub = (idx & (SUB_BUCKETS - 1)) as u64;
    let width = 1u64 << (octave - 1);
    let low = (SUB_BUCKETS as u64 + sub) << (octave - 1);
    (low, low + width - 1)
}

/// Concurrent log-linear histogram. All updates are relaxed atomics;
/// reads race benignly with writers (take a [`Histogram::snapshot`] for
/// a self-consistent view when rendering).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one value (µs). Lock-free: two relaxed `fetch_add`s.
    pub fn record(&self, value_us: u64) {
        self.buckets[index_of(value_us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(value_us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Bucket-wise add of `other` into `self`. Equivalent to having
    /// recorded the concatenation of both sample streams.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_us
            .fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Convenience: quantile straight off the live buckets.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.snapshot().quantile_us(q)
    }

    /// A point-in-time copy safe to iterate repeatedly.
    pub fn snapshot(&self) -> Snapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the total from the copied buckets so count/cumulative
        // sums stay internally consistent even while writers race.
        let count = counts.iter().sum();
        Snapshot {
            counts,
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a histogram's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum_us: u64,
}

impl Snapshot {
    /// Nearest-rank quantile, reported as the upper bound of the bucket
    /// that holds the rank — so the true quantile lies within the
    /// reported bucket's bounds (<= 6.25% relative error).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bounds(i).1;
            }
        }
        MAX_VALUE_US
    }

    /// Bucket-wise `self - earlier` for two snapshots of the *same*
    /// cumulative histogram, yielding the samples recorded in between.
    /// Subtraction saturates per bucket so a torn read (writer racing
    /// the snapshot) degrades to dropping a sample, never underflowing.
    #[must_use]
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(earlier.counts.iter())
            .map(|(&now, &then)| now.saturating_sub(then))
            .collect();
        let count = counts.iter().sum();
        Snapshot {
            counts,
            count,
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
        }
    }

    /// Bucket-wise add of `other` into `self` — the snapshot analogue of
    /// [`Histogram::merge`], used by the downsampler to widen windows.
    pub fn merge(&mut self, other: &Snapshot) {
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
    }

    /// Cumulative count of buckets that start at or below `bound` —
    /// the Prometheus `le` accumulator. Exact when `bound` is a bucket
    /// boundary minus the tail of the bucket containing it (i.e. up to
    /// one sub-bucket of fuzz, 6.25% relative).
    pub fn count_le(&self, bound: u64) -> u64 {
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if bucket_bounds(i).0 > bound {
                break;
            }
            cum += c;
        }
        cum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_round_trip_every_bucket() {
        for idx in 0..NUM_BUCKETS {
            let (low, high) = bucket_bounds(idx);
            assert!(low <= high);
            assert_eq!(index_of(low), idx, "low bound of {idx}");
            assert_eq!(index_of(high), idx, "high bound of {idx}");
        }
        // Buckets tile the range with no gaps.
        for idx in 1..NUM_BUCKETS {
            assert_eq!(bucket_bounds(idx).0, bucket_bounds(idx - 1).1 + 1);
        }
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, MAX_VALUE_US);
    }

    #[test]
    fn relative_error_bounded() {
        for v in [17u64, 100, 999, 4_321, 1_000_000, MAX_VALUE_US] {
            let (low, high) = bucket_bounds(index_of(v));
            assert!(low <= v && v <= high);
            let err = (high - low) as f64 / low.max(1) as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "bucket too wide at {v}: {err}");
        }
    }

    #[test]
    fn clamps_overflow() {
        assert_eq!(index_of(u64::MAX), NUM_BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().quantile_us(0.5), MAX_VALUE_US);
    }

    #[test]
    fn quantiles_on_known_samples() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum_us, 5050);
        // Values <= 16 are exact; p10 = 10 exactly.
        assert_eq!(snap.quantile_us(0.10), 10);
        // p99 = 99 lies in the [96,101] octave-5 sub-bucket.
        let (low, high) = bucket_bounds(index_of(99));
        let p99 = snap.quantile_us(0.99);
        assert!(p99 >= low && p99 <= high);
    }

    #[test]
    fn snapshot_diff_recovers_the_window() {
        let h = Histogram::new();
        for v in [10u64, 500, 9_000] {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in [20u64, 700_000] {
            h.record(v);
        }
        let delta = h.snapshot().diff(&earlier);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum_us, 20 + 700_000);
        let expected = {
            let w = Histogram::new();
            w.record(20);
            w.record(700_000);
            w.snapshot()
        };
        assert_eq!(delta, expected);
        // Merging the delta back onto the earlier snapshot restores the
        // later one.
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, h.snapshot());
    }

    #[test]
    fn count_le_is_monotone() {
        let h = Histogram::new();
        for v in [3u64, 50, 150, 5_000, 80_000, 2_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut prev = 0;
        for bound in [1u64, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 1 << 24] {
            let c = snap.count_le(bound);
            assert!(c >= prev, "count_le must be monotone");
            prev = c;
        }
        assert_eq!(snap.count_le(MAX_VALUE_US), 6);
    }
}
