//! `cpssec-obs` — std-only observability for the cpssec pipeline.
//!
//! A process-global, lock-free [`Recorder`] collects hierarchical
//! spans ([`span!`]) from every pipeline stage (tokenize → score →
//! filter → chain-build → render, plus associate/whatif/serve). Each
//! completed span feeds a per-stage aggregate — count, total wall
//! time, item count, and a log-linear latency [`hist::Histogram`] —
//! and, when tracing is on, a wait-free ring of Chrome
//! `trace_event`s ([`trace`]).
//!
//! Disabled is the default and costs one relaxed atomic load per span
//! site (no `Instant::now()`, no allocation); the overhead bench in
//! `crates/bench` holds that under 2% on the whole-model match path.
//! All of this is safe Rust: the "lock-free" structures are arrays of
//! `AtomicU64` plus a per-slot seqlock, and the only mutexes
//! (stage-name interning, slow-query ring) sit on cold paths.

#![forbid(unsafe_code)]

pub mod hist;
pub mod slo;
pub mod slow;
pub mod timeseries;
pub mod trace;

pub use hist::Histogram;
pub use slo::{AlertState, RouteSlo, SloConfig, SloMonitor};
pub use slow::{SlowEntry, SlowLog};
pub use timeseries::{Agg, Resolution, TimeSeriesStore, RESOLUTIONS};
pub use trace::{chrome_trace_json, TraceEvent, TraceRing};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Spans feed per-stage aggregates (and the slow-log capture).
const FLAG_SPANS: u8 = 1;
/// Completed spans are additionally pushed into the trace ring.
const FLAG_TRACE: u8 = 2;

/// Fixed number of stage slots; registration beyond this aliases into
/// the last slot rather than failing.
pub const MAX_STAGES: usize = 64;

/// Cap on stages captured per request for the slow-query breakdown.
const MAX_CAPTURE: usize = 64;

/// Interned identifier for a stage name. Cheap to copy; resolved back
/// to its name via [`Recorder::stage_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageId(u16);

impl StageId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

struct StageAgg {
    count: std::sync::atomic::AtomicU64,
    total_us: std::sync::atomic::AtomicU64,
    items: std::sync::atomic::AtomicU64,
    hist: Histogram,
}

/// Aggregate view of one stage, as returned by [`Recorder::stage_stats`].
#[derive(Debug, Clone)]
pub struct StageStats {
    pub name: &'static str,
    pub count: u64,
    pub total_us: u64,
    pub items: u64,
    pub p50_us: u64,
    pub p99_us: u64,
}

pub struct Recorder {
    flags: AtomicU8,
    epoch: Instant,
    names: Mutex<Vec<&'static str>>,
    stages: Vec<StageAgg>,
    trace: OnceLock<TraceRing>,
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-global recorder used by [`span!`].
pub fn recorder() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    /// Small dense per-thread ordinal for trace tracks
    /// (`std::thread::ThreadId` has no stable integer accessor).
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u16> = const { Cell::new(0) };
    /// Per-request stage capture for the slow-query log.
    static CAPTURE: RefCell<Option<Vec<(StageId, u64)>>> = const { RefCell::new(None) };
    /// Model identity noted by route handlers for the slow-query log.
    static NOTE: RefCell<Option<(u64, String)>> = const { RefCell::new(None) };
    /// Trace id of the request currently being served on this thread
    /// (0 = none). Stamped onto every trace-ring event.
    static CURRENT_TRACE: Cell<u128> = const { Cell::new(0) };
    /// Free-form key/value annotations attached to the current request
    /// (e.g. cache hit/miss), drained once per request.
    static ANNOTATIONS: RefCell<Vec<(String, String)>> = const { RefCell::new(Vec::new()) };
}

fn thread_ordinal() -> u32 {
    TID.with(|t| *t)
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    pub fn new() -> Self {
        Recorder {
            flags: AtomicU8::new(0),
            epoch: Instant::now(),
            names: Mutex::new(Vec::new()),
            stages: (0..MAX_STAGES)
                .map(|_| StageAgg {
                    count: std::sync::atomic::AtomicU64::new(0),
                    total_us: std::sync::atomic::AtomicU64::new(0),
                    items: std::sync::atomic::AtomicU64::new(0),
                    hist: Histogram::new(),
                })
                .collect(),
            trace: OnceLock::new(),
        }
    }

    pub fn spans_enabled(&self) -> bool {
        self.flags.load(Ordering::Relaxed) & FLAG_SPANS != 0
    }

    pub fn trace_enabled(&self) -> bool {
        self.flags.load(Ordering::Relaxed) & FLAG_TRACE != 0
    }

    /// Turn on span aggregation (idempotent).
    pub fn enable_spans(&self) {
        self.flags.fetch_or(FLAG_SPANS, Ordering::Relaxed);
    }

    /// Turn on tracing (implies spans); allocates the ring on first use.
    pub fn enable_trace(&self) {
        self.trace
            .get_or_init(|| TraceRing::new(trace::DEFAULT_TRACE_CAPACITY));
        self.flags
            .fetch_or(FLAG_SPANS | FLAG_TRACE, Ordering::Relaxed);
    }

    /// Turn everything off. In-flight spans still record their
    /// aggregates (they captured the enabled flags at entry).
    pub fn disable(&self) {
        self.flags.store(0, Ordering::Relaxed);
    }

    /// Intern a stage name. Cold path (a mutex) — call sites cache the
    /// result in a `static OnceLock`, which [`span!`] does for you.
    pub fn register(&self, name: &'static str) -> StageId {
        let mut names = self.names.lock().unwrap();
        if let Some(i) = names.iter().position(|n| *n == name) {
            return StageId(i as u16);
        }
        if names.len() < MAX_STAGES {
            names.push(name);
            StageId((names.len() - 1) as u16)
        } else {
            StageId((MAX_STAGES - 1) as u16)
        }
    }

    pub fn stage_name(&self, id: StageId) -> &'static str {
        self.names
            .lock()
            .unwrap()
            .get(id.index())
            .copied()
            .unwrap_or("?")
    }

    /// Open a span for an interned stage. When the recorder is
    /// disabled this is one atomic load and returns an inert guard.
    pub fn span(&self, id: StageId) -> Span<'_> {
        let flags = self.flags.load(Ordering::Relaxed);
        if flags & FLAG_SPANS == 0 {
            return Span { inner: None };
        }
        let start = Instant::now();
        let ts_us = start.duration_since(self.epoch).as_micros() as u64;
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        });
        Span {
            inner: Some(SpanInner {
                rec: self,
                id,
                start,
                ts_us,
                depth,
                items: 0,
                flags,
            }),
        }
    }

    /// Per-stage aggregates for every registered stage with activity.
    pub fn stage_stats(&self) -> Vec<StageStats> {
        let names = self.names.lock().unwrap().clone();
        names
            .iter()
            .enumerate()
            .filter_map(|(i, name)| {
                let agg = &self.stages[i];
                let count = agg.count.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let snap = agg.hist.snapshot();
                Some(StageStats {
                    name,
                    count,
                    total_us: agg.total_us.load(Ordering::Relaxed),
                    items: agg.items.load(Ordering::Relaxed),
                    p50_us: snap.quantile_us(0.50),
                    p99_us: snap.quantile_us(0.99),
                })
            })
            .collect()
    }

    /// Latency histogram for one stage (live view).
    pub fn stage_histogram(&self, id: StageId) -> &Histogram {
        &self.stages[id.index()].hist
    }

    /// Events currently retained in the trace ring (empty when tracing
    /// was never enabled).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.get().map(|r| r.events()).unwrap_or_default()
    }

    /// Chrome `trace_event` JSON for everything in the trace ring.
    pub fn trace_json(&self) -> String {
        let names = self.names.lock().unwrap().clone();
        chrome_trace_json(&self.trace_events(), |stage| {
            names
                .get(stage as usize)
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!("stage-{stage}"))
        })
    }
}

struct SpanInner<'a> {
    rec: &'a Recorder,
    id: StageId,
    start: Instant,
    ts_us: u64,
    depth: u16,
    items: u64,
    flags: u8,
}

/// RAII guard: records wall time (and optional item count) for its
/// stage when dropped. Inert when the recorder is disabled.
pub struct Span<'a> {
    inner: Option<SpanInner<'a>>,
}

impl Span<'_> {
    /// Attach a processed-item count (e.g. hits scored, chains built).
    pub fn add_items(&mut self, n: u64) {
        if let Some(inner) = &mut self.inner {
            inner.items += n;
        }
    }

    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_us = inner.start.elapsed().as_micros() as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let agg = &inner.rec.stages[inner.id.index()];
        agg.count.fetch_add(1, Ordering::Relaxed);
        agg.total_us.fetch_add(dur_us, Ordering::Relaxed);
        agg.items.fetch_add(inner.items, Ordering::Relaxed);
        agg.hist.record(dur_us);
        if inner.flags & FLAG_TRACE != 0 {
            if let Some(ring) = inner.rec.trace.get() {
                ring.push(
                    inner.id.0,
                    inner.depth,
                    thread_ordinal(),
                    inner.ts_us,
                    dur_us,
                    inner.items,
                    current_trace_id(),
                );
            }
        }
        capture_push(inner.id, dur_us);
    }
}

/// Open a span on the global recorder, interning the stage name once
/// per call site:
///
/// ```
/// let mut span = cpssec_obs::span!("tokenize");
/// // ... work ...
/// span.add_items(42);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static STAGE: ::std::sync::OnceLock<$crate::StageId> = ::std::sync::OnceLock::new();
        let rec = $crate::recorder();
        let id = *STAGE.get_or_init(|| rec.register($name));
        rec.span(id)
    }};
}

/// Begin capturing span completions on this thread (for the slow-query
/// stage breakdown). Nest-safe: restores any outer capture on finish.
pub struct Capture {
    prev: Option<Vec<(StageId, u64)>>,
}

impl Capture {
    pub fn begin() -> Capture {
        let prev = CAPTURE.with(|c| c.borrow_mut().replace(Vec::new()));
        Capture { prev }
    }

    /// Stop capturing and return (stage, µs) pairs in completion order
    /// (children before parents), resolved to names by `rec`.
    pub fn finish(mut self, rec: &Recorder) -> Vec<(String, u64)> {
        let cur = CAPTURE.with(|c| {
            let mut slot = c.borrow_mut();
            std::mem::replace(&mut *slot, self.prev.take())
        });
        cur.unwrap_or_default()
            .into_iter()
            .map(|(id, us)| (rec.stage_name(id).to_string(), us))
            .collect()
    }
}

fn capture_push(id: StageId, dur_us: u64) {
    CAPTURE.with(|c| {
        if let Ok(mut slot) = c.try_borrow_mut() {
            if let Some(v) = slot.as_mut() {
                if v.len() < MAX_CAPTURE {
                    v.push((id, dur_us));
                }
            }
        }
    });
}

/// Note the model a request is operating on, for the slow-query log.
/// Called by route handlers; consumed once per request via
/// [`take_note`].
pub fn note_model(hash: u64, fidelity: &str) {
    NOTE.with(|n| *n.borrow_mut() = Some((hash, fidelity.to_string())));
}

/// Take (and clear) the model note for the current request.
pub fn take_note() -> Option<(u64, String)> {
    NOTE.with(|n| n.borrow_mut().take())
}

/// Set the trace id for the request being served on this thread.
/// Pass 0 to clear between requests (a worker that skips the clear
/// would stamp the next request's spans with a stale id).
pub fn set_trace_id(id: u128) {
    CURRENT_TRACE.with(|t| t.set(id));
}

/// Trace id of the request currently active on this thread (0 = none).
pub fn current_trace_id() -> u128 {
    CURRENT_TRACE.with(|t| t.get())
}

/// Attach a key/value annotation to the current request (e.g.
/// `annotate("cache", "hit")`); drained by [`take_annotations`].
pub fn annotate(key: &str, value: &str) {
    ANNOTATIONS.with(|a| a.borrow_mut().push((key.to_string(), value.to_string())));
}

/// Take (and clear) the annotations for the current request.
pub fn take_annotations() -> Vec<(String, String)> {
    ANNOTATIONS.with(|a| std::mem::take(&mut *a.borrow_mut()))
}

static MINT_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mint a fresh nonzero 16-byte trace id. Not cryptographic — the ids
/// only need to be unique within a process's recent history; wall
/// clock + a process counter + thread ordinal keep collisions out of
/// any realistic request window.
pub fn mint_trace_id() -> u128 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
    let hi = splitmix64(nanos ^ n.rotate_left(32));
    let lo = splitmix64(hi ^ thread_ordinal() as u64);
    let id = ((hi as u128) << 64) | lo as u128;
    if id == 0 {
        1
    } else {
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global recorder is shared across tests in this binary, so
    /// each test uses its own stage names.
    #[test]
    fn disabled_span_records_nothing() {
        let rec = Recorder::new();
        let id = rec.register("t-disabled");
        drop(rec.span(id));
        assert!(rec.stage_stats().is_empty());
    }

    #[test]
    fn enabled_span_aggregates() {
        let rec = Recorder::new();
        rec.enable_spans();
        let id = rec.register("t-agg");
        for _ in 0..3 {
            let mut span = rec.span(id);
            span.add_items(5);
        }
        let stats = rec.stage_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "t-agg");
        assert_eq!(stats[0].count, 3);
        assert_eq!(stats[0].items, 15);
    }

    #[test]
    fn register_is_idempotent_and_bounded() {
        let rec = Recorder::new();
        let a = rec.register("t-a");
        assert_eq!(rec.register("t-a"), a);
        assert_eq!(rec.stage_name(a), "t-a");
        // Exhausting the table aliases into the last slot, never panics.
        for i in 0..2 * MAX_STAGES {
            let leaked: &'static str = Box::leak(format!("t-flood-{i}").into_boxed_str());
            let id = rec.register(leaked);
            assert!(id.index() < MAX_STAGES);
        }
    }

    #[test]
    fn trace_ring_collects_nested_spans() {
        let rec = Recorder::new();
        rec.enable_trace();
        let outer = rec.register("t-outer");
        let inner = rec.register("t-inner");
        {
            let _o = rec.span(outer);
            let _i = rec.span(inner);
        }
        let events = rec.trace_events();
        assert_eq!(events.len(), 2);
        let inner_ev = events.iter().find(|e| e.stage == inner.0).unwrap();
        let outer_ev = events.iter().find(|e| e.stage == outer.0).unwrap();
        assert_eq!(outer_ev.depth, 0);
        assert_eq!(inner_ev.depth, 1);
        assert!(inner_ev.ts_us >= outer_ev.ts_us);
        let json = rec.trace_json();
        assert!(json.contains("\"name\":\"t-inner\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn capture_restores_outer_scope() {
        let rec = recorder();
        rec.enable_spans();
        let outer_cap = Capture::begin();
        drop(span!("t-cap-outer"));
        {
            let inner_cap = Capture::begin();
            drop(span!("t-cap-inner"));
            let stages = inner_cap.finish(rec);
            assert_eq!(stages.len(), 1);
            assert_eq!(stages[0].0, "t-cap-inner");
        }
        drop(span!("t-cap-outer"));
        let stages = outer_cap.finish(rec);
        let names: Vec<&str> = stages.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["t-cap-outer", "t-cap-outer"]);
    }

    #[test]
    fn spans_carry_the_active_trace_id() {
        let rec = Recorder::new();
        rec.enable_trace();
        let id = rec.register("t-traceid");
        let trace = mint_trace_id();
        set_trace_id(trace);
        drop(rec.span(id));
        set_trace_id(0);
        drop(rec.span(id));
        let events = rec.trace_events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().any(|e| e.trace == trace));
        assert!(events.iter().any(|e| e.trace == 0));
    }

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn annotations_drain_once() {
        annotate("cache", "hit");
        annotate("k", "v");
        let got = take_annotations();
        assert_eq!(
            got,
            vec![
                ("cache".to_string(), "hit".to_string()),
                ("k".to_string(), "v".to_string())
            ]
        );
        assert!(take_annotations().is_empty());
    }

    #[test]
    fn span_macro_works_via_global() {
        recorder().enable_spans();
        {
            let mut span = span!("t-macro");
            span.add_items(2);
            assert!(span.is_active());
        }
        let stats = recorder().stage_stats();
        let s = stats.iter().find(|s| s.name == "t-macro").unwrap();
        assert!(s.count >= 1);
    }
}
