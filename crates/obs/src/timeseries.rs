//! Fixed-capacity multi-resolution time-series rings for the telemetry
//! tick.
//!
//! Every tick the server snapshots its counters/histograms and records
//! scalar points here. Each series keeps three rings — 1 s slots for
//! the last 10 minutes, 10 s slots for the last hour, 1 min slots for
//! the last 12 hours — so `/metrics/history` can answer any window the
//! dashboard asks for from a bounded amount of memory (~1,680 points
//! per series, ever).
//!
//! "Lock-light": the store is a `RwLock` map of series, each series its
//! own `Mutex`. The tick thread is the only writer in practice, and
//! history queries touch exactly one series lock each — readers never
//! contend with unrelated series.
//!
//! Scalar samples landing in the same slot collapse per the series'
//! [`Agg`] policy. Latency quantiles must NOT be downsampled that way
//! (the mean of two p99s is not a p99) — the tick pipeline instead
//! merges window histograms ([`crate::hist::Snapshot::merge`]) and
//! pushes the coarse quantile via [`TimeSeriesStore::push_at`].

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, RwLock};

/// One retention tier: slot width and ring capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// Name used in `/metrics/history?res=`.
    pub name: &'static str,
    /// Slot width in milliseconds.
    pub slot_ms: u64,
    /// Ring capacity in slots.
    pub capacity: usize,
}

/// The three retention tiers: 1 s × 10 min, 10 s × 1 h, 1 min × 12 h.
pub const RESOLUTIONS: [Resolution; 3] = [
    Resolution {
        name: "1s",
        slot_ms: 1_000,
        capacity: 600,
    },
    Resolution {
        name: "10s",
        slot_ms: 10_000,
        capacity: 360,
    },
    Resolution {
        name: "1m",
        slot_ms: 60_000,
        capacity: 720,
    },
];

/// Index into [`RESOLUTIONS`] for a resolution name.
pub fn resolution_index(name: &str) -> Option<usize> {
    RESOLUTIONS.iter().position(|r| r.name == name)
}

/// How multiple samples landing in one slot collapse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Arithmetic mean — gauges (utilization, hit rate).
    Mean,
    /// Maximum — peaks worth keeping (queue depth).
    Max,
    /// Sum — per-tick deltas (request counts, errors).
    Sum,
    /// Last value wins — pre-aggregated points.
    Last,
}

/// Open accumulator for the slot currently being filled.
#[derive(Debug, Clone, Copy)]
struct SlotAcc {
    slot_ts: u64,
    sum: f64,
    count: u64,
    max: f64,
    last: f64,
}

impl SlotAcc {
    fn new(slot_ts: u64, value: f64) -> SlotAcc {
        SlotAcc {
            slot_ts,
            sum: value,
            count: 1,
            max: value,
            last: value,
        }
    }

    fn add(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
        if value > self.max {
            self.max = value;
        }
        self.last = value;
    }

    fn value(&self, agg: Agg) -> f64 {
        match agg {
            Agg::Mean => self.sum / self.count.max(1) as f64,
            Agg::Max => self.max,
            Agg::Sum => self.sum,
            Agg::Last => self.last,
        }
    }
}

/// One retention tier of one series: finalized points plus the open
/// accumulator for the in-progress slot.
#[derive(Debug, Default)]
struct ResRing {
    ring: VecDeque<(u64, f64)>,
    acc: Option<SlotAcc>,
}

impl ResRing {
    fn finalize_into_ring(&mut self, agg: Agg, capacity: usize) {
        if let Some(acc) = self.acc.take() {
            self.ring.push_back((acc.slot_ts, acc.value(agg)));
            while self.ring.len() > capacity {
                self.ring.pop_front();
            }
        }
    }
}

#[derive(Debug)]
struct SeriesData {
    agg: Agg,
    rings: [ResRing; 3],
}

/// Named series of (unix-ms, value) points at three resolutions.
#[derive(Debug, Default)]
pub struct TimeSeriesStore {
    series: RwLock<BTreeMap<String, Arc<Mutex<SeriesData>>>>,
}

impl TimeSeriesStore {
    #[must_use]
    pub fn new() -> TimeSeriesStore {
        TimeSeriesStore::default()
    }

    fn series(&self, name: &str, agg: Agg) -> Arc<Mutex<SeriesData>> {
        if let Some(s) = self.series.read().expect("timeseries poisoned").get(name) {
            return Arc::clone(s);
        }
        let mut map = self.series.write().expect("timeseries poisoned");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Mutex::new(SeriesData {
                agg,
                rings: [ResRing::default(), ResRing::default(), ResRing::default()],
            }))
        }))
    }

    /// Record one scalar sample at `ts_ms` into all three resolutions.
    /// Samples in the same slot collapse per `agg` (fixed at series
    /// creation; later values are ignored). Out-of-order samples older
    /// than the open slot are dropped.
    pub fn record(&self, name: &str, agg: Agg, ts_ms: u64, value: f64) {
        let series = self.series(name, agg);
        let mut data = series.lock().expect("series poisoned");
        let agg = data.agg;
        for (i, res) in RESOLUTIONS.iter().enumerate() {
            let slot_ts = ts_ms - ts_ms % res.slot_ms;
            let ring = &mut data.rings[i];
            match &mut ring.acc {
                Some(acc) if acc.slot_ts == slot_ts => acc.add(value),
                Some(acc) if acc.slot_ts > slot_ts => {} // stale sample
                _ => {
                    ring.finalize_into_ring(agg, res.capacity);
                    ring.acc = Some(SlotAcc::new(slot_ts, value));
                }
            }
        }
    }

    /// Append a pre-aggregated point to one resolution ring, replacing
    /// any existing point in the same slot. For producers that compute
    /// the coarse value themselves (merged-histogram quantiles).
    pub fn push_at(&self, name: &str, res: usize, ts_ms: u64, value: f64) {
        debug_assert!(res < RESOLUTIONS.len());
        let resolution = RESOLUTIONS[res];
        let slot_ts = ts_ms - ts_ms % resolution.slot_ms;
        let series = self.series(name, Agg::Last);
        let mut data = series.lock().expect("series poisoned");
        let ring = &mut data.rings[res].ring;
        match ring.back_mut() {
            Some(back) if back.0 == slot_ts => back.1 = value,
            Some(back) if back.0 > slot_ts => {} // stale sample
            _ => {
                ring.push_back((slot_ts, value));
                while ring.len() > resolution.capacity {
                    ring.pop_front();
                }
            }
        }
    }

    /// All points retained for `name` at resolution index `res`,
    /// oldest first, including the open (partial) slot so fresh series
    /// are visible before their first coarse slot closes.
    pub fn query(&self, name: &str, res: usize) -> Vec<(u64, f64)> {
        debug_assert!(res < RESOLUTIONS.len());
        let Some(series) = self
            .series
            .read()
            .expect("timeseries poisoned")
            .get(name)
            .cloned()
        else {
            return Vec::new();
        };
        let data = series.lock().expect("series poisoned");
        let ring = &data.rings[res];
        let mut out: Vec<(u64, f64)> = ring.ring.iter().copied().collect();
        if let Some(acc) = &ring.acc {
            out.push((acc.slot_ts, acc.value(data.agg)));
        }
        out
    }

    /// Sorted names of every series the store has seen.
    pub fn names(&self) -> Vec<String> {
        self.series
            .read()
            .expect("timeseries poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_lookup() {
        assert_eq!(resolution_index("1s"), Some(0));
        assert_eq!(resolution_index("10s"), Some(1));
        assert_eq!(resolution_index("1m"), Some(2));
        assert_eq!(resolution_index("5s"), None);
    }

    #[test]
    fn same_slot_samples_collapse_per_agg() {
        let store = TimeSeriesStore::new();
        store.record("mean", Agg::Mean, 1_000, 2.0);
        store.record("mean", Agg::Mean, 1_500, 4.0);
        store.record("sum", Agg::Sum, 1_000, 2.0);
        store.record("sum", Agg::Sum, 1_500, 4.0);
        store.record("max", Agg::Max, 1_000, 2.0);
        store.record("max", Agg::Max, 1_500, 4.0);
        // Still the open slot — query exposes the partial value.
        assert_eq!(store.query("mean", 0), vec![(1_000, 3.0)]);
        assert_eq!(store.query("sum", 0), vec![(1_000, 6.0)]);
        assert_eq!(store.query("max", 0), vec![(1_000, 4.0)]);
    }

    #[test]
    fn slot_advance_finalizes_and_caps() {
        let store = TimeSeriesStore::new();
        // 700 one-second slots: 1s ring holds the last 600 finalized +
        // the open slot; the 1m ring sees ~12 minute slots.
        for i in 0..700u64 {
            store.record("s", Agg::Last, i * 1_000, i as f64);
        }
        let fine = store.query("s", 0);
        assert_eq!(fine.len(), 601);
        assert_eq!(fine.first().copied(), Some((99_000, 99.0)));
        assert_eq!(fine.last().copied(), Some((699_000, 699.0)));
        let coarse = store.query("s", 2);
        assert_eq!(coarse.len(), 12);
        // Timestamps strictly increase at every resolution.
        for pts in [&fine, &coarse] {
            for w in pts.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn push_at_replaces_same_slot_and_keeps_capacity() {
        let store = TimeSeriesStore::new();
        store.push_at("p99", 2, 60_000, 10.0);
        store.push_at("p99", 2, 90_000, 20.0); // same 1m slot: replace
        assert_eq!(store.query("p99", 2), vec![(60_000, 20.0)]);
        for i in 0..800u64 {
            store.push_at("p99", 2, i * 60_000, i as f64);
        }
        let pts = store.query("p99", 2);
        assert_eq!(pts.len(), 720);
        assert_eq!(pts.last().copied(), Some((799 * 60_000, 799.0)));
        // Other resolutions were never fed.
        assert!(store.query("p99", 0).is_empty());
    }

    #[test]
    fn stale_samples_are_dropped() {
        let store = TimeSeriesStore::new();
        store.record("s", Agg::Sum, 10_000, 1.0);
        store.record("s", Agg::Sum, 9_000, 5.0); // older slot: dropped
        assert_eq!(store.query("s", 0), vec![(10_000, 1.0)]);
        store.push_at("q", 0, 10_000, 1.0);
        store.push_at("q", 0, 9_000, 5.0);
        assert_eq!(store.query("q", 0), vec![(10_000, 1.0)]);
    }

    #[test]
    fn names_are_sorted_and_unknown_series_empty() {
        let store = TimeSeriesStore::new();
        store.record("b", Agg::Last, 0, 1.0);
        store.record("a", Agg::Last, 0, 1.0);
        assert_eq!(store.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(store.query("zzz", 0).is_empty());
    }
}
