//! Lock-free ring buffer of completed spans plus a Chrome
//! `trace_event` JSON exporter (loadable in `chrome://tracing` and
//! Perfetto).
//!
//! Each slot is guarded by a per-slot sequence counter (a safe
//! seqlock): writers bump it odd, store the fields, bump it even;
//! the exporter skips slots whose sequence is odd or changed while
//! reading. Writers claim slots with a single `fetch_add` on the ring
//! head, so recording never blocks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default ring capacity (events); ~0.7 MB of atomics.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 14;

struct Slot {
    seq: AtomicU64,
    /// stage id (16 bits) | depth (16 bits) | thread ordinal (32 bits)
    meta: AtomicU64,
    ts_us: AtomicU64,
    dur_us: AtomicU64,
    items: AtomicU64,
    /// 16-byte request trace id, split across two words (0 = none).
    trace_hi: AtomicU64,
    trace_lo: AtomicU64,
}

pub struct TraceRing {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

/// One completed span, decoded from the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub stage: u16,
    pub depth: u16,
    pub tid: u32,
    pub ts_us: u64,
    pub dur_us: u64,
    pub items: u64,
    /// Request trace id the span belonged to (0 when none was active).
    pub trace: u128,
}

impl TraceRing {
    pub fn new(capacity: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                ts_us: AtomicU64::new(0),
                dur_us: AtomicU64::new(0),
                items: AtomicU64::new(0),
                trace_hi: AtomicU64::new(0),
                trace_lo: AtomicU64::new(0),
            })
            .collect();
        TraceRing {
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// Record one completed span. Wait-free for the writer; on wrap the
    /// oldest events are overwritten.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &self,
        stage: u16,
        depth: u16,
        tid: u32,
        ts_us: u64,
        dur_us: u64,
        items: u64,
        trace: u128,
    ) {
        let n = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[n];
        slot.seq.fetch_add(1, Ordering::AcqRel); // even -> odd: write in progress
        let meta = ((stage as u64) << 48) | ((depth as u64) << 32) | tid as u64;
        slot.meta.store(meta, Ordering::Relaxed);
        slot.ts_us.store(ts_us, Ordering::Relaxed);
        slot.dur_us.store(dur_us, Ordering::Relaxed);
        slot.items.store(items, Ordering::Relaxed);
        slot.trace_hi.store((trace >> 64) as u64, Ordering::Relaxed);
        slot.trace_lo.store(trace as u64, Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::Release); // odd -> even: stable
    }

    /// Number of events ever pushed (may exceed capacity).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Decode every stable slot, sorted by start timestamp. Slots mid
    /// write (odd or changed sequence) are skipped rather than torn.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 || seq1 % 2 == 1 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let ts_us = slot.ts_us.load(Ordering::Relaxed);
            let dur_us = slot.dur_us.load(Ordering::Relaxed);
            let items = slot.items.load(Ordering::Relaxed);
            let trace_hi = slot.trace_hi.load(Ordering::Relaxed);
            let trace_lo = slot.trace_lo.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq1 {
                continue; // overwritten while reading
            }
            out.push(TraceEvent {
                stage: (meta >> 48) as u16,
                depth: (meta >> 32) as u16,
                tid: meta as u32,
                ts_us,
                dur_us,
                items,
                trace: ((trace_hi as u128) << 64) | trace_lo as u128,
            });
        }
        out.sort_by_key(|e| (e.ts_us, std::cmp::Reverse(e.dur_us)));
        out
    }
}

/// Minimal JSON string escaping (names and labels are plain ASCII in
/// practice, but stay correct regardless).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render events as a Chrome `trace_event` JSON object: complete
/// (`"ph":"X"`) events with microsecond `ts`/`dur`. Nesting in the
/// viewer comes from time containment per thread track.
pub fn chrome_trace_json(events: &[TraceEvent], stage_name: impl Fn(u16) -> String) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let trace_arg = if e.trace == 0 {
            String::new()
        } else {
            format!(",\"trace_id\":\"{:032x}\"", e.trace)
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"cpssec\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"items\":{},\"depth\":{}{}}}}}",
            escape_json(&stage_name(e.stage)),
            e.tid,
            e.ts_us,
            e.dur_us,
            e.items,
            e.depth,
            trace_arg,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_decode() {
        let ring = TraceRing::new(8);
        ring.push(3, 1, 7, 100, 25, 4, 0);
        ring.push(1, 0, 7, 90, 50, 0, 0);
        let events = ring.events();
        assert_eq!(events.len(), 2);
        // Sorted by start time.
        assert_eq!(events[0].stage, 1);
        assert_eq!(events[1].stage, 3);
        assert_eq!(events[1].tid, 7);
        assert_eq!(events[1].depth, 1);
        assert_eq!(events[1].items, 4);
    }

    #[test]
    fn wraps_keeping_latest() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.push(i as u16, 0, 1, i * 10, 1, 0, 0);
        }
        let events = ring.events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.stage >= 6));
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn trace_id_round_trips_through_the_ring() {
        let ring = TraceRing::new(4);
        let id: u128 = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210;
        ring.push(2, 0, 1, 10, 5, 0, id);
        ring.push(2, 0, 1, 20, 5, 0, 0);
        let events = ring.events();
        assert_eq!(events[0].trace, id);
        assert_eq!(events[1].trace, 0);
        let json = chrome_trace_json(&events, |_| "serve".to_string());
        assert!(json.contains("\"trace_id\":\"0123456789abcdeffedcba9876543210\""));
        // Events with no active trace omit the key entirely.
        assert_eq!(json.matches("trace_id").count(), 1);
    }

    #[test]
    fn chrome_json_shape() {
        let ring = TraceRing::new(4);
        ring.push(0, 0, 1, 5, 17, 2, 0);
        let json = chrome_trace_json(&ring.events(), |_| "associate".to_string());
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":5"));
        assert!(json.contains("\"dur\":17"));
        assert!(json.contains("\"name\":\"associate\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn escapes_controls() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
