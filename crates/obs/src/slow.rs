//! Ring-buffer slow-query log: requests whose total latency crosses a
//! threshold are kept with their route, model identity, and per-stage
//! breakdown. The ring is behind a `Mutex`, but the lock is taken only
//! for requests that already blew the threshold — never on the hot
//! path — and for `/debug/slow` reads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::escape_json;

/// One slow request, with its stage breakdown (stage name, µs) in span
/// completion order (children before parents).
#[derive(Debug, Clone)]
pub struct SlowEntry {
    pub route: String,
    pub status: u16,
    pub total_us: u64,
    /// Request trace id (0 = none was active), correlating this entry
    /// with `/debug/requests/:id` and `--trace` output.
    pub trace_id: u128,
    pub model_hash: Option<u64>,
    pub fidelity: Option<String>,
    pub stages: Vec<(String, u64)>,
}

#[derive(Debug)]
pub struct SlowLog {
    threshold_us: AtomicU64,
    capacity: usize,
    observed: AtomicU64,
    ring: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    pub fn new(capacity: usize, threshold_us: u64) -> Self {
        SlowLog {
            threshold_us: AtomicU64::new(threshold_us),
            capacity: capacity.max(1),
            observed: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// Total slow requests seen (including ones the ring has dropped).
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Keep `entry` if it crossed the threshold; returns whether it was
    /// recorded. The cheap below-threshold path is one atomic load.
    pub fn observe(&self, entry: SlowEntry) -> bool {
        if entry.total_us < self.threshold_us() {
            return false;
        }
        self.observed.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        ring.push_back(entry);
        while ring.len() > self.capacity {
            ring.pop_front();
        }
        true
    }

    /// Newest-last copy of the retained entries.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// JSON document for `GET /debug/slow`.
    pub fn to_json(&self) -> String {
        let entries = self.entries();
        let mut out = String::with_capacity(128 + entries.len() * 160);
        out.push_str(&format!(
            "{{\"threshold_us\":{},\"observed\":{},\"entries\":[",
            self.threshold_us(),
            self.observed(),
        ));
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"route\":\"{}\",\"status\":{},\"total_us\":{}",
                escape_json(&e.route),
                e.status,
                e.total_us,
            ));
            match e.trace_id {
                0 => out.push_str(",\"trace_id\":null"),
                id => out.push_str(&format!(",\"trace_id\":\"{id:032x}\"")),
            }
            match e.model_hash {
                Some(h) => out.push_str(&format!(",\"model_hash\":\"{h:016x}\"")),
                None => out.push_str(",\"model_hash\":null"),
            }
            match &e.fidelity {
                Some(f) => out.push_str(&format!(",\"fidelity\":\"{}\"", escape_json(f))),
                None => out.push_str(",\"fidelity\":null"),
            }
            out.push_str(",\"stages\":[");
            for (j, (stage, us)) in e.stages.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"stage\":\"{}\",\"us\":{us}}}",
                    escape_json(stage)
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(route: &str, total_us: u64) -> SlowEntry {
        SlowEntry {
            route: route.to_string(),
            status: 200,
            total_us,
            trace_id: 0xdead_beef,
            model_hash: Some(0xabc),
            fidelity: Some("implementation".to_string()),
            stages: vec![("tokenize".to_string(), 10), ("score".to_string(), 40)],
        }
    }

    #[test]
    fn threshold_filters() {
        let log = SlowLog::new(8, 100);
        assert!(!log.observe(entry("GET /a", 99)));
        assert!(log.observe(entry("GET /a", 100)));
        assert_eq!(log.entries().len(), 1);
        assert_eq!(log.observed(), 1);
    }

    #[test]
    fn ring_drops_oldest() {
        let log = SlowLog::new(2, 0);
        for i in 0..5u64 {
            log.observe(entry(&format!("GET /{i}"), 10 + i));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].route, "GET /3");
        assert_eq!(entries[1].route, "GET /4");
        assert_eq!(log.observed(), 5);
    }

    #[test]
    fn json_has_expected_fields() {
        let log = SlowLog::new(4, 0);
        log.observe(entry("GET /models/:id/associate", 250));
        let json = log.to_json();
        assert!(json.contains("\"threshold_us\":0"));
        assert!(json.contains("\"route\":\"GET /models/:id/associate\""));
        assert!(json.contains("\"model_hash\":\"0000000000000abc\""));
        assert!(json.contains("\"fidelity\":\"implementation\""));
        assert!(json.contains("{\"stage\":\"tokenize\",\"us\":10}"));
        assert!(json.contains("\"trace_id\":\"000000000000000000000000deadbeef\""));
    }
}
