//! Per-route latency/error SLOs with multi-window error-budget
//! burn-rate alerting.
//!
//! Each configured route declares: a latency target (`target_us`), the
//! fraction of requests that must meet it (`objective`, e.g. 0.99),
//! two evaluation windows measured in telemetry ticks (`short_ticks`,
//! `long_ticks`), and a `burn_threshold`. Every tick the monitor is
//! fed the route's (good, bad) request counts for that tick; a request
//! is bad when it missed the latency target or returned an error. The
//! burn rate over a window is
//!
//! ```text
//! burn = bad_fraction / (1 - objective)
//! ```
//!
//! i.e. how many times faster than "exactly on budget" the error
//! budget is being spent (burn 1.0 = spending the whole budget over
//! the objective period, burn 2.0 = twice that). An alert fires when
//! BOTH windows burn at or above the threshold — the long window keeps
//! one-tick blips from paging, the short window makes the alert reset
//! quickly once the regression stops — and resolves as soon as the
//! short window drops back below it.
//!
//! Config comes from a `slo.toml` file or the `CPSSEC_SLO` env var
//! (same syntax, `;` accepted as a line separator). Only the tiny
//! TOML subset below is parsed — `[[slo]]` tables of scalar keys:
//!
//! ```toml
//! [[slo]]
//! route = "GET /models/:id/associate"
//! target_us = 50000
//! objective = 0.99
//! short_ticks = 60     # optional, default 60
//! long_ticks = 300     # optional, default 300
//! burn_threshold = 2.0 # optional, default 2.0
//! ```

use std::collections::VecDeque;

use crate::trace::escape_json;

/// Default short evaluation window, in ticks.
pub const DEFAULT_SHORT_TICKS: usize = 60;
/// Default long evaluation window, in ticks.
pub const DEFAULT_LONG_TICKS: usize = 300;
/// Default burn-rate threshold.
pub const DEFAULT_BURN_THRESHOLD: f64 = 2.0;

/// One route's objective.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSlo {
    /// Route label as reported to metrics (e.g. `GET /models/:id/associate`).
    pub route: String,
    /// Latency target in µs; a request over this is "bad".
    pub target_us: u64,
    /// Fraction of requests that must be good (0 < objective < 1).
    pub objective: f64,
    /// Short burn window, in telemetry ticks.
    pub short_ticks: usize,
    /// Long burn window, in telemetry ticks.
    pub long_ticks: usize,
    /// Fire when both windows burn at or above this rate.
    pub burn_threshold: f64,
}

/// Parsed SLO configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloConfig {
    pub slos: Vec<RouteSlo>,
}

fn parse_scalar(raw: &str) -> &str {
    let raw = raw.trim();
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .unwrap_or(raw)
}

impl SloConfig {
    /// Parse the `[[slo]]` TOML subset. `;` is accepted as a line
    /// separator so the same syntax fits in the `CPSSEC_SLO` env var.
    pub fn parse(text: &str) -> Result<SloConfig, String> {
        #[derive(Default)]
        struct Partial {
            route: Option<String>,
            target_us: Option<u64>,
            objective: Option<f64>,
            short_ticks: Option<usize>,
            long_ticks: Option<usize>,
            burn_threshold: Option<f64>,
        }
        fn close(p: Partial, out: &mut Vec<RouteSlo>) -> Result<(), String> {
            let route = p.route.ok_or("slo entry missing `route`")?;
            let target_us = p
                .target_us
                .ok_or_else(|| format!("slo for {route:?} missing `target_us`"))?;
            let objective = p
                .objective
                .ok_or_else(|| format!("slo for {route:?} missing `objective`"))?;
            if !(objective > 0.0 && objective < 1.0) {
                return Err(format!(
                    "slo for {route:?}: objective must be in (0,1), got {objective}"
                ));
            }
            let short_ticks = p.short_ticks.unwrap_or(DEFAULT_SHORT_TICKS).max(1);
            let long_ticks = p.long_ticks.unwrap_or(DEFAULT_LONG_TICKS).max(short_ticks);
            let burn_threshold = p.burn_threshold.unwrap_or(DEFAULT_BURN_THRESHOLD);
            if burn_threshold <= 0.0 {
                return Err(format!(
                    "slo for {route:?}: burn_threshold must be positive"
                ));
            }
            out.push(RouteSlo {
                route,
                target_us,
                objective,
                short_ticks,
                long_ticks,
                burn_threshold,
            });
            Ok(())
        }

        let mut slos = Vec::new();
        let mut open: Option<Partial> = None;
        for raw_line in text.split(['\n', ';']) {
            let line = match raw_line.find('#') {
                // Only strip comments outside quotes; route values are
                // the one quoted field and never contain `#` in
                // practice, but keep quoted text intact regardless.
                Some(pos)
                    if !raw_line[..pos].contains('"')
                        || raw_line[..pos].matches('"').count() % 2 == 0 =>
                {
                    &raw_line[..pos]
                }
                _ => raw_line,
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[slo]]" {
                if let Some(p) = open.take() {
                    close(p, &mut slos)?;
                }
                open = Some(Partial::default());
                continue;
            }
            let Some(p) = open.as_mut() else {
                return Err(format!("key outside [[slo]] table: {line:?}"));
            };
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("expected key = value, got {line:?}"))?;
            let value = parse_scalar(value);
            match key.trim() {
                "route" => p.route = Some(value.to_string()),
                "target_us" => {
                    p.target_us = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad target_us {value:?}"))?,
                    )
                }
                "objective" => {
                    p.objective = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad objective {value:?}"))?,
                    )
                }
                "short_ticks" => {
                    p.short_ticks = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad short_ticks {value:?}"))?,
                    )
                }
                "long_ticks" => {
                    p.long_ticks = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad long_ticks {value:?}"))?,
                    )
                }
                "burn_threshold" => {
                    p.burn_threshold = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad burn_threshold {value:?}"))?,
                    )
                }
                other => return Err(format!("unknown slo key {other:?}")),
            }
        }
        if let Some(p) = open.take() {
            close(p, &mut slos)?;
        }
        Ok(SloConfig { slos })
    }
}

/// Alert state of one route's SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    Ok,
    Firing,
}

impl AlertState {
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Firing => "firing",
        }
    }
}

/// A state transition produced by one tick, for logging.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    pub route: String,
    pub state: AlertState,
    pub burn_short: f64,
    pub burn_long: f64,
}

#[derive(Debug)]
struct RouteMonitor {
    cfg: RouteSlo,
    /// Per-tick (good, bad) counts, newest last; bounded by long_ticks.
    window: VecDeque<(u64, u64)>,
    state: AlertState,
    since_tick: u64,
    transitions: u64,
    burn_short: f64,
    burn_long: f64,
}

impl RouteMonitor {
    fn burn_over(&self, ticks: usize) -> f64 {
        let mut good = 0u64;
        let mut bad = 0u64;
        for &(g, b) in self.window.iter().rev().take(ticks) {
            good += g;
            bad += b;
        }
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let bad_frac = bad as f64 / total as f64;
        bad_frac / (1.0 - self.cfg.objective)
    }
}

/// Evaluates every configured route's burn rate once per telemetry
/// tick. Single-threaded by design — the server wraps it in a mutex
/// owned by the tick thread.
#[derive(Debug, Default)]
pub struct SloMonitor {
    tick: u64,
    routes: Vec<RouteMonitor>,
}

impl SloMonitor {
    #[must_use]
    pub fn new(config: SloConfig) -> SloMonitor {
        SloMonitor {
            tick: 0,
            routes: config
                .slos
                .into_iter()
                .map(|cfg| RouteMonitor {
                    cfg,
                    window: VecDeque::new(),
                    state: AlertState::Ok,
                    since_tick: 0,
                    transitions: 0,
                    burn_short: 0.0,
                    burn_long: 0.0,
                })
                .collect(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Routes the monitor watches.
    pub fn configured_routes(&self) -> Vec<&RouteSlo> {
        self.routes.iter().map(|r| &r.cfg).collect()
    }

    /// Advance one tick. `counts` maps a route to its (good, bad)
    /// request counts for this tick. Returns any state transitions.
    pub fn tick(&mut self, counts: impl Fn(&RouteSlo) -> (u64, u64)) -> Vec<Transition> {
        self.tick += 1;
        let mut out = Vec::new();
        for route in &mut self.routes {
            let (good, bad) = counts(&route.cfg);
            route.window.push_back((good, bad));
            while route.window.len() > route.cfg.long_ticks {
                route.window.pop_front();
            }
            route.burn_short = route.burn_over(route.cfg.short_ticks);
            route.burn_long = route.burn_over(route.cfg.long_ticks);
            let next = match route.state {
                AlertState::Ok
                    if route.burn_short >= route.cfg.burn_threshold
                        && route.burn_long >= route.cfg.burn_threshold =>
                {
                    AlertState::Firing
                }
                AlertState::Firing if route.burn_short < route.cfg.burn_threshold => AlertState::Ok,
                same => same,
            };
            if next != route.state {
                route.state = next;
                route.since_tick = self.tick;
                route.transitions += 1;
                out.push(Transition {
                    route: route.cfg.route.clone(),
                    state: next,
                    burn_short: route.burn_short,
                    burn_long: route.burn_long,
                });
            }
        }
        out
    }

    /// Number of routes currently firing.
    pub fn firing(&self) -> usize {
        self.routes
            .iter()
            .filter(|r| r.state == AlertState::Firing)
            .count()
    }

    /// JSON document for `GET /alerts`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.routes.len() * 192);
        out.push_str(&format!(
            "{{\"tick\":{},\"firing\":{},\"alerts\":[",
            self.tick,
            self.firing(),
        ));
        for (i, r) in self.routes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"route\":\"{}\",\"state\":\"{}\",\"burn_short\":{:.4},\"burn_long\":{:.4},\
                 \"target_us\":{},\"objective\":{},\"burn_threshold\":{},\
                 \"short_ticks\":{},\"long_ticks\":{},\"since_tick\":{},\"transitions\":{}}}",
                escape_json(&r.cfg.route),
                r.state.as_str(),
                r.burn_short,
                r.burn_long,
                r.cfg.target_us,
                r.cfg.objective,
                r.cfg.burn_threshold,
                r.cfg.short_ticks,
                r.cfg.long_ticks,
                r.since_tick,
                r.transitions,
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: &str = r#"
        [[slo]]
        route = "GET /models/:id/associate"
        target_us = 50000
        objective = 0.99

        [[slo]]
        route = "GET /table1"
        target_us = 250000
        objective = 0.9
        short_ticks = 3
        long_ticks = 6
        burn_threshold = 1.5
    "#;

    #[test]
    fn parses_the_toml_subset() {
        let cfg = SloConfig::parse(CFG).unwrap();
        assert_eq!(cfg.slos.len(), 2);
        assert_eq!(cfg.slos[0].route, "GET /models/:id/associate");
        assert_eq!(cfg.slos[0].target_us, 50_000);
        assert_eq!(cfg.slos[0].short_ticks, DEFAULT_SHORT_TICKS);
        assert_eq!(cfg.slos[0].long_ticks, DEFAULT_LONG_TICKS);
        assert_eq!(cfg.slos[1].short_ticks, 3);
        assert_eq!(cfg.slos[1].long_ticks, 6);
        assert!((cfg.slos[1].burn_threshold - 1.5).abs() < 1e-12);
    }

    #[test]
    fn env_style_semicolon_separators_parse() {
        let cfg = SloConfig::parse(
            "[[slo]]; route = \"GET /healthz\"; target_us = 1000; objective = 0.999",
        )
        .unwrap();
        assert_eq!(cfg.slos.len(), 1);
        assert_eq!(cfg.slos[0].route, "GET /healthz");
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(
            SloConfig::parse("route = \"x\"").is_err(),
            "key before table"
        );
        assert!(
            SloConfig::parse("[[slo]]\nroute = \"x\"").is_err(),
            "missing target"
        );
        assert!(
            SloConfig::parse("[[slo]]\nroute=\"x\"\ntarget_us=1\nobjective=1.5").is_err(),
            "objective out of range"
        );
        assert!(
            SloConfig::parse("[[slo]]\nroute=\"x\"\ntarget_us=1\nobjective=0.9\nnope=1").is_err(),
            "unknown key"
        );
    }

    fn monitor(short: usize, long: usize, objective: f64) -> SloMonitor {
        SloMonitor::new(SloConfig {
            slos: vec![RouteSlo {
                route: "GET /x".to_string(),
                target_us: 1_000,
                objective,
                short_ticks: short,
                long_ticks: long,
                burn_threshold: 2.0,
            }],
        })
    }

    #[test]
    fn fires_within_two_long_windows_and_recovers() {
        let mut m = monitor(2, 4, 0.9);
        // Healthy traffic: 100 good per tick.
        for _ in 0..4 {
            assert!(m.tick(|_| (100, 0)).is_empty());
        }
        // Regression: everything bad. bad_frac must climb past
        // 2.0 * (1 - 0.9) = 20% in both windows.
        let mut fired_at = None;
        for i in 0..8 {
            let t = m.tick(|_| (0, 100));
            if let Some(tr) = t.first() {
                assert_eq!(tr.state, AlertState::Firing);
                assert!(tr.burn_short >= 2.0 && tr.burn_long >= 2.0);
                fired_at = Some(i);
                break;
            }
        }
        // Short window (2 ticks) saturates immediately; the long
        // window needs 20% of 4 ticks bad — fires by the 2nd bad tick,
        // comfortably inside two long windows.
        assert!(fired_at.unwrap() <= 1, "fired at {fired_at:?}");
        assert_eq!(m.firing(), 1);
        // Recovery: short window must flush its bad ticks.
        let mut resolved_at = None;
        for i in 0..8 {
            let t = m.tick(|_| (100, 0));
            if let Some(tr) = t.first() {
                assert_eq!(tr.state, AlertState::Ok);
                resolved_at = Some(i);
                break;
            }
        }
        assert!(resolved_at.unwrap() <= 2, "resolved at {resolved_at:?}");
        assert_eq!(m.firing(), 0);
        let json = m.to_json();
        assert!(json.contains("\"route\":\"GET /x\""));
        assert!(json.contains("\"state\":\"ok\""));
        assert!(json.contains("\"transitions\":2"));
    }

    #[test]
    fn one_tick_blip_does_not_fire() {
        let mut m = monitor(2, 10, 0.99);
        for _ in 0..10 {
            m.tick(|_| (100, 0));
        }
        // A small blip: 3 bad of 100. The short window's bad fraction
        // is 3/200 = 1.5%, burn 1.5 < 2 — below threshold, no page.
        let t = m.tick(|_| (97, 3));
        assert!(t.is_empty(), "blip fired: {t:?}");
        assert_eq!(m.firing(), 0);
    }

    #[test]
    fn idle_ticks_burn_nothing() {
        let mut m = monitor(2, 4, 0.99);
        for _ in 0..20 {
            assert!(m.tick(|_| (0, 0)).is_empty());
        }
        assert_eq!(m.firing(), 0);
    }
}
