//! Property tests for the log-linear histogram: reported quantiles
//! stay within the true quantile's bucket bounds, and merging two
//! histograms is indistinguishable from recording the concatenated
//! sample stream.

use cpssec_obs::hist::{bucket_bounds, index_of, Histogram, MAX_VALUE_US};
use proptest::prelude::*;

fn record_all(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Nearest-rank quantile over the raw samples (the ground truth the
/// histogram approximates), with out-of-range values clamped the same
/// way recording clamps them.
fn true_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted: Vec<u64> = samples.iter().map(|&v| v.min(MAX_VALUE_US)).collect();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn assert_quantile_in_true_bucket(samples: &[u64], q: f64) {
    let h = record_all(samples);
    let reported = h.snapshot().quantile_us(q);
    let truth = true_quantile(samples, q);
    let (low, high) = bucket_bounds(index_of(truth));
    assert!(
        low <= truth && truth <= high,
        "bucket bounds must contain the true quantile"
    );
    assert!(
        reported >= low && reported <= high,
        "q={q}: reported {reported} outside true-quantile bucket [{low},{high}] \
         (truth {truth}, n={})",
        samples.len()
    );
}

proptest! {
    #[test]
    fn p50_and_p99_fall_in_true_quantile_bucket(
        samples in prop::collection::vec(0u64..2_000_000, 1..200)
    ) {
        assert_quantile_in_true_bucket(&samples, 0.50);
        assert_quantile_in_true_bucket(&samples, 0.90);
        assert_quantile_in_true_bucket(&samples, 0.99);
        assert_quantile_in_true_bucket(&samples, 0.999);
    }

    #[test]
    fn quantiles_hold_even_past_the_tracked_range(
        samples in prop::collection::vec(0u64..(1u64 << 26), 1..100)
    ) {
        // Values above MAX_VALUE_US clamp into the top bucket on both
        // the histogram and the ground-truth side.
        assert_quantile_in_true_bucket(&samples, 0.50);
        assert_quantile_in_true_bucket(&samples, 0.99);
    }

    #[test]
    fn merge_equals_concatenated_recording(
        a in prop::collection::vec(0u64..5_000_000, 0..150),
        b in prop::collection::vec(0u64..5_000_000, 0..150),
    ) {
        let ha = record_all(&a);
        let hb = record_all(&b);
        ha.merge(&hb);

        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let hc = record_all(&concat);

        prop_assert_eq!(ha.snapshot(), hc.snapshot());
        prop_assert_eq!(ha.count(), concat.len() as u64);
    }

    #[test]
    fn snapshot_diff_then_merge_round_trips(
        before in prop::collection::vec(0u64..5_000_000, 0..150),
        window in prop::collection::vec(0u64..5_000_000, 0..150),
    ) {
        // diff of two snapshots of one cumulative histogram recovers
        // exactly the samples recorded in between, and merging the
        // delta back restores the later snapshot.
        let h = record_all(&before);
        let earlier = h.snapshot();
        for &v in &window {
            h.record(v);
        }
        let later = h.snapshot();
        let delta = later.diff(&earlier);

        prop_assert_eq!(&delta, &record_all(&window).snapshot());
        let mut rebuilt = earlier;
        rebuilt.merge(&delta);
        prop_assert_eq!(rebuilt, later);
    }

    #[test]
    fn cumulative_counts_are_monotone_and_complete(
        samples in prop::collection::vec(0u64..10_000_000, 1..120)
    ) {
        let snap = record_all(&samples).snapshot();
        let mut prev = 0u64;
        for exp in 0..=12u32 {
            let bound = 4u64.pow(exp);
            let c = snap.count_le(bound);
            prop_assert!(c >= prev, "count_le must be monotone in the bound");
            prev = c;
        }
        prop_assert_eq!(snap.count_le(MAX_VALUE_US), samples.len() as u64);
    }
}
