//! `cpssec-server`: the analysis pipeline as a concurrent service.
//!
//! The paper's dashboard is interactive — "the systems engineer or
//! security analyst … change[s] the model on the fly and immediately
//! see[s] the new results" (§3). This crate serves that loop over HTTP:
//! a multithreaded TCP server (hand-rolled HTTP/1.1, no external crates)
//! in front of the exact same pipeline the CLI runs in batch, with three
//! service-shaped additions:
//!
//! * a **session store** of named models (upload GraphML, or use the
//!   built-in `scada` demonstration model) — [`session`];
//! * a **content-addressed result cache** keyed by model content hash +
//!   fidelity + scoring + canonical filter spec — [`cache`]; identical
//!   requests are served from memory, and a model edit changes the hash
//!   so stale entries are simply never hit;
//! * **incremental what-if**: the baseline association is cached as the
//!   *prior* and [`cpssec_analysis::AssociationMap::rebuild`] re-queries
//!   only components whose query text actually changed.
//!
//! Concurrency shape: one nonblocking accept loop feeding a fixed
//! [`pool::WorkerPool`] over `mpsc`; shared state is an `Arc<AppState>`
//! (immutable corpus + search engines, `RwLock` session store, sharded
//! `Mutex` caches). Responses are byte-identical to the single-threaded
//! pipeline because both sides call the same canonical renderers.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod campaigns;
pub mod dashboard;
pub mod http;
pub mod load;
pub mod metrics;
pub mod pool;
pub mod requests;
pub mod router;
pub mod scenarios;
pub mod session;
pub mod signal;
pub mod telemetry;

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cpssec_analysis::AssociationMap;
use cpssec_attackdb::Corpus;
use cpssec_search::snapshot::SnapshotError;
use cpssec_search::{snapshot, view, DeltaInfo, MatchConfig, ScoringModel, SearchEngine};

use cache::Cache;
use metrics::{CorpusGauges, Metrics, StartupStats};
use session::SessionStore;

/// One immutable generation of queryable corpus state. Delta applies and
/// compactions build the *next* generation off-lock and swap it in;
/// in-flight queries keep whatever `Arc` clones they already took, so a
/// swap never invalidates a running request.
#[derive(Debug, Clone)]
struct CorpusStore {
    corpus: Arc<Corpus>,
    tfidf: Arc<SearchEngine>,
    bm25: Arc<SearchEngine>,
    /// Chain anchor: the snapshot id this state would encode to. Every
    /// delta must name it as parent; each apply advances it to the
    /// delta's `child_id`, and a compaction re-anchors it to the
    /// compacted base snapshot's id.
    state_id: u64,
    /// Deltas applied since the last compaction (or boot).
    deltas_since_compaction: u32,
}

/// The swappable slot holding the current [`CorpusStore`]. `None` while a
/// mapped-snapshot boot is still thawing the owned state in the
/// background; readers block on the condvar, so `/healthz` and
/// `/metrics` (which never touch the slot) answer immediately while
/// corpus-backed endpoints wait for the thaw.
#[derive(Debug, Default)]
struct StoreSlot {
    slot: Mutex<Option<CorpusStore>>,
    ready: Condvar,
}

impl StoreSlot {
    /// Blocks until a store is installed, then returns a clone (four
    /// `Arc` bumps) of the current generation.
    fn wait(&self) -> CorpusStore {
        let mut slot = self.slot.lock().expect("corpus store poisoned");
        loop {
            if let Some(store) = slot.as_ref() {
                return store.clone();
            }
            slot = self.ready.wait(slot).expect("corpus store poisoned");
        }
    }

    fn install(&self, store: CorpusStore) {
        *self.slot.lock().expect("corpus store poisoned") = Some(store);
        self.ready.notify_all();
    }
}

/// Everything the workers share.
#[derive(Debug)]
pub struct AppState {
    /// The current corpus + engines generation (swapped by delta applies).
    store: StoreSlot,
    /// Named models.
    pub sessions: SessionStore,
    /// Rendered response bodies, content-addressed.
    pub responses: Cache<Arc<String>>,
    /// Baseline association maps (the what-if priors), content-addressed.
    pub priors: Cache<Arc<AssociationMap>>,
    /// Request counters and latency histograms.
    pub metrics: Metrics,
    /// Ring of requests that crossed the slow-query threshold, served at
    /// `GET /debug/slow`.
    pub slow: cpssec_obs::SlowLog,
    /// Index-load timing and snapshot hit/miss. Behind a mutex because a
    /// mapped boot fills `index_load_us` in once the background thaw
    /// lands; read it through [`AppState::startup`].
    startup: Mutex<StartupStats>,
    /// Live corpus-state gauges (`corpus_records`, `delta_applies_total`,
    /// `compactions_total`, `snapshot_mapped_bytes`).
    pub gauges: CorpusGauges,
    /// Time-series store + SLO monitor, fed by the telemetry tick.
    pub telemetry: telemetry::Telemetry,
    /// Ring of recently served requests, keyed by trace id
    /// (`GET /debug/requests/:id`).
    pub requests: requests::RequestLog,
    /// Worker-pool saturation gauges, sampled each tick.
    pub pool_stats: Arc<pool::PoolStats>,
    /// Artificial per-request delay in µs (`POST /debug/delay?us=N`) —
    /// a test hook for inducing latency regressions against the SLOs.
    pub test_delay: AtomicU64,
    /// Fleet campaign jobs (`POST /scenarios/batch` + progress polls).
    pub fleet: scenarios::FleetJobs,
    /// Exploit-chain campaign jobs (`POST /models/:id/campaigns`).
    pub campaigns: scenarios::FleetJobs,
}

/// Retained slow-query entries.
const SLOW_LOG_CAPACITY: usize = 64;
/// Default slow-query threshold (µs); `CPSSEC_SLOW_US` overrides it.
const SLOW_THRESHOLD_US: u64 = 100_000;

fn slow_threshold_us() -> u64 {
    std::env::var("CPSSEC_SLOW_US")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SLOW_THRESHOLD_US)
}

/// Deltas between compactions: every K-th `POST /corpus/delta` rebases
/// the grown state into a fresh base snapshot (verified byte-identical
/// to a rebuild-from-scratch) instead of letting the chain grow.
pub const COMPACTION_EVERY: u32 = 4;

/// What a successful delta apply reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Parsed header of the applied delta.
    pub info: DeltaInfo,
    /// Records the batch added across all families.
    pub records: usize,
    /// The new chain anchor — the next delta's required parent id.
    pub state_id: u64,
    /// Whether this apply crossed [`COMPACTION_EVERY`] and rebased.
    pub compacted: bool,
}

/// The chain anchor for a corpus-built state: the id of the snapshot this
/// state would encode to. One extra encode at boot buys corpus-built and
/// snapshot-booted servers the same delta-chain semantics — encoding is
/// deterministic, so a delta built against the equivalent `.cpsnap`
/// applies cleanly to a server that built the same corpus from source.
fn content_state_id(corpus: &Corpus, engine: &SearchEngine) -> u64 {
    let bytes = snapshot::encode(corpus, engine);
    snapshot::inspect(&bytes).map_or(0, |info| info.snapshot_id)
}

impl AppState {
    /// Builds the shared state: indexes the corpus once per scoring model
    /// and preloads the `scada` session. Counts as a snapshot *miss* in
    /// `/metrics` — the engines were built, not thawed.
    #[must_use]
    pub fn new(corpus: Corpus) -> Arc<AppState> {
        Self::with_capacities(corpus, 256, 64)
    }

    /// [`AppState::new`] with explicit cache capacities — lets tests
    /// exercise eviction without thousands of fill requests.
    #[must_use]
    pub fn with_capacities(corpus: Corpus, responses: usize, priors: usize) -> Arc<AppState> {
        let started = Instant::now();
        let engine_of = |scoring| {
            Arc::new(SearchEngine::with_config(
                &corpus,
                MatchConfig {
                    scoring,
                    ..MatchConfig::default()
                },
            ))
        };
        let tfidf = engine_of(ScoringModel::TfIdf);
        let bm25 = engine_of(ScoringModel::Bm25);
        let state_id = content_state_id(&corpus, &tfidf);
        let startup = StartupStats {
            index_load_us: elapsed_us(started),
            snapshot_hits: 0,
            snapshot_misses: 1,
            snapshot_load_us: 0,
        };
        let store = CorpusStore {
            corpus: Arc::new(corpus),
            tfidf,
            bm25,
            state_id,
            deltas_since_compaction: 0,
        };
        Self::assemble(Some(store), startup, responses, priors)
    }

    /// Thaws the shared state from a `.cpsnap` image: one decode restores
    /// the corpus and the TF-IDF engine with its precomputed weights; the
    /// BM25 twin shares the same thawed index. Counts as a snapshot *hit*.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from [`snapshot::decode`].
    pub fn from_snapshot(bytes: &[u8]) -> Result<Arc<AppState>, SnapshotError> {
        let started = Instant::now();
        let state_id = snapshot::inspect(bytes)?.snapshot_id;
        let (corpus, engine_tfidf) = snapshot::decode(bytes)?;
        let engine_bm25 = engine_tfidf.with_scoring(ScoringModel::Bm25);
        let load_us = elapsed_us(started);
        let startup = StartupStats {
            index_load_us: load_us,
            snapshot_hits: 1,
            snapshot_misses: 0,
            snapshot_load_us: load_us,
        };
        let store = CorpusStore {
            corpus: Arc::new(corpus),
            tfidf: Arc::new(engine_tfidf),
            bm25: Arc::new(engine_bm25),
            state_id,
            deltas_since_compaction: 0,
        };
        Ok(Self::assemble(Some(store), startup, 256, 64))
    }

    /// Boots from a mapped `.cpsnap` image without decoding it up front.
    /// The zero-copy view is opened and checksum-verified synchronously —
    /// corruption fails fast, and that open is what `snapshot_load_us`
    /// measures — then the owned corpus + engines thaw on a background
    /// thread and are swapped in. `/healthz` and `/metrics` serve
    /// immediately; corpus-backed endpoints block until the thaw lands.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from [`view::open_verified`].
    pub fn from_snapshot_mapped(bytes: Arc<[u8]>) -> Result<Arc<AppState>, SnapshotError> {
        let started = Instant::now();
        let mapped = view::open_verified(Arc::clone(&bytes))?;
        let startup = StartupStats {
            index_load_us: 0,
            snapshot_hits: 1,
            snapshot_misses: 0,
            snapshot_load_us: elapsed_us(started),
        };
        let snapshot_id = mapped.snapshot_id();
        let records = mapped.corpus().record_count();
        let state = Self::assemble(None, startup, 256, 64);
        state
            .gauges
            .snapshot_mapped_bytes
            .store(bytes.len() as u64, Ordering::Relaxed);
        state
            .gauges
            .corpus_records
            .store(records as u64, Ordering::Relaxed);
        let thaw_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("cpssec-thaw".to_owned())
            .spawn(move || {
                let started = Instant::now();
                // `open_verified` already proved every checksum, so a
                // decode failure here is an invariant breach, not bad
                // input — exiting beats blocking every query forever.
                let (corpus, tfidf) = snapshot::decode(&bytes[..]).unwrap_or_else(|e| {
                    eprintln!("fatal: snapshot thaw failed after verification: {e}");
                    std::process::exit(1);
                });
                let bm25 = tfidf.with_scoring(ScoringModel::Bm25);
                thaw_state.store.install(CorpusStore {
                    corpus: Arc::new(corpus),
                    tfidf: Arc::new(tfidf),
                    bm25: Arc::new(bm25),
                    state_id: snapshot_id,
                    deltas_since_compaction: 0,
                });
                thaw_state
                    .startup
                    .lock()
                    .expect("startup poisoned")
                    .index_load_us = elapsed_us(started);
            })
            .expect("spawn thaw thread");
        Ok(state)
    }

    fn assemble(
        store: Option<CorpusStore>,
        startup: StartupStats,
        responses: usize,
        priors: usize,
    ) -> Arc<AppState> {
        let records = store.as_ref().map(|s| s.corpus.stats().total());
        let state = Arc::new(AppState {
            store: StoreSlot {
                slot: Mutex::new(store),
                ready: Condvar::new(),
            },
            sessions: SessionStore::new(),
            responses: Cache::new(responses),
            priors: Cache::new(priors),
            metrics: Metrics::new(),
            slow: cpssec_obs::SlowLog::new(SLOW_LOG_CAPACITY, slow_threshold_us()),
            startup: Mutex::new(startup),
            gauges: CorpusGauges::default(),
            telemetry: telemetry::Telemetry::new(),
            requests: requests::RequestLog::new(requests::DEFAULT_REQUEST_LOG_CAPACITY),
            pool_stats: Arc::new(pool::PoolStats::new()),
            test_delay: AtomicU64::new(0),
            fleet: scenarios::FleetJobs::new(),
            campaigns: scenarios::FleetJobs::new(),
        });
        if let Some(n) = records {
            state
                .gauges
                .corpus_records
                .store(n as u64, Ordering::Relaxed);
        }
        state
    }

    /// The shared corpus (current generation). Blocks during a mapped
    /// boot until the background thaw installs the owned state.
    #[must_use]
    pub fn corpus(&self) -> Arc<Corpus> {
        self.store.wait().corpus
    }

    /// The shared engine for a scoring model (current generation);
    /// blocks like [`AppState::corpus`].
    #[must_use]
    pub fn engine(&self, scoring: ScoringModel) -> Arc<SearchEngine> {
        let store = self.store.wait();
        match scoring {
            ScoringModel::TfIdf => store.tfidf,
            ScoringModel::Bm25 => store.bm25,
        }
    }

    /// The current chain anchor: the snapshot id the installed state
    /// encodes to. A delta must name it as its parent to apply.
    #[must_use]
    pub fn state_id(&self) -> u64 {
        self.store.wait().state_id
    }

    /// Point-in-time copy of the startup facts.
    #[must_use]
    pub fn startup(&self) -> StartupStats {
        *self.startup.lock().expect("startup poisoned")
    }

    /// Applies a `.cpsdelta` batch to the current generation and swaps
    /// the grown state in. The store lock is held for the whole apply so
    /// concurrent deltas serialize; queries only clone `Arc`s under that
    /// lock, so they stall briefly rather than observe a half-applied
    /// state. Every [`COMPACTION_EVERY`]-th apply also rebases: the
    /// grown state is proven byte-identical to a rebuild-from-scratch
    /// before the new anchor is adopted. Both result caches are cleared
    /// on success — their keys do not encode corpus content.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] for malformed bytes, a parent-id mismatch (the
    /// router maps that one to 409), an append-only id violation, or a
    /// compaction divergence. On error the installed state is untouched.
    pub fn apply_corpus_delta(&self, bytes: &[u8]) -> Result<DeltaOutcome, SnapshotError> {
        let mut slot = self.store.slot.lock().expect("corpus store poisoned");
        while slot.is_none() {
            slot = self.store.ready.wait(slot).expect("corpus store poisoned");
        }
        let current = slot.as_ref().expect("store installed").clone();
        // Grow clones; the installed state stays valid if anything fails.
        let mut corpus = (*current.corpus).clone();
        let mut tfidf = (*current.tfidf).clone();
        let info = cpssec_search::apply_delta(&mut corpus, &mut tfidf, bytes, current.state_id)?;
        let bm25 = tfidf.with_scoring(ScoringModel::Bm25);
        let mut next = CorpusStore {
            corpus: Arc::new(corpus),
            tfidf: Arc::new(tfidf),
            bm25: Arc::new(bm25),
            state_id: info.child_id,
            deltas_since_compaction: current.deltas_since_compaction + 1,
        };
        let mut compacted = false;
        if next.deltas_since_compaction >= COMPACTION_EVERY {
            let base = cpssec_search::compact_verified(&next.corpus, &next.tfidf)?;
            next.state_id = snapshot::inspect(&base)?.snapshot_id;
            next.deltas_since_compaction = 0;
            self.gauges
                .compactions_total
                .fetch_add(1, Ordering::Relaxed);
            compacted = true;
        }
        let outcome = DeltaOutcome {
            info,
            records: info.records(),
            state_id: next.state_id,
            compacted,
        };
        self.gauges
            .delta_applies_total
            .fetch_add(1, Ordering::Relaxed);
        self.gauges
            .corpus_records
            .store(next.corpus.stats().total() as u64, Ordering::Relaxed);
        *slot = Some(next);
        drop(slot);
        // Cached bodies and priors predate the grown corpus — drop them.
        self.responses.clear();
        self.priors.clear();
        Ok(outcome)
    }

    /// Runs one telemetry tick at wall time `ts_ms`: diffs counters and
    /// histograms, feeds the time-series store, evaluates SLO burn
    /// rates, and logs one stderr line per alert transition.
    pub fn telemetry_tick(&self, ts_ms: u64) {
        // Age out finished background jobs so long-lived servers do not
        // accumulate result bodies (in-flight jobs are never evicted).
        self.fleet.evict_finished(ts_ms, scenarios::JOB_TTL_MS);
        self.campaigns.evict_finished(ts_ms, scenarios::JOB_TTL_MS);
        let (resp_hits, resp_misses) = self.responses.stats();
        let (prior_hits, prior_misses) = self.priors.stats();
        let transitions = self.telemetry.tick(
            ts_ms,
            &self.metrics,
            &[
                ("responses", resp_hits, resp_misses),
                ("priors", prior_hits, prior_misses),
            ],
            &self.pool_stats,
            &self.slow,
        );
        let corpus = self.gauges.sample();
        self.telemetry
            .record_gauge(ts_ms, "corpus:records", corpus.corpus_records as f64);
        self.telemetry.record_gauge(
            ts_ms,
            "corpus:delta_applies",
            corpus.delta_applies_total as f64,
        );
        self.telemetry
            .record_gauge(ts_ms, "corpus:compactions", corpus.compactions_total as f64);
        self.telemetry.record_gauge(
            ts_ms,
            "corpus:mapped_bytes",
            corpus.snapshot_mapped_bytes as f64,
        );
        for t in transitions {
            eprintln!(
                "slo {}: {} (burn short {:.2}, long {:.2})",
                t.route,
                t.state.as_str(),
                t.burn_short,
                t.burn_long
            );
        }
    }

    /// Sleeps for the configured test delay (if any) inside a
    /// `test-delay` span. Handlers call this *before* their cache
    /// lookup so even cache hits slow down — that is what lets the SLO
    /// integration test induce a latency regression under load.
    pub fn apply_test_delay(&self) {
        let us = self.test_delay.load(Ordering::Relaxed);
        if us > 0 {
            let _span = cpssec_obs::span!("test-delay");
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

/// Elapsed wall time since `started`, saturating into microseconds.
fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// How long an idle keep-alive connection may sit between requests.
const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Accept-loop poll interval while no connection is pending. Short enough
/// that connection setup never dominates request latency; the idle loop is
/// still >99% asleep.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// The server: a bound listener plus shared state, not yet accepting.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    workers: usize,
    shutdown: Arc<AtomicBool>,
    tick_ms: u64,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// prepares `workers` worker threads over `state`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(addr: &str, workers: usize, state: Arc<AppState>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state,
            workers,
            shutdown: Arc::new(AtomicBool::new(false)),
            tick_ms: telemetry::DEFAULT_TICK_MS,
        })
    }

    /// Overrides the telemetry tick interval (default 1000 ms). Tests
    /// shrink it so burn-rate windows elapse in milliseconds.
    pub fn set_tick_ms(&mut self, tick_ms: u64) {
        self.tick_ms = tick_ms.max(1);
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS query error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The flag that stops [`run`](Server::run); set it (or deliver
    /// SIGTERM/SIGINT after [`signal::install`]) to begin a graceful
    /// shutdown.
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The shared state.
    #[must_use]
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Serves until the shutdown flag is set, then drains: queued and
    /// in-flight requests complete before this returns (the worker pool's
    /// drop joins every worker).
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (per-connection I/O errors are
    /// absorbed).
    pub fn run(self) -> io::Result<()> {
        // Spans are cheap (atomics only) and feed the slow-query stage
        // breakdown and /metrics histograms, so serving enables them.
        cpssec_obs::recorder().enable_spans();
        self.listener.set_nonblocking(true)?;
        let pool = pool::WorkerPool::with_stats(self.workers, Arc::clone(&self.state.pool_stats));

        // Telemetry tick thread: sleeps in short slices so shutdown is
        // prompt even with multi-second tick intervals.
        let tick_state = Arc::clone(&self.state);
        let tick_shutdown = Arc::clone(&self.shutdown);
        let tick_ms = self.tick_ms;
        let ticker = std::thread::Builder::new()
            .name("cpssec-tick".to_owned())
            .spawn(move || {
                while !tick_shutdown.load(Ordering::Relaxed) {
                    let next = Instant::now() + Duration::from_millis(tick_ms);
                    while Instant::now() < next && !tick_shutdown.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(tick_ms.min(20)));
                    }
                    tick_state.telemetry_tick(telemetry::now_ms());
                }
            })
            .expect("spawn tick thread");

        while !self.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    let shutdown = Arc::clone(&self.shutdown);
                    pool.execute(move || handle_connection(stream, &state, &shutdown));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        drop(pool); // Drain the queue, join the workers.
        let _ = ticker.join();
        // Final tick after the drain so the last partial second of
        // traffic is in the time-series store before we exit.
        self.state.telemetry_tick(telemetry::now_ms());
        Ok(())
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("workers", &self.workers)
            .finish()
    }
}

/// Serves one connection: keep-alive request loop until the peer closes,
/// asks to close, errors, times out, or the server begins shutdown.
fn handle_connection(stream: TcpStream, state: &AppState, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    loop {
        let request = match http::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,                    // Peer closed cleanly.
            Err(http::HttpError::Io(_)) => return, // Timeout or reset.
            Err(http::HttpError::TooLarge) => {
                let _ = http::Response::error(413, "request body too large")
                    .write_to(&mut writer, true);
                return;
            }
            Err(http::HttpError::Malformed(detail)) => {
                let _ = http::Response::error(400, &detail).write_to(&mut writer, true);
                return;
            }
        };

        // Honor an inbound W3C `traceparent`, else mint a fresh trace
        // id. The id rides the thread-local through every span this
        // request opens, so `--trace` output, the slow-query log, and
        // `/debug/requests/:id` all correlate on it.
        let remote_parent = request
            .header("traceparent")
            .and_then(requests::parse_traceparent);
        let trace_id = remote_parent.unwrap_or_else(cpssec_obs::mint_trace_id);
        cpssec_obs::set_trace_id(trace_id);

        let started = Instant::now();
        let capture = cpssec_obs::Capture::begin();
        let (route, mut response) = {
            let _span = cpssec_obs::span!("serve-request");
            router::dispatch(state, &request)
        };
        let stages = capture.finish(cpssec_obs::recorder());
        // Clear before any pooled-thread reuse: the next request on
        // this thread must not inherit this id.
        cpssec_obs::set_trace_id(0);
        let annotations = cpssec_obs::take_annotations();
        let elapsed = started.elapsed();
        state.metrics.record(route, response.status, elapsed);
        let note = cpssec_obs::take_note();
        let total_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        if total_us >= state.slow.threshold_us() {
            state.slow.observe(cpssec_obs::SlowEntry {
                route: route.to_owned(),
                status: response.status,
                total_us,
                trace_id,
                model_hash: note.as_ref().map(|(hash, _)| *hash),
                fidelity: note.clone().map(|(_, fidelity)| fidelity),
                stages: stages.clone(),
            });
        }
        state.requests.record(requests::RequestEntry {
            trace_id,
            route: route.to_owned(),
            status: response.status,
            ts_ms: telemetry::now_ms(),
            total_us,
            remote_parent: remote_parent.is_some(),
            stages,
            annotations,
            model_hash: note.as_ref().map(|(hash, _)| *hash),
            fidelity: note.map(|(_, fidelity)| fidelity),
        });
        response.add_header("X-Trace-Id", format!("{trace_id:032x}"));

        // Close after this response if the client asked, or if the server
        // is draining (keeps shutdown prompt under keep-alive load).
        let close = request.wants_close() || shutdown.load(Ordering::Relaxed);
        if response.write_to(&mut writer, close).is_err() || close {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    fn start_server() -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let state = AppState::new(cpssec_attackdb::seed::seed_corpus());
        let server = Server::bind("127.0.0.1:0", 2, state).unwrap();
        let addr = server.local_addr().unwrap();
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, flag, handle)
    }

    #[test]
    fn healthz_round_trip_and_clean_shutdown() {
        let (addr, flag, handle) = start_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.ends_with("ok\n"), "{response}");
        flag.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let (addr, flag, handle) = start_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for _ in 0..3 {
            stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let response = load::read_response(&mut reader).unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.body, b"ok\n");
        }
        drop(stream);
        flag.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
