//! The session store: named models uploaded by analysts.
//!
//! Models are immutable once stored (`Arc<StoredModel>`); a what-if never
//! mutates the stored baseline, it derives an edited copy. The store is a
//! `RwLock` map because reads (every associate/what-if request) vastly
//! outnumber writes (uploads).

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use cpssec_model::SystemModel;

/// A stored model plus its content hash (the cache-key ingredient).
#[derive(Debug)]
pub struct StoredModel {
    /// The model itself.
    pub model: SystemModel,
    /// FNV-1a 64 hash of the model's full content
    /// ([`SystemModel::content_hash`]).
    pub hash: u64,
}

impl StoredModel {
    fn new(model: SystemModel) -> Arc<StoredModel> {
        let hash = model.content_hash();
        Arc::new(StoredModel { model, hash })
    }
}

/// Named models, keyed by the id chosen at upload.
#[derive(Debug)]
pub struct SessionStore {
    models: RwLock<BTreeMap<String, Arc<StoredModel>>>,
}

impl SessionStore {
    /// A store preloaded with the built-in testbed models: the SCADA
    /// centrifuge under the id `scada` and the water-treatment plant
    /// under `water`.
    #[must_use]
    pub fn new() -> SessionStore {
        let mut models = BTreeMap::new();
        models.insert(
            "scada".to_owned(),
            StoredModel::new(cpssec_scada::model::scada_model()),
        );
        models.insert(
            "water".to_owned(),
            StoredModel::new(cpssec_scada::water::water_model()),
        );
        SessionStore {
            models: RwLock::new(models),
        }
    }

    /// Stores (or replaces) a model under `id`; returns its content hash.
    pub fn insert(&self, id: &str, model: SystemModel) -> u64 {
        let stored = StoredModel::new(model);
        let hash = stored.hash;
        self.models
            .write()
            .expect("session store poisoned")
            .insert(id.to_owned(), stored);
        hash
    }

    /// Fetches a model by id.
    pub fn get(&self, id: &str) -> Option<Arc<StoredModel>> {
        self.models
            .read()
            .expect("session store poisoned")
            .get(id)
            .cloned()
    }

    /// All stored ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.models
            .read()
            .expect("session store poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

impl Default for SessionStore {
    fn default() -> Self {
        SessionStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbeds_are_preloaded() {
        let store = SessionStore::new();
        let stored = store.get("scada").expect("preloaded");
        assert_eq!(stored.model.name(), "particle-separation-centrifuge");
        assert_eq!(stored.hash, stored.model.content_hash());
        let water = store.get("water").expect("preloaded");
        assert_eq!(water.model.name(), "water-treatment");
        assert_eq!(store.ids(), ["scada", "water"]);
    }

    #[test]
    fn insert_replaces_and_rehashes() {
        let store = SessionStore::new();
        let model = cpssec_model::SystemModelBuilder::new("tiny")
            .component("only", cpssec_model::ComponentKind::Other)
            .build()
            .unwrap();
        let hash = store.insert("tiny", model.clone());
        assert_eq!(hash, model.content_hash());
        assert_eq!(store.ids(), ["scada", "tiny", "water"]);
        assert_eq!(store.get("tiny").unwrap().model, model);
        assert!(store.get("missing").is_none());
    }
}
