//! `POST /scenarios/batch`: fleet campaigns as a service.
//!
//! A batch request body describes a [`CampaignSpec`]; the server runs the
//! Monte-Carlo fleet ([`cpssec_scada::run_campaign_with_progress`]) and
//! serves the aggregate artifact ([`cpssec_analysis::aggregate_json`]).
//! By default the campaign runs on a background thread and the response
//! is `202 Accepted` with a job id from the trace-id mint — the same
//! namespace `/debug/requests/:id` uses — so progress polls correlate
//! with the request log. `?wait=true` runs inline and returns the
//! finished aggregate in one round trip (tests and small fleets).
//!
//! Determinism carries through the service layer: the aggregate embeds
//! `recordsHash`, so two deployments given the same body can prove they
//! computed identical statistics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cpssec_analysis::{aggregate, aggregate_json};
use cpssec_attackdb::json::{parse as parse_json, JsonValue};
use cpssec_scada::{run_campaign_with_progress, AttackClass, CampaignSpec};

use crate::http::{Request, Response};
use crate::AppState;

/// Upper bound on scenarios per request — keeps one request from pinning
/// the machine for hours.
pub const MAX_SCENARIOS: u64 = 100_000;
/// Finished/in-flight jobs retained for polling; the oldest is evicted.
const JOB_CAPACITY: usize = 32;
/// Completed jobs older than this are evicted by the telemetry tick.
pub const JOB_TTL_MS: u64 = 10 * 60 * 1000;
/// Completed jobs retained at most, regardless of age — the TTL bounds
/// staleness, this bounds memory under burst load.
pub const MAX_FINISHED_JOBS: usize = 16;

/// One fleet campaign, in flight or finished.
#[derive(Debug)]
pub struct FleetJob {
    /// Job id, from the trace-id mint (hex in URLs).
    pub id: u128,
    /// Scenarios requested.
    pub total: u64,
    /// Scenarios completed so far (written by the campaign workers).
    pub progress: AtomicU64,
    /// Set (release) after `result` is populated.
    done: AtomicBool,
    /// Wall time (ms) at which the job finished; 0 while in flight.
    /// Read by the TTL eviction sweep.
    finished_at_ms: AtomicU64,
    /// The aggregate JSON artifact, once done.
    result: Mutex<Option<Arc<String>>>,
}

impl FleetJob {
    pub(crate) fn new(id: u128, total: u64) -> FleetJob {
        FleetJob {
            id,
            total,
            progress: AtomicU64::new(0),
            done: AtomicBool::new(false),
            finished_at_ms: AtomicU64::new(0),
            result: Mutex::new(None),
        }
    }

    /// Publishes the finished artifact; after this the job reads as done
    /// and becomes eligible for TTL eviction.
    pub(crate) fn publish(&self, body: String) {
        *self.result.lock().expect("fleet job lock") = Some(Arc::new(body));
        self.finished_at_ms
            .store(crate::telemetry::now_ms().max(1), Ordering::Relaxed);
        self.done.store(true, Ordering::Release);
    }

    /// Whether the campaign has finished and the result is readable.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// The polling body: id, progress, and — once done — the embedded
    /// aggregate artifact.
    #[must_use]
    pub fn status_json(&self) -> String {
        let done = self.is_done();
        let completed = self.progress.load(Ordering::Relaxed);
        let mut out = format!(
            "{{\"id\":\"{:032x}\",\"total\":{},\"completed\":{},\"done\":{}",
            self.id, self.total, completed, done
        );
        let result = self.result.lock().expect("fleet job lock").clone();
        if let Some(result) = result {
            out.push_str(",\"result\":");
            out.push_str(&result);
        }
        out.push('}');
        out
    }
}

/// The registry of recent fleet jobs.
#[derive(Debug, Default)]
pub struct FleetJobs {
    jobs: Mutex<VecDeque<Arc<FleetJob>>>,
}

impl FleetJobs {
    /// An empty registry.
    #[must_use]
    pub fn new() -> FleetJobs {
        FleetJobs::default()
    }

    pub(crate) fn register(&self, job: Arc<FleetJob>) {
        let mut jobs = self.jobs.lock().expect("fleet registry lock");
        if jobs.len() >= JOB_CAPACITY {
            jobs.pop_front();
        }
        jobs.push_back(job);
    }

    /// Evicts completed jobs: any finished more than `ttl_ms` before
    /// `now_ms`, plus the oldest finished beyond [`MAX_FINISHED_JOBS`].
    /// In-flight jobs are never evicted — a poller must always be able
    /// to find a job it started. Returns the number evicted.
    pub fn evict_finished(&self, now_ms: u64, ttl_ms: u64) -> usize {
        let mut jobs = self.jobs.lock().expect("fleet registry lock");
        let before = jobs.len();
        jobs.retain(|job| {
            let finished = job.finished_at_ms.load(Ordering::Relaxed);
            finished == 0 || now_ms.saturating_sub(finished) <= ttl_ms
        });
        let mut finished: usize = jobs.iter().filter(|j| j.is_done()).count();
        if finished > MAX_FINISHED_JOBS {
            // The deque is registration-ordered, so the front holds the
            // oldest finished jobs.
            jobs.retain(|job| {
                if finished > MAX_FINISHED_JOBS && job.is_done() {
                    finished -= 1;
                    false
                } else {
                    true
                }
            });
        }
        before - jobs.len()
    }

    /// Jobs currently retained (any state).
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("fleet registry lock").len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a job by id.
    #[must_use]
    pub fn find(&self, id: u128) -> Option<Arc<FleetJob>> {
        self.jobs
            .lock()
            .expect("fleet registry lock")
            .iter()
            .find(|job| job.id == id)
            .map(Arc::clone)
    }
}

/// Parses the batch body:
/// `{"scenarios": N, "seed": S, "maxTicks"?, "threads"?, "classes"?}`.
fn parse_campaign(body: &[u8]) -> Result<CampaignSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let value = parse_json(text).map_err(|e| format!("bad JSON body: {e}"))?;

    let u64_field = |name: &str| -> Result<Option<u64>, String> {
        match value.get(name) {
            None | Some(JsonValue::Null) => Ok(None),
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(JsonValue::Number(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= 1e18 => {
                Ok(Some(*n as u64))
            }
            Some(_) => Err(format!("'{name}' must be a non-negative integer")),
        }
    };

    let scenarios = u64_field("scenarios")?
        .ok_or_else(|| "body must set 'scenarios' (number of runs)".to_owned())?;
    if scenarios == 0 {
        return Err("'scenarios' must be at least 1".to_owned());
    }
    if scenarios > MAX_SCENARIOS {
        return Err(format!("'scenarios' is capped at {MAX_SCENARIOS}"));
    }
    let seed = u64_field("seed")?.unwrap_or(0);
    let mut spec = CampaignSpec::new(scenarios, seed);

    if let Some(ticks) = u64_field("maxTicks")? {
        if ticks == 0 {
            return Err("'maxTicks' must be at least 1".to_owned());
        }
        spec.max_ticks = ticks;
    }
    if let Some(threads) = u64_field("threads")? {
        if threads == 0 {
            return Err("'threads' must be at least 1".to_owned());
        }
        spec.threads = usize::try_from(threads.min(64)).expect("threads <= 64");
    }
    if let Some(classes) = value.get("classes") {
        let items = classes
            .as_array()
            .ok_or_else(|| "'classes' must be an array of class names".to_owned())?;
        let mut parsed = Vec::with_capacity(items.len());
        for item in items {
            let name = item
                .as_str()
                .ok_or_else(|| "'classes' entries must be strings".to_owned())?;
            let class =
                AttackClass::parse(name).ok_or_else(|| format!("unknown attack class '{name}'"))?;
            parsed.push(class);
        }
        if parsed.is_empty() {
            return Err("'classes' must name at least one class".to_owned());
        }
        spec.classes = parsed;
    }
    Ok(spec)
}

/// Runs the campaign and publishes the aggregate into the job.
fn execute(job: &FleetJob, spec: &CampaignSpec) {
    let records = run_campaign_with_progress(spec, Some(&job.progress));
    job.publish(aggregate_json(&aggregate(&records)).to_text());
}

/// `POST /scenarios/batch[?wait=true]`.
#[must_use]
pub fn batch(state: &AppState, req: &Request) -> Response {
    let spec = match parse_campaign(&req.body) {
        Ok(spec) => spec,
        Err(message) => return Response::error(400, &message),
    };
    let job = Arc::new(FleetJob::new(cpssec_obs::mint_trace_id(), spec.scenarios));
    state.fleet.register(Arc::clone(&job));

    if matches!(req.query_param("wait"), Some("true" | "1")) {
        execute(&job, &spec);
        return Response::json(200, job.status_json());
    }
    let worker = Arc::clone(&job);
    let spawned = std::thread::Builder::new()
        .name("cpssec-fleet".to_owned())
        .spawn(move || execute(&worker, &spec));
    if spawned.is_err() {
        return Response::error(500, "could not spawn fleet worker");
    }
    Response::json(202, job.status_json())
}

/// `GET /scenarios/batch/:id` — progress poll.
#[must_use]
pub fn status(state: &AppState, id: &str) -> Response {
    let Ok(id) = u128::from_str_radix(id, 16) else {
        return Response::error(400, "job id must be hex");
    };
    match state.fleet.find(id) {
        Some(job) => Response::json(200, job.status_json()),
        None => Response::error(
            404,
            &format!("no fleet job '{id:032x}' (evicted or never started)"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::dispatch;

    fn state() -> Arc<AppState> {
        AppState::new(cpssec_attackdb::seed::seed_corpus())
    }

    fn post(body: &str, wait: bool) -> Request {
        let target = if wait {
            "/scenarios/batch?wait=true"
        } else {
            "/scenarios/batch"
        };
        let raw = format!(
            "POST {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
    }

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
    }

    #[test]
    fn spec_parses_every_field() {
        let spec = parse_campaign(
            br#"{"scenarios":12,"seed":9,"maxTicks":2500,"threads":2,
                 "classes":["nominal","command-injection"]}"#,
        )
        .unwrap();
        assert_eq!(spec.scenarios, 12);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.max_ticks, 2500);
        assert_eq!(spec.threads, 2);
        assert_eq!(
            spec.classes,
            vec![AttackClass::Nominal, AttackClass::CommandInjection]
        );
    }

    #[test]
    fn spec_errors_are_descriptive() {
        for (body, needle) in [
            (&b"not json"[..], "JSON"),
            (b"{}", "scenarios"),
            (br#"{"scenarios":0}"#, "at least 1"),
            (br#"{"scenarios":200001}"#, "capped"),
            (br#"{"scenarios":4,"maxTicks":0}"#, "maxTicks"),
            (br#"{"scenarios":4,"threads":0}"#, "threads"),
            (br#"{"scenarios":4,"classes":[]}"#, "at least one class"),
            (br#"{"scenarios":4,"classes":["quantum"]}"#, "quantum"),
            (br#"{"scenarios":1.5}"#, "integer"),
        ] {
            let err = parse_campaign(body).unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn over_cap_is_rejected() {
        let err = parse_campaign(br#"{"scenarios":100001}"#).unwrap_err();
        assert!(err.contains("100000"), "{err}");
    }

    #[test]
    fn wait_mode_returns_the_finished_aggregate() {
        let state = state();
        let req = post(
            r#"{"scenarios":8,"seed":77,"maxTicks":2000,"threads":2}"#,
            true,
        );
        let (route, response) = dispatch(&state, &req);
        assert_eq!(route, "POST /scenarios/batch");
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let text = String::from_utf8(response.body).unwrap();
        let value = parse_json(&text).expect("status body parses");
        assert_eq!(value.get("done"), Some(&JsonValue::Bool(true)));
        assert_eq!(value.get("completed"), Some(&JsonValue::Number(8.0)));
        let result = value.get("result").expect("finished job embeds result");
        assert!(result.get("recordsHash").is_some());

        // The id is pollable afterwards and serves the same result.
        let id = value.get("id").and_then(JsonValue::as_str).unwrap();
        let (route, response) = dispatch(&state, &get(&format!("/scenarios/batch/{id}")));
        assert_eq!(route, "GET /scenarios/batch/:id");
        assert_eq!(response.status, 200);
        let polled = parse_json(&String::from_utf8(response.body).unwrap()).unwrap();
        assert_eq!(polled.get("result"), value.get("result"));
    }

    #[test]
    fn async_mode_accepts_then_finishes() {
        let state = state();
        let req = post(
            r#"{"scenarios":4,"seed":3,"maxTicks":1500,"threads":1}"#,
            false,
        );
        let (_, response) = dispatch(&state, &req);
        assert_eq!(response.status, 202);
        let value = parse_json(&String::from_utf8(response.body).unwrap()).unwrap();
        let id = value
            .get("id")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_owned();

        // Poll until the background thread publishes the aggregate.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            let (_, response) = dispatch(&state, &get(&format!("/scenarios/batch/{id}")));
            assert_eq!(response.status, 200);
            let polled = parse_json(&String::from_utf8(response.body).unwrap()).unwrap();
            if polled.get("done") == Some(&JsonValue::Bool(true)) {
                assert_eq!(polled.get("completed"), Some(&JsonValue::Number(4.0)));
                assert!(polled.get("result").is_some());
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "fleet job never finished"
            );
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }

    #[test]
    fn same_body_yields_the_same_records_hash() {
        let state = state();
        let body = r#"{"scenarios":6,"seed":11,"maxTicks":1500,"threads":2}"#;
        let hash_of = |threads: &str| {
            let body = body.replace("\"threads\":2", threads);
            let (_, response) = dispatch(&state, &post(&body, true));
            assert_eq!(response.status, 200);
            let value = parse_json(&String::from_utf8(response.body).unwrap()).unwrap();
            value
                .get("result")
                .and_then(|r| r.get("recordsHash"))
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_owned()
        };
        assert_eq!(hash_of("\"threads\":2"), hash_of("\"threads\":1"));
    }

    #[test]
    fn unknown_and_malformed_ids_fail_cleanly() {
        let state = state();
        let (_, response) = dispatch(
            &state,
            &get("/scenarios/batch/00000000000000000000000000000000"),
        );
        assert_eq!(response.status, 404);
        let (_, response) = dispatch(&state, &get("/scenarios/batch/not-hex"));
        assert_eq!(response.status, 400);
        let (_, response) = dispatch(&state, &get("/scenarios/batch"));
        assert_eq!(response.status, 405, "GET on the batch root is 405");
    }

    #[test]
    fn registry_evicts_the_oldest_job() {
        let jobs = FleetJobs::new();
        for id in 0..(JOB_CAPACITY as u128 + 3) {
            jobs.register(Arc::new(FleetJob::new(id, 1)));
        }
        assert!(jobs.find(0).is_none(), "oldest evicted");
        assert!(jobs.find(JOB_CAPACITY as u128 + 2).is_some());
    }

    fn finished_at(id: u128, finished_ms: u64) -> Arc<FleetJob> {
        let job = Arc::new(FleetJob::new(id, 1));
        job.publish("{}".to_owned());
        job.finished_at_ms.store(finished_ms, Ordering::Relaxed);
        job
    }

    #[test]
    fn eviction_expires_completed_jobs_after_the_ttl() {
        let jobs = FleetJobs::new();
        let now = 2 * JOB_TTL_MS;
        jobs.register(finished_at(1, now - JOB_TTL_MS - 1)); // stale
        jobs.register(finished_at(2, now - 10)); // fresh
        jobs.register(Arc::new(FleetJob::new(3, 1))); // in flight
        assert_eq!(jobs.evict_finished(now, JOB_TTL_MS), 1);
        assert!(jobs.find(1).is_none(), "stale completed job evicted");
        assert!(jobs.find(2).is_some(), "fresh completed job retained");
        assert!(jobs.find(3).is_some(), "in-flight job retained");
        assert_eq!(jobs.len(), 2);
    }

    #[test]
    fn eviction_caps_completed_jobs_but_never_touches_in_flight_ones() {
        let jobs = FleetJobs::new();
        let now = JOB_TTL_MS;
        // More fresh-but-finished jobs than the cap, plus live ones.
        for id in 0..(MAX_FINISHED_JOBS as u128 + 4) {
            jobs.register(finished_at(id, now));
        }
        for id in 100..103 {
            jobs.register(Arc::new(FleetJob::new(id, 1)));
        }
        let evicted = jobs.evict_finished(now, JOB_TTL_MS);
        assert_eq!(evicted, 4, "only the overflow beyond the cap goes");
        assert!(jobs.find(0).is_none(), "oldest finished evicted first");
        assert!(jobs.find(3).is_none());
        assert!(jobs.find(4).is_some(), "newest finished retained");
        for id in 100..103 {
            assert!(jobs.find(id).is_some(), "in-flight job {id} retained");
        }
        // Idempotent once within bounds.
        assert_eq!(jobs.evict_finished(now, JOB_TTL_MS), 0);
    }
}
