//! The served ops dashboard: one self-contained HTML page, zero
//! external assets. Inline JS polls `/metrics/history` and `/alerts`
//! and redraws canvas sparklines; nothing is fetched from outside the
//! server itself, so the page works on an air-gapped bench host.

/// The `/dashboard` page.
pub const DASHBOARD_HTML: &str = r##"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>cpssec ops</title>
<style>
  body { font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 0; background: #101418; color: #cfd8dc; }
  header { padding: 10px 16px; background: #161c22; display: flex;
           gap: 16px; align-items: baseline; border-bottom: 1px solid #263238; }
  header h1 { font-size: 15px; margin: 0; color: #eceff1; }
  header .muted, .muted { color: #78909c; }
  #alerts.firing { color: #ff5252; font-weight: bold; }
  #alerts.ok { color: #69f0ae; }
  main { display: grid; grid-template-columns: repeat(auto-fill, minmax(340px, 1fr));
         gap: 12px; padding: 12px 16px; }
  section { background: #161c22; border: 1px solid #263238; border-radius: 6px;
            padding: 10px 12px; }
  section h2 { font-size: 12px; margin: 0 0 6px; color: #90a4ae;
               font-weight: normal; text-transform: uppercase; letter-spacing: .06em; }
  canvas { width: 100%; height: 64px; display: block; }
  .stat { font-size: 22px; color: #eceff1; }
  table { width: 100%; border-collapse: collapse; font-size: 12px; }
  td, th { text-align: left; padding: 2px 6px 2px 0; white-space: nowrap; }
  td.num { text-align: right; }
  #slowfeed td { border-top: 1px solid #1d262e; }
  a { color: #4fc3f7; }
</style>
</head>
<body>
<header>
  <h1>cpssec ops</h1>
  <span id="alerts" class="ok">alerts: …</span>
  <span class="muted">res <select id="res">
    <option value="1s">1s</option><option value="10s">10s</option>
    <option value="1m">1m</option></select></span>
  <span class="muted" id="updated"></span>
  <span class="muted"><a href="/metrics">/metrics</a>
    <a href="/metrics/history">/metrics/history</a>
    <a href="/alerts">/alerts</a>
    <a href="/debug/slow">/debug/slow</a></span>
</header>
<main>
  <section><h2>cache hit rate (responses)</h2>
    <div class="stat" id="hitstat">–</div>
    <canvas id="hitrate"></canvas></section>
  <section><h2>worker pool saturation</h2>
    <div class="stat" id="poolstat">–</div>
    <canvas id="pool"></canvas></section>
  <section><h2>slow queries / tick</h2>
    <div class="stat" id="slowstat">–</div>
    <canvas id="slow"></canvas></section>
  <section><h2>corpus (records · deltas · compactions)</h2>
    <div class="stat" id="corpusstat">–</div>
    <canvas id="corpus"></canvas></section>
  <section style="grid-column: 1 / -1"><h2>slow query feed</h2>
    <table id="slowfeed"><thead><tr><th>route</th><th class="num">total µs</th>
      <th>trace</th><th>stages</th></tr></thead><tbody></tbody></table></section>
</main>
<div id="routes" style="display: contents"></div>
<script>
"use strict";
const $ = id => document.getElementById(id);
const routeCards = new Map();

function spark(canvas, bands, max) {
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth, h = canvas.clientHeight;
  if (!w || !h) return;
  canvas.width = w * dpr; canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, w, h);
  const pts = bands.flatMap(b => b.points);
  if (!pts.length) return;
  const t0 = Math.min(...pts.map(p => p[0]));
  const t1 = Math.max(...pts.map(p => p[0]));
  const vmax = max !== undefined ? max : Math.max(1e-9, ...pts.map(p => p[1]));
  const x = t => t1 === t0 ? w / 2 : (t - t0) / (t1 - t0) * (w - 4) + 2;
  const y = v => h - 3 - Math.min(1, v / vmax) * (h - 8);
  for (const band of bands) {
    ctx.beginPath();
    band.points.forEach((p, i) => ctx[i ? "lineTo" : "moveTo"](x(p[0]), y(p[1])));
    ctx.strokeStyle = band.color; ctx.lineWidth = 1.5; ctx.stroke();
  }
}

function routeCard(route) {
  if (routeCards.has(route)) return routeCards.get(route);
  const sec = document.createElement("section");
  sec.innerHTML = "<h2></h2><div class='stat'></div><canvas></canvas>" +
    "<div class='muted'><span style='color:#4fc3f7'>p50</span> / " +
    "<span style='color:#ffb74d'>p99</span> µs · req/s</div>";
  sec.querySelector("h2").textContent = route;
  document.querySelector("main").appendChild(sec);
  const card = { stat: sec.querySelector(".stat"), canvas: sec.querySelector("canvas") };
  routeCards.set(route, card);
  return card;
}

const last = pts => pts.length ? pts[pts.length - 1][1] : null;
const fmt = (v, d) => v === null ? "–" : v.toFixed(d === undefined ? 0 : d);

async function refresh() {
  const res = $("res").value;
  const names = (await (await fetch("/metrics/history")).json()).series;
  const q = names.map(encodeURIComponent).join(",");
  const hist = await (await fetch(`/metrics/history?series=${q}&res=${res}`)).json();
  const s = hist.series;
  const routes = [...new Set(names.filter(n => n.startsWith("route:"))
    .map(n => n.slice(6, n.lastIndexOf(":"))))];
  for (const route of routes) {
    const card = routeCard(route);
    const p50 = s[`route:${route}:p50_us`] || [], p99 = s[`route:${route}:p99_us`] || [];
    const rate = s[`route:${route}:rate`] || [];
    card.stat.textContent =
      `${fmt(last(p50))} / ${fmt(last(p99))} µs · ${fmt(last(rate), 1)} req/s`;
    spark(card.canvas, [
      { points: p99, color: "#ffb74d" }, { points: p50, color: "#4fc3f7" }]);
  }
  const hit = s["cache:responses:hit_rate"] || [];
  $("hitstat").textContent = last(hit) === null ? "–"
    : (last(hit) * 100).toFixed(1) + "%";
  spark($("hitrate"), [{ points: hit, color: "#69f0ae" }], 1);
  const util = s["pool:utilization"] || [], queued = s["pool:queued"] || [];
  $("poolstat").textContent = last(util) === null ? "–"
    : (last(util) * 100).toFixed(0) + "% busy, " + fmt(last(queued)) + " queued";
  spark($("pool"), [{ points: util, color: "#ce93d8" }], 1);
  const slow = s["slow:observed"] || [];
  $("slowstat").textContent = fmt(last(slow));
  spark($("slow"), [{ points: slow, color: "#ff8a65" }]);
  const recs = s["corpus:records"] || [], applies = s["corpus:delta_applies"] || [];
  const compactions = s["corpus:compactions"] || [];
  $("corpusstat").textContent = last(recs) === null ? "–"
    : `${fmt(last(recs))} · ${fmt(last(applies))} · ${fmt(last(compactions))}`;
  spark($("corpus"), [{ points: recs, color: "#fff176" }]);

  const alerts = await (await fetch("/alerts")).json();
  const el = $("alerts");
  el.className = alerts.firing ? "firing" : "ok";
  el.textContent = alerts.firing
    ? "alerts: FIRING " + alerts.alerts.filter(a => a.state === "firing")
        .map(a => a.route).join(", ")
    : "alerts: ok (" + alerts.alerts.length + " SLOs)";

  const slowEntries = (await (await fetch("/debug/slow")).json()).entries || [];
  const body = document.querySelector("#slowfeed tbody");
  body.innerHTML = "";
  for (const e of slowEntries.slice(0, 12)) {
    const tr = document.createElement("tr");
    const link = e.trace_id
      ? `<a href="/debug/requests/${e.trace_id}">${e.trace_id.slice(0, 12)}…</a>` : "–";
    tr.innerHTML = `<td></td><td class="num">${e.total_us}</td><td>${link}</td><td></td>`;
    tr.children[0].textContent = e.route;
    tr.children[3].textContent =
      (e.stages || []).map(s => `${s.stage}:${s.us}`).join(" ");
    body.appendChild(tr);
  }
  $("updated").textContent = "updated " + new Date().toLocaleTimeString();
}

async function loop() {
  try { await refresh(); } catch (e) { $("updated").textContent = "error: " + e; }
  setTimeout(loop, 1000);
}
loop();
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_is_self_contained_and_references_live_endpoints() {
        assert!(DASHBOARD_HTML.starts_with("<!DOCTYPE html>"));
        for endpoint in ["/metrics/history", "/alerts", "/debug/slow"] {
            assert!(DASHBOARD_HTML.contains(endpoint), "missing {endpoint}");
        }
        // Self-contained: no external scripts, stylesheets, or images.
        assert!(!DASHBOARD_HTML.contains("src=\"http"));
        assert!(!DASHBOARD_HTML.contains("href=\"http"));
        assert!(!DASHBOARD_HTML.contains("@import"));
    }
}
