//! A sharded, content-addressed LRU result cache.
//!
//! Keys are canonical strings derived from model content hashes plus the
//! full request spec (see [`crate::router`]), so a cache hit is exact by
//! construction: two requests share an entry only when every input that
//! could influence the response is identical. Shards bound lock contention
//! under the worker pool; eviction is least-recently-used per shard via
//! monotonic access stamps.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independent shards (a power of two).
const SHARDS: usize = 8;

struct Shard<V> {
    entries: HashMap<String, (V, u64)>,
    clock: u64,
}

impl<V> Shard<V> {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// The cache. `V` is cheap to clone (the service stores `Arc`s).
pub struct Cache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> Cache<V> {
    /// A cache holding at most `capacity` entries across all shards.
    #[must_use]
    pub fn new(capacity: usize) -> Cache<V> {
        let capacity_per_shard = capacity.div_ceil(SHARDS).max(1);
        Cache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard<V>> {
        // DefaultHasher::new() is deterministic (no per-process random
        // state), so shard placement — and thus eviction order — is
        // reproducible across runs.
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let stamp = shard.tick();
        match shard.entries.get_mut(key) {
            Some((value, last_used)) => {
                *last_used = stamp;
                let value = value.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `key → value`, evicting the shard's least recently used
    /// entry when over capacity.
    pub fn insert(&self, key: String, value: V) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        let stamp = shard.tick();
        shard.entries.insert(key, (value, stamp));
        if shard.entries.len() > self.capacity_per_shard {
            if let Some(oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&oldest);
            }
        }
    }

    /// Drops every entry; the hit/miss counters survive. Called when the
    /// corpus itself changes (a delta apply): keys encode the model hash
    /// and request spec but *not* corpus content, so without this a grown
    /// corpus would keep serving pre-delta bodies.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").entries.clear();
        }
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Total entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone> std::fmt::Debug for Cache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("Cache")
            .field("len", &self.len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_after_insert_hits() {
        let cache: Cache<Arc<String>> = Cache::new(16);
        assert!(cache.get("k").is_none());
        cache.insert("k".into(), Arc::new("v".into()));
        assert_eq!(cache.get("k").unwrap().as_str(), "v");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn eviction_drops_the_least_recently_used() {
        let cache: Cache<u32> = Cache::new(1); // one entry per shard
                                               // Find three keys landing in the same shard so eviction triggers.
        let mut same_shard = Vec::new();
        let probe = |cache: &Cache<u32>, key: &str| {
            std::ptr::eq(
                cache.shard(key) as *const _,
                cache.shard("seed-0") as *const _,
            )
        };
        for i in 0.. {
            let key = format!("seed-{i}");
            if probe(&cache, &key) {
                same_shard.push(key);
                if same_shard.len() == 3 {
                    break;
                }
            }
        }
        cache.insert(same_shard[0].clone(), 0);
        cache.insert(same_shard[1].clone(), 1);
        // [0] was evicted (LRU); touching [1] keeps it over a new insert.
        assert!(cache.get(&same_shard[0]).is_none());
        assert_eq!(cache.get(&same_shard[1]), Some(1));
        cache.insert(same_shard[2].clone(), 2);
        assert_eq!(cache.get(&same_shard[2]), Some(2));
        assert!(cache.get(&same_shard[1]).is_none());
    }

    #[test]
    fn clear_empties_every_shard_but_keeps_counters() {
        let cache: Cache<u32> = Cache::new(64);
        for i in 0..20 {
            cache.insert(format!("k{i}"), i);
        }
        assert_eq!(cache.get("k3"), Some(3));
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get("k3").is_none());
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache: Arc<Cache<usize>> = Arc::new(Cache::new(64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100 {
                        let key = format!("k{}", (t * 100 + i) % 32);
                        cache.insert(key.clone(), i);
                        let _ = cache.get(&key);
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 400);
    }
}
