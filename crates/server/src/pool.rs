//! A fixed worker pool over an `mpsc` channel.
//!
//! The accept loop hands each connection to the pool; a fixed number of
//! worker threads drain the shared receiver. Shutdown is graceful by
//! construction: dropping the pool drops the sender, every queued job is
//! still delivered (an `mpsc` channel yields buffered messages before
//! reporting disconnection), and the drop then joins all workers — so
//! in-flight requests complete before the listener exits.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool. Dropping it drains the queue and joins every worker.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `size` workers (at least one).
    #[must_use]
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("cpssec-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queues a job for the next free worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(sender) = &self.sender {
            // Send fails only if every worker has died; jobs are
            // infallible closures, so treat that as unreachable in
            // practice but don't panic the accept loop.
            let _ = sender.send(Box::new(job));
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while receiving, never while running a job.
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // Sender dropped and queue fully drained.
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_on_multiple_threads() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // Joins workers; all queued jobs must have run.
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_drains_queued_jobs_before_joining() {
        // One slow worker: queued jobs are still pending at drop time.
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_size_is_clamped_to_one_worker() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&done);
        pool.execute(move || {
            flag.store(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
