//! A fixed worker pool over an `mpsc` channel.
//!
//! The accept loop hands each connection to the pool; a fixed number of
//! worker threads drain the shared receiver. Shutdown is graceful by
//! construction: dropping the pool drops the sender, every queued job is
//! still delivered (an `mpsc` channel yields buffered messages before
//! reporting disconnection), and the drop then joins all workers — so
//! in-flight requests complete before the listener exits.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Live saturation gauges for a pool: thread count, jobs currently
/// executing, jobs waiting in the queue. Shared with the telemetry
/// tick, which samples them once a second.
#[derive(Debug, Default)]
pub struct PoolStats {
    size: AtomicU64,
    busy: AtomicU64,
    queued: AtomicU64,
}

impl PoolStats {
    /// Fresh gauges (all zero); sized when a pool adopts them.
    #[must_use]
    pub fn new() -> PoolStats {
        PoolStats::default()
    }

    /// Number of worker threads.
    pub fn size(&self) -> u64 {
        self.size.load(Ordering::Relaxed)
    }

    /// Jobs currently executing.
    pub fn busy(&self) -> u64 {
        self.busy.load(Ordering::Relaxed)
    }

    /// Jobs waiting in the queue.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Busy workers as a fraction of the pool (0.0 when unsized).
    pub fn utilization(&self) -> f64 {
        let size = self.size();
        if size == 0 {
            return 0.0;
        }
        self.busy() as f64 / size as f64
    }
}

/// The pool. Dropping it drains the queue and joins every worker.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
}

impl WorkerPool {
    /// Spawns `size` workers (at least one).
    #[must_use]
    pub fn new(size: usize) -> WorkerPool {
        Self::with_stats(size, Arc::new(PoolStats::new()))
    }

    /// Spawns `size` workers reporting saturation into `stats`.
    #[must_use]
    pub fn with_stats(size: usize, stats: Arc<PoolStats>) -> WorkerPool {
        let size = size.max(1);
        stats.size.store(size as u64, Ordering::Relaxed);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("cpssec-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &stats))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            stats,
        }
    }

    /// The pool's saturation gauges.
    #[must_use]
    pub fn stats(&self) -> Arc<PoolStats> {
        Arc::clone(&self.stats)
    }

    /// Number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queues a job for the next free worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(sender) = &self.sender {
            self.stats.queued.fetch_add(1, Ordering::Relaxed);
            // Send fails only if every worker has died; jobs are
            // infallible closures, so treat that as unreachable in
            // practice but don't panic the accept loop.
            let _ = sender.send(Box::new(job));
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, stats: &PoolStats) {
    loop {
        // Hold the lock only while receiving, never while running a job.
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => {
                stats.queued.fetch_sub(1, Ordering::Relaxed);
                stats.busy.fetch_add(1, Ordering::Relaxed);
                job();
                stats.busy.fetch_sub(1, Ordering::Relaxed);
            }
            Err(_) => return, // Sender dropped and queue fully drained.
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_on_multiple_threads() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // Joins workers; all queued jobs must have run.
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_drains_queued_jobs_before_joining() {
        // One slow worker: queued jobs are still pending at drop time.
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn stats_track_busy_and_drain_to_idle() {
        let stats = Arc::new(PoolStats::new());
        let pool = WorkerPool::with_stats(2, Arc::clone(&stats));
        assert_eq!(stats.size(), 2);
        let gate = Arc::new(std::sync::Barrier::new(3));
        for _ in 0..2 {
            let gate = Arc::clone(&gate);
            pool.execute(move || {
                gate.wait();
            });
        }
        // Both workers are parked on the barrier: busy == size.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while stats.busy() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(stats.busy(), 2);
        assert!((stats.utilization() - 1.0).abs() < 1e-12);
        gate.wait();
        drop(pool);
        assert_eq!(stats.busy(), 0);
        assert_eq!(stats.queued(), 0);
    }

    #[test]
    fn zero_size_is_clamped_to_one_worker() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&done);
        pool.execute(move || {
            flag.store(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
