//! Ring buffer of recently served requests, indexed by trace id.
//!
//! Every request the server finishes — fast or slow — lands here with
//! its trace id, stage breakdown, and annotations, so
//! `GET /debug/requests/:id` can reconstruct exactly where one request
//! spent its time. The ring is bounded; an evicted id answers 404
//! (history endpoints are for the recent past, `--trace` files for
//! archaeology).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cpssec_attackdb::json::write_escaped;

/// Retained requests. At the bench's ~400 req/s this covers the last
/// second or two — enough for "why was *that* curl slow?".
pub const DEFAULT_REQUEST_LOG_CAPACITY: usize = 512;

/// One served request.
#[derive(Debug, Clone)]
pub struct RequestEntry {
    /// The request's trace id (never 0 — the server mints one when the
    /// caller didn't send `traceparent`).
    pub trace_id: u128,
    /// Matched route pattern.
    pub route: String,
    /// Response status.
    pub status: u16,
    /// Unix milliseconds when the request finished.
    pub ts_ms: u64,
    /// Total wall time in microseconds.
    pub total_us: u64,
    /// Whether the trace id came from an inbound `traceparent` header.
    pub remote_parent: bool,
    /// Stage breakdown in span completion order (children first).
    pub stages: Vec<(String, u64)>,
    /// Key/value annotations (e.g. `cache=hit`).
    pub annotations: Vec<(String, String)>,
    /// Model content hash, when the route touched a model.
    pub model_hash: Option<u64>,
    /// Fidelity the request ran at, when the route touched a model.
    pub fidelity: Option<String>,
}

impl RequestEntry {
    /// JSON object for one entry.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192 + self.stages.len() * 40);
        out.push_str(&format!(
            "{{\"trace_id\":\"{:032x}\",\"route\":",
            self.trace_id
        ));
        write_escaped(&mut out, &self.route);
        out.push_str(&format!(
            ",\"status\":{},\"ts_ms\":{},\"total_us\":{},\"remote_parent\":{}",
            self.status, self.ts_ms, self.total_us, self.remote_parent
        ));
        match self.model_hash {
            Some(h) => out.push_str(&format!(",\"model_hash\":\"{h:016x}\"")),
            None => out.push_str(",\"model_hash\":null"),
        }
        match &self.fidelity {
            Some(f) => {
                out.push_str(",\"fidelity\":");
                write_escaped(&mut out, f);
            }
            None => out.push_str(",\"fidelity\":null"),
        }
        out.push_str(",\"stages\":[");
        for (i, (stage, us)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"stage\":");
            write_escaped(&mut out, stage);
            out.push_str(&format!(",\"us\":{us}}}"));
        }
        out.push_str("],\"annotations\":{");
        for (i, (k, v)) in self.annotations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, k);
            out.push(':');
            write_escaped(&mut out, v);
        }
        out.push_str("}}");
        out
    }
}

/// Bounded ring of [`RequestEntry`], looked up by trace id.
#[derive(Debug)]
pub struct RequestLog {
    capacity: usize,
    recorded: AtomicU64,
    ring: Mutex<VecDeque<Arc<RequestEntry>>>,
}

impl RequestLog {
    /// An empty log retaining at most `capacity` entries (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> RequestLog {
        RequestLog {
            capacity: capacity.max(1),
            recorded: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Total requests ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Append one finished request.
    pub fn record(&self, entry: RequestEntry) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("request log poisoned");
        ring.push_back(Arc::new(entry));
        while ring.len() > self.capacity {
            ring.pop_front();
        }
    }

    /// Look up a request by trace id (newest match wins, in case a
    /// caller reused a `traceparent`).
    pub fn find(&self, trace_id: u128) -> Option<Arc<RequestEntry>> {
        let ring = self.ring.lock().expect("request log poisoned");
        ring.iter().rev().find(|e| e.trace_id == trace_id).cloned()
    }
}

/// Parses a W3C `traceparent` header value
/// (`00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>`) into its
/// trace id. Returns `None` for anything malformed or the all-zero id,
/// per the spec's instruction to ignore invalid headers.
#[must_use]
pub fn parse_traceparent(value: &str) -> Option<u128> {
    let mut parts = value.trim().split('-');
    let version = parts.next()?;
    if version.len() != 2 || version.chars().any(|c| !c.is_ascii_hexdigit()) || version == "ff" {
        return None;
    }
    let trace = parts.next()?;
    if trace.len() != 32 || trace.chars().any(|c| !c.is_ascii_hexdigit()) {
        return None;
    }
    let parent = parts.next()?;
    if parent.len() != 16 || parent.chars().any(|c| !c.is_ascii_hexdigit()) {
        return None;
    }
    let flags = parts.next()?;
    if flags.len() != 2 || flags.chars().any(|c| !c.is_ascii_hexdigit()) {
        return None;
    }
    let id = u128::from_str_radix(trace, 16).ok()?;
    if id == 0 {
        None
    } else {
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace_id: u128, route: &str) -> RequestEntry {
        RequestEntry {
            trace_id,
            route: route.to_string(),
            status: 200,
            ts_ms: 1_000,
            total_us: 42,
            remote_parent: false,
            stages: vec![("serve-request".to_string(), 40)],
            annotations: vec![("cache".to_string(), "miss".to_string())],
            model_hash: Some(0xfeed),
            fidelity: Some("implementation".to_string()),
        }
    }

    #[test]
    fn find_returns_newest_match_and_evicts_oldest() {
        let log = RequestLog::new(2);
        log.record(entry(1, "GET /a"));
        log.record(entry(2, "GET /b"));
        log.record(entry(2, "GET /c")); // reused id: newest wins
        assert!(log.find(1).is_none(), "capacity 2 must evict id 1");
        assert_eq!(log.find(2).unwrap().route, "GET /c");
        assert_eq!(log.recorded(), 3);
    }

    #[test]
    fn entry_json_shape() {
        let json = entry(0xab, "GET /models/:id/associate").to_json();
        assert!(json.contains("\"trace_id\":\"000000000000000000000000000000ab\""));
        assert!(json.contains("\"route\":\"GET /models/:id/associate\""));
        assert!(json.contains("{\"stage\":\"serve-request\",\"us\":40}"));
        assert!(json.contains("\"annotations\":{\"cache\":\"miss\"}"));
        assert!(json.contains("\"model_hash\":\"000000000000feed\""));
    }

    #[test]
    fn traceparent_accepts_valid_and_rejects_junk() {
        let id = parse_traceparent("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01");
        assert_eq!(id, Some(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef));
        for bad in [
            "",
            "00",
            "00-short-00f067aa0ba902b7-01",
            "00-0123456789abcdef0123456789abcdeZ-00f067aa0ba902b7-01",
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
            "ff-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01",
            "00-0123456789abcdef0123456789abcdef-badparent-01",
            "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-zz",
        ] {
            assert_eq!(parse_traceparent(bad), None, "{bad:?}");
        }
    }
}
