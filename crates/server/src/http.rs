//! A minimal HTTP/1.1 reader/writer — exactly the subset the analysis
//! service speaks.
//!
//! Supported: request line + headers + `Content-Length` bodies, percent
//! decoding of the request target, keep-alive with `Connection: close`
//! honored. Deliberately absent: chunked transfer encoding, trailers,
//! upgrades, HTTP/2 — an analyst dashboard client needs none of them.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Maximum accepted body size (a GraphML model upload fits comfortably).
pub const MAX_BODY: usize = 8 * 1024 * 1024;
/// Maximum accepted header count.
const MAX_HEADERS: usize = 100;
/// Maximum accepted line length (request line or one header).
const MAX_LINE: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Decoded query parameters in document order.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// A header value by (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The request violates the protocol subset (message for the client).
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY`].
    TooLarge,
    /// Transport error (including read timeouts on idle keep-alives).
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            HttpError::TooLarge => write!(f, "request body too large"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if raw.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Malformed("truncated line".into()))
            };
        }
        byte[0] = buf[0];
        reader.consume(1);
        if byte[0] == b'\n' {
            if raw.last() == Some(&b'\r') {
                raw.pop();
            }
            let line = String::from_utf8(raw)
                .map_err(|_| HttpError::Malformed("line is not UTF-8".into()))?;
            return Ok(Some(line));
        }
        raw.push(byte[0]);
        if raw.len() > MAX_LINE {
            return Err(HttpError::Malformed("line too long".into()));
        }
    }
}

/// Reads one request, or `Ok(None)` at a clean end of stream (the peer
/// closed an idle keep-alive connection).
///
/// # Errors
///
/// [`HttpError`] for protocol violations, oversized bodies, and transport
/// failures.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    // Methods and targets are token/URI material: visible ASCII only.
    // Splitting on ' ' alone would otherwise accept a tab or other
    // control bytes as a "non-empty" method.
    let is_graphic = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_graphic());
    let method = parts
        .next()
        .filter(|m| is_graphic(m))
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_owned();
    let target = parts
        .next()
        .filter(|t| is_graphic(t))
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version}"
        )));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)
        .ok_or_else(|| HttpError::Malformed("bad percent escape in path".into()))?;
    let mut query = Vec::new();
    if let Some(raw) = raw_query {
        for pair in raw.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k, true)
                .ok_or_else(|| HttpError::Malformed("bad percent escape in query".into()))?;
            let v = percent_decode(v, true)
                .ok_or_else(|| HttpError::Malformed("bad percent escape in query".into()))?;
            query.push((k, v));
        }
    }

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let line =
            read_line(reader)?.ok_or_else(|| HttpError::Malformed("truncated headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed("header without colon".into()))?;
        let name = name.trim().to_ascii_lowercase();
        if name.is_empty() {
            return Err(HttpError::Malformed("header with empty name".into()));
        }
        let value = value.trim().to_owned();
        if name == "content-length" {
            let parsed = value
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
            // RFC 7230 §3.3.2: duplicate Content-Length headers are only
            // acceptable when they agree; a last-wins (or first-wins)
            // policy here is the classic request-smuggling desync.
            if content_length.is_some_and(|previous| previous != parsed) {
                return Err(HttpError::Malformed(
                    "conflicting content-length headers".into(),
                ));
            }
            content_length = Some(parsed);
        }
        headers.push((name, value));
    }

    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        io::Read::read_exact(reader, &mut body)?;
    }

    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Decodes `%hh` escapes; in query position (`plus_is_space`) `+` decodes
/// to a space. Returns `None` on a truncated or non-hex escape or invalid
/// UTF-8.
#[must_use]
pub fn percent_decode(raw: &str, plus_is_space: bool) -> Option<String> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Percent-encodes a string for use in a URL path segment or query value.
#[must_use]
pub fn percent_encode(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for &b in raw.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => {
                out.push('%');
                out.push(
                    char::from_digit(u32::from(b) >> 4, 16)
                        .expect("nibble")
                        .to_ascii_uppercase(),
                );
                out.push(
                    char::from_digit(u32::from(b) & 0xf, 16)
                        .expect("nibble")
                        .to_ascii_uppercase(),
                );
            }
        }
    }
    out
}

/// One response, ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (name, value) beyond the fixed set.
    pub extra_headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with an explicit `Content-Type` (HTML pages, the
    /// Prometheus exposition format).
    #[must_use]
    pub fn with_type(status: u16, content_type: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type,
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::with_type(status, "text/plain; charset=utf-8", body)
    }

    /// An `application/json` response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::with_type(status, "application/json", body)
    }

    /// Adds one extra response header.
    pub fn add_header(&mut self, name: &str, value: impl Into<String>) {
        self.extra_headers.push((name.to_string(), value.into()));
    }

    /// A JSON error envelope: `{"error": "..."}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":");
        cpssec_attackdb::json::write_escaped(&mut body, message);
        body.push('}');
        Response::json(status, body)
    }

    /// Serializes the response; `close` controls the `Connection` header.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, writer: &mut impl Write, close: bool) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        )?;
        for (name, value) in &self.extra_headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Request {
        read_request(&mut BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /models/scada/associate?fidelity=implementation&topK=3 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/models/scada/associate");
        assert_eq!(req.query_param("fidelity"), Some("implementation"));
        assert_eq!(req.query_param("topK"), Some("3"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /models HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 13\r\nConnection: close\r\n\r\n{\"id\":\"m1\"}ab",
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"id\":\"m1\"}ab");
        assert!(req.wants_close());
    }

    #[test]
    fn percent_decoding_round_trips() {
        for s in ["SIS platform", "a&b=c", "100% café", "plain"] {
            assert_eq!(percent_decode(&percent_encode(s), true).unwrap(), s);
        }
        let req = parse("GET /x?name=SIS+platform&v=a%26b HTTP/1.1\r\n\r\n");
        assert_eq!(req.query_param("name"), Some("SIS platform"));
        assert_eq!(req.query_param("v"), Some("a&b"));
    }

    #[test]
    fn eof_before_any_bytes_is_clean_close() {
        assert!(read_request(&mut BufReader::new(&b""[..]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn garbage_is_malformed() {
        let err = read_request(&mut BufReader::new(&b"not http\r\n\r\n"[..])).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        // Two differing values is the request-smuggling shape: a front
        // proxy honoring the first and us honoring the second would
        // desync on where this request ends.
        let raw = "POST /m HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\nabcdefghijk";
        let err = read_request(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        assert!(
            matches!(&err, HttpError::Malformed(m) if m.contains("conflicting content-length")),
            "{err:?}"
        );
    }

    #[test]
    fn agreeing_duplicate_content_lengths_are_accepted() {
        let raw = "POST /m HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok";
        let req = parse(raw);
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn empty_header_name_is_rejected() {
        for raw in [
            "GET /m HTTP/1.1\r\n  : value\r\n\r\n",
            "GET /m HTTP/1.1\r\n: value\r\n\r\n",
        ] {
            let err = read_request(&mut BufReader::new(raw.as_bytes())).unwrap_err();
            assert!(
                matches!(&err, HttpError::Malformed(m) if m.contains("empty name")),
                "{raw:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn whitespace_method_or_target_is_rejected() {
        for raw in [
            "\t /m HTTP/1.1\r\n\r\n",     // tab "method"
            "GET \t HTTP/1.1\r\n\r\n",    // tab "target"
            "G\x01T /m HTTP/1.1\r\n\r\n", // control byte in method
            "GET /\x7f HTTP/1.1\r\n\r\n", // DEL in target
        ] {
            let err = read_request(&mut BufReader::new(raw.as_bytes())).unwrap_err();
            assert!(matches!(err, HttpError::Malformed(_)), "{raw:?}");
        }
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST /m HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(&mut BufReader::new(raw.as_bytes())).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge));
    }

    #[test]
    fn response_serializes_with_length_and_connection() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut resp = Response::json(200, "{}");
        resp.add_header("X-Trace-Id", "00ff");
        let mut out = Vec::new();
        resp.write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nX-Trace-Id: 00ff\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn error_envelope_escapes_the_message() {
        let resp = Response::error(400, "bad \"thing\"");
        assert_eq!(resp.body, br#"{"error":"bad \"thing\""}"#);
    }
}
