//! Request counters and latency histograms, rendered as plain text.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Histogram bucket upper bounds in microseconds (the last bucket is
/// unbounded).
const BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, u64::MAX];

#[derive(Default)]
struct RouteStats {
    count: u64,
    errors: u64,
    total_us: u64,
    buckets: [u64; BUCKETS_US.len()],
}

/// Startup facts recorded once when the shared state is built: how long
/// the index came up and whether it was thawed from a snapshot (hit) or
/// built from the corpus (miss).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StartupStats {
    /// Wall time to produce the ready-to-query engines, in microseconds.
    pub index_load_us: u64,
    /// Engines thawed from a `.cpsnap` snapshot.
    pub snapshot_hits: u64,
    /// Engines built from the corpus (no usable snapshot).
    pub snapshot_misses: u64,
}

/// Per-route request counters plus cumulative latency histograms.
#[derive(Default)]
pub struct Metrics {
    routes: Mutex<BTreeMap<String, RouteStats>>,
}

impl Metrics {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one request against `route` (the matched pattern, e.g.
    /// `GET /models/:id/associate`).
    pub fn record(&self, route: &str, status: u16, elapsed: Duration) {
        let elapsed_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let mut routes = self.routes.lock().expect("metrics poisoned");
        let stats = routes.entry(route.to_owned()).or_default();
        stats.count += 1;
        if status >= 400 {
            stats.errors += 1;
        }
        stats.total_us = stats.total_us.saturating_add(elapsed_us);
        let bucket = BUCKETS_US
            .iter()
            .position(|&le| elapsed_us <= le)
            .unwrap_or(BUCKETS_US.len() - 1);
        stats.buckets[bucket] += 1;
    }

    /// Total requests recorded across all routes.
    pub fn total_requests(&self) -> u64 {
        let routes = self.routes.lock().expect("metrics poisoned");
        routes.values().map(|s| s.count).sum()
    }

    /// Renders the registry in a flat `name{labels} value` text format.
    /// `caches` supplies `(name, hits, misses)` triples from the result
    /// caches; `startup` supplies the one-time index-load facts.
    pub fn render(&self, caches: &[(&str, u64, u64)], startup: &StartupStats) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let routes = self.routes.lock().expect("metrics poisoned");
        for (route, stats) in routes.iter() {
            let _ = writeln!(out, "requests_total{{route=\"{route}\"}} {}", stats.count);
            let _ = writeln!(out, "errors_total{{route=\"{route}\"}} {}", stats.errors);
            let _ = writeln!(
                out,
                "latency_us_sum{{route=\"{route}\"}} {}",
                stats.total_us
            );
            let mut cumulative = 0;
            for (i, &le) in BUCKETS_US.iter().enumerate() {
                cumulative += stats.buckets[i];
                let le = if le == u64::MAX {
                    "+Inf".to_owned()
                } else {
                    le.to_string()
                };
                let _ = writeln!(
                    out,
                    "latency_us_bucket{{route=\"{route}\",le=\"{le}\"}} {cumulative}"
                );
            }
        }
        drop(routes);
        for &(name, hits, misses) in caches {
            let _ = writeln!(out, "cache_hits_total{{cache=\"{name}\"}} {hits}");
            let _ = writeln!(out, "cache_misses_total{{cache=\"{name}\"}} {misses}");
            let total = hits + misses;
            let ratio = if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            };
            let _ = writeln!(out, "cache_hit_ratio{{cache=\"{name}\"}} {ratio:.4}");
        }
        let _ = writeln!(out, "index_load_us {}", startup.index_load_us);
        let _ = writeln!(
            out,
            "snapshot_loads_total{{result=\"hit\"}} {}",
            startup.snapshot_hits
        );
        let _ = writeln!(
            out,
            "snapshot_loads_total{{result=\"miss\"}} {}",
            startup.snapshot_misses
        );
        out
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("total_requests", &self.total_requests())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_a_route() {
        let metrics = Metrics::new();
        metrics.record("GET /healthz", 200, Duration::from_micros(50));
        metrics.record("GET /healthz", 200, Duration::from_micros(5_000));
        metrics.record("GET /healthz", 404, Duration::from_micros(150));
        let startup = StartupStats {
            index_load_us: 1234,
            snapshot_hits: 1,
            snapshot_misses: 0,
        };
        let text = metrics.render(&[("responses", 3, 1)], &startup);
        assert!(text.contains("requests_total{route=\"GET /healthz\"} 3"));
        assert!(text.contains("errors_total{route=\"GET /healthz\"} 1"));
        assert!(text.contains("latency_us_bucket{route=\"GET /healthz\",le=\"100\"} 1"));
        assert!(text.contains("latency_us_bucket{route=\"GET /healthz\",le=\"1000\"} 2"));
        assert!(text.contains("latency_us_bucket{route=\"GET /healthz\",le=\"+Inf\"} 3"));
        assert!(text.contains("cache_hits_total{cache=\"responses\"} 3"));
        assert!(text.contains("cache_hit_ratio{cache=\"responses\"} 0.7500"));
        assert!(text.contains("index_load_us 1234"));
        assert!(text.contains("snapshot_loads_total{result=\"hit\"} 1"));
        assert!(text.contains("snapshot_loads_total{result=\"miss\"} 0"));
        assert_eq!(metrics.total_requests(), 3);
    }

    #[test]
    fn empty_cache_ratio_is_zero() {
        let metrics = Metrics::new();
        let text = metrics.render(&[("responses", 0, 0)], &StartupStats::default());
        assert!(text.contains("cache_hit_ratio{cache=\"responses\"} 0.0000"));
    }
}
