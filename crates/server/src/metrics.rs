//! Request counters and latency histograms, rendered as Prometheus-style
//! plain text.
//!
//! Latencies go into a per-route log-linear [`cpssec_obs::Histogram`]
//! (1 µs .. ~16.7 s, ≤6.25% relative error), so `/metrics` can report
//! both cumulative `le` buckets and p50/p90/p99/p999 extractions. The
//! hot path takes a read lock on the route table plus a handful of
//! relaxed atomic increments; the write lock is only taken the first
//! time a route is seen.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use cpssec_obs::hist::Snapshot;
use cpssec_obs::Histogram;

/// `Content-Type` of the exposition format this module renders.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Rendered histogram bucket bounds (µs): powers of four spanning the
/// whole tracked range. These align with the underlying octave
/// boundaries, so cumulative counts carry at most one sub-bucket
/// (6.25%) of edge fuzz.
const RENDER_LE_US: [u64; 13] = [
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
];

/// Reported latency quantiles.
const QUANTILES: [(&str, f64); 4] = [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

struct RouteStats {
    count: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

impl RouteStats {
    fn new() -> RouteStats {
        RouteStats {
            count: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Histogram::new(),
        }
    }
}

/// Startup facts recorded once when the shared state is built: how long
/// the index came up and whether it was thawed from a snapshot (hit) or
/// built from the corpus (miss).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StartupStats {
    /// Wall time to produce the ready-to-query engines, in microseconds.
    /// On a mapped-snapshot boot this is the background owned decode and
    /// is filled in once that thaw completes.
    pub index_load_us: u64,
    /// Engines thawed from a `.cpsnap` snapshot.
    pub snapshot_hits: u64,
    /// Engines built from the corpus (no usable snapshot).
    pub snapshot_misses: u64,
    /// Wall time from snapshot bytes to a query-ready state, in
    /// microseconds. For a mapped boot this is the zero-copy view open
    /// (checksum pass included) — the number the cold-start budget is
    /// asserted against; 0 when no snapshot was involved.
    pub snapshot_load_us: u64,
}

/// Live corpus-state gauges: owned by the app state, bumped on delta
/// applies and compactions, sampled into both `/metrics` and the
/// time-series store each telemetry tick.
#[derive(Debug, Default)]
pub struct CorpusGauges {
    /// Records across all three families (patterns + weaknesses +
    /// vulnerabilities) in the currently installed corpus generation.
    pub corpus_records: AtomicU64,
    /// `.cpsdelta` batches applied since boot.
    pub delta_applies_total: AtomicU64,
    /// Delta compactions (rebase into a fresh base snapshot) since boot.
    pub compactions_total: AtomicU64,
    /// Bytes of the mapped snapshot image backing the zero-copy view
    /// (0 when the state was built from a corpus, not a snapshot).
    pub snapshot_mapped_bytes: AtomicU64,
}

/// Point-in-time copy of [`CorpusGauges`], as consumed by
/// [`Metrics::render`] and the telemetry tick.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSample {
    /// See [`CorpusGauges::corpus_records`].
    pub corpus_records: u64,
    /// See [`CorpusGauges::delta_applies_total`].
    pub delta_applies_total: u64,
    /// See [`CorpusGauges::compactions_total`].
    pub compactions_total: u64,
    /// See [`CorpusGauges::snapshot_mapped_bytes`].
    pub snapshot_mapped_bytes: u64,
}

impl CorpusGauges {
    /// Reads every gauge once (relaxed; the gauges are monotonic or
    /// last-write-wins, so a torn multi-gauge read is harmless).
    #[must_use]
    pub fn sample(&self) -> CorpusSample {
        CorpusSample {
            corpus_records: self.corpus_records.load(Ordering::Relaxed),
            delta_applies_total: self.delta_applies_total.load(Ordering::Relaxed),
            compactions_total: self.compactions_total.load(Ordering::Relaxed),
            snapshot_mapped_bytes: self.snapshot_mapped_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Per-route request counters plus latency histograms.
#[derive(Default)]
pub struct Metrics {
    routes: RwLock<HashMap<String, Arc<RouteStats>>>,
}

/// Point-in-time copy of one route's counters, as returned by
/// [`Metrics::snapshot_all`]; the telemetry tick diffs consecutive
/// copies to get per-tick windows.
#[derive(Debug, Clone)]
pub struct RouteObservation {
    /// Cumulative request count.
    pub count: u64,
    /// Cumulative error (status >= 400) count.
    pub errors: u64,
    /// Cumulative latency histogram.
    pub latency: Snapshot,
}

/// Escapes a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the exposition format's full escape set for label values).
#[must_use]
pub fn escape_label(value: &str) -> Cow<'_, str> {
    if !value.contains(['\\', '"', '\n']) {
        return Cow::Borrowed(value);
    }
    let mut out = String::with_capacity(value.len() + 2);
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Collapses raw model ids in a route label to the `:id` pattern, so the
/// label set stays bounded no matter how many sessions exist. `dispatch`
/// already reports patterns, but `record` is public — normalizing here
/// keeps a caller passing a concrete path (`GET /models/a1b2/associate`)
/// from minting one label per model hash.
fn normalize_route(route: &str) -> Cow<'_, str> {
    const MARK: &str = "/models/";
    let Some(pos) = route.find(MARK) else {
        return Cow::Borrowed(route);
    };
    let id_start = pos + MARK.len();
    let rest = &route[id_start..];
    if rest.is_empty() {
        return Cow::Borrowed(route);
    }
    let id_end = rest.find('/').map_or(route.len(), |i| id_start + i);
    if &route[id_start..id_end] == ":id" {
        return Cow::Borrowed(route);
    }
    Cow::Owned(format!("{}:id{}", &route[..id_start], &route[id_end..]))
}

impl Metrics {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn route_stats(&self, route: &str) -> Arc<RouteStats> {
        if let Some(stats) = self.routes.read().expect("metrics poisoned").get(route) {
            return Arc::clone(stats);
        }
        let mut routes = self.routes.write().expect("metrics poisoned");
        Arc::clone(
            routes
                .entry(route.to_owned())
                .or_insert_with(|| Arc::new(RouteStats::new())),
        )
    }

    /// Records one request against `route` (the matched pattern, e.g.
    /// `GET /models/:id/associate`; raw model ids are normalized to the
    /// pattern first).
    pub fn record(&self, route: &str, status: u16, elapsed: Duration) {
        let elapsed_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let stats = self.route_stats(normalize_route(route).as_ref());
        stats.count.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        stats.latency.record(elapsed_us);
    }

    /// Total requests recorded across all routes.
    pub fn total_requests(&self) -> u64 {
        let routes = self.routes.read().expect("metrics poisoned");
        routes
            .values()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Point-in-time copies of every route's counters, sorted by route.
    pub fn snapshot_all(&self) -> Vec<(String, RouteObservation)> {
        let routes: Vec<(String, Arc<RouteStats>)> = {
            let map = self.routes.read().expect("metrics poisoned");
            map.iter()
                .map(|(route, stats)| (route.clone(), Arc::clone(stats)))
                .collect()
        };
        let mut out: Vec<(String, RouteObservation)> = routes
            .into_iter()
            .map(|(route, stats)| {
                (
                    route,
                    RouteObservation {
                        count: stats.count.load(Ordering::Relaxed),
                        errors: stats.errors.load(Ordering::Relaxed),
                        latency: stats.latency.snapshot(),
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): one `# HELP`/`# TYPE` pair per metric family,
    /// family-major sample ordering, escaped label values. `caches`
    /// supplies `(name, hits, misses)` triples from the result caches;
    /// `startup` supplies the one-time index-load facts; `corpus` the
    /// live corpus-state gauges.
    pub fn render(
        &self,
        caches: &[(&str, u64, u64)],
        startup: &StartupStats,
        corpus: &CorpusSample,
    ) -> String {
        use std::fmt::Write as _;
        fn family(out: &mut String, name: &str, kind: &str, help: &str) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
        }
        let mut out = String::new();
        let routes = self.snapshot_all();

        family(
            &mut out,
            "requests_total",
            "counter",
            "Requests served, by route.",
        );
        for (route, obs) in &routes {
            let _ = writeln!(
                out,
                "requests_total{{route=\"{}\"}} {}",
                escape_label(route),
                obs.count
            );
        }
        family(
            &mut out,
            "errors_total",
            "counter",
            "Requests answered with status >= 400, by route.",
        );
        for (route, obs) in &routes {
            let _ = writeln!(
                out,
                "errors_total{{route=\"{}\"}} {}",
                escape_label(route),
                obs.errors
            );
        }
        family(
            &mut out,
            "latency_us",
            "histogram",
            "Request latency in microseconds, by route.",
        );
        for (route, obs) in &routes {
            let route = escape_label(route);
            for le in RENDER_LE_US {
                let _ = writeln!(
                    out,
                    "latency_us_bucket{{route=\"{route}\",le=\"{le}\"}} {}",
                    obs.latency.count_le(le)
                );
            }
            let _ = writeln!(
                out,
                "latency_us_bucket{{route=\"{route}\",le=\"+Inf\"}} {}",
                obs.latency.count
            );
            let _ = writeln!(
                out,
                "latency_us_sum{{route=\"{route}\"}} {}",
                obs.latency.sum_us
            );
            let _ = writeln!(
                out,
                "latency_us_count{{route=\"{route}\"}} {}",
                obs.latency.count
            );
        }
        family(
            &mut out,
            "latency_us_quantile",
            "gauge",
            "Latency quantile extractions (<=6.25% bucket error), by route.",
        );
        for (route, obs) in &routes {
            for (name, q) in QUANTILES {
                let _ = writeln!(
                    out,
                    "latency_us_quantile{{route=\"{}\",quantile=\"{name}\"}} {}",
                    escape_label(route),
                    obs.latency.quantile_us(q)
                );
            }
        }
        family(
            &mut out,
            "cache_hits_total",
            "counter",
            "Result-cache hits.",
        );
        for &(name, hits, _) in caches {
            let _ = writeln!(
                out,
                "cache_hits_total{{cache=\"{}\"}} {hits}",
                escape_label(name)
            );
        }
        family(
            &mut out,
            "cache_misses_total",
            "counter",
            "Result-cache misses.",
        );
        for &(name, _, misses) in caches {
            let _ = writeln!(
                out,
                "cache_misses_total{{cache=\"{}\"}} {misses}",
                escape_label(name)
            );
        }
        family(
            &mut out,
            "cache_hit_ratio",
            "gauge",
            "Lifetime cache hit ratio (0 when unused).",
        );
        for &(name, hits, misses) in caches {
            let total = hits + misses;
            let ratio = if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            };
            let _ = writeln!(
                out,
                "cache_hit_ratio{{cache=\"{}\"}} {ratio:.4}",
                escape_label(name)
            );
        }
        family(
            &mut out,
            "index_load_us",
            "gauge",
            "Wall time to produce query-ready engines at startup.",
        );
        let _ = writeln!(out, "index_load_us {}", startup.index_load_us);
        family(
            &mut out,
            "snapshot_loads_total",
            "counter",
            "Engine startups by source: snapshot hit or corpus build.",
        );
        let _ = writeln!(
            out,
            "snapshot_loads_total{{result=\"hit\"}} {}",
            startup.snapshot_hits
        );
        let _ = writeln!(
            out,
            "snapshot_loads_total{{result=\"miss\"}} {}",
            startup.snapshot_misses
        );
        family(
            &mut out,
            "snapshot_load_us",
            "gauge",
            "Wall time from snapshot bytes to a query-ready state (0 without a snapshot).",
        );
        let _ = writeln!(out, "snapshot_load_us {}", startup.snapshot_load_us);
        family(
            &mut out,
            "corpus_records",
            "gauge",
            "Records in the installed corpus across all families.",
        );
        let _ = writeln!(out, "corpus_records {}", corpus.corpus_records);
        family(
            &mut out,
            "delta_applies_total",
            "counter",
            "Incremental .cpsdelta batches applied since boot.",
        );
        let _ = writeln!(out, "delta_applies_total {}", corpus.delta_applies_total);
        family(
            &mut out,
            "compactions_total",
            "counter",
            "Delta compactions (rebase into a fresh base snapshot) since boot.",
        );
        let _ = writeln!(out, "compactions_total {}", corpus.compactions_total);
        family(
            &mut out,
            "snapshot_mapped_bytes",
            "gauge",
            "Bytes of the mapped snapshot backing the zero-copy view (0 when corpus-built).",
        );
        let _ = writeln!(
            out,
            "snapshot_mapped_bytes {}",
            corpus.snapshot_mapped_bytes
        );
        out
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("total_requests", &self.total_requests())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_a_route() {
        let metrics = Metrics::new();
        metrics.record("GET /healthz", 200, Duration::from_micros(50));
        metrics.record("GET /healthz", 200, Duration::from_micros(5_000));
        metrics.record("GET /healthz", 404, Duration::from_micros(150));
        let startup = StartupStats {
            index_load_us: 1234,
            snapshot_hits: 1,
            snapshot_misses: 0,
            snapshot_load_us: 321,
        };
        let corpus = CorpusSample {
            corpus_records: 42,
            delta_applies_total: 5,
            compactions_total: 1,
            snapshot_mapped_bytes: 4096,
        };
        let text = metrics.render(&[("responses", 3, 1)], &startup, &corpus);
        assert!(text.contains("requests_total{route=\"GET /healthz\"} 3"));
        assert!(text.contains("errors_total{route=\"GET /healthz\"} 1"));
        assert!(text.contains("latency_us_count{route=\"GET /healthz\"} 3"));
        // 50 µs lands by le=64, 150 µs by le=256, 5 ms by le=16384.
        assert!(text.contains("latency_us_bucket{route=\"GET /healthz\",le=\"64\"} 1"));
        assert!(text.contains("latency_us_bucket{route=\"GET /healthz\",le=\"256\"} 2"));
        assert!(text.contains("latency_us_bucket{route=\"GET /healthz\",le=\"16384\"} 3"));
        assert!(text.contains("latency_us_bucket{route=\"GET /healthz\",le=\"+Inf\"} 3"));
        assert!(text.contains("latency_us_quantile{route=\"GET /healthz\",quantile=\"p50\"}"));
        assert!(text.contains("latency_us_quantile{route=\"GET /healthz\",quantile=\"p99\"}"));
        assert!(text.contains("cache_hits_total{cache=\"responses\"} 3"));
        assert!(text.contains("cache_hit_ratio{cache=\"responses\"} 0.7500"));
        assert!(text.contains("index_load_us 1234"));
        assert!(text.contains("snapshot_loads_total{result=\"hit\"} 1"));
        assert!(text.contains("snapshot_loads_total{result=\"miss\"} 0"));
        assert!(text.contains("snapshot_load_us 321"));
        assert!(text.contains("corpus_records 42"));
        assert!(text.contains("delta_applies_total 5"));
        assert!(text.contains("compactions_total 1"));
        assert!(text.contains("snapshot_mapped_bytes 4096"));
        assert_eq!(metrics.total_requests(), 3);
    }

    #[test]
    fn empty_cache_ratio_is_zero() {
        let metrics = Metrics::new();
        let text = metrics.render(
            &[("responses", 0, 0)],
            &StartupStats::default(),
            &CorpusSample::default(),
        );
        assert!(text.contains("cache_hit_ratio{cache=\"responses\"} 0.0000"));
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let metrics = Metrics::new();
        for us in [100u64, 200, 300, 400, 50_000] {
            metrics.record("GET /x", 200, Duration::from_micros(us));
        }
        let text = metrics.render(&[], &StartupStats::default(), &CorpusSample::default());
        let value = |needle: &str| -> u64 {
            let line = text
                .lines()
                .find(|l| l.starts_with(needle))
                .unwrap_or_else(|| panic!("missing {needle}"));
            line.rsplit(' ').next().unwrap().parse().unwrap()
        };
        let p50 = value("latency_us_quantile{route=\"GET /x\",quantile=\"p50\"}");
        let p99 = value("latency_us_quantile{route=\"GET /x\",quantile=\"p99\"}");
        // p50 sits in 300's bucket, p99 in 50000's — within 6.25%.
        assert!((282..=320).contains(&p50), "p50 {p50}");
        assert!((46_875..=53_125).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        let metrics = Metrics::new();
        metrics.record("GET /weird\"\\\nroute", 200, Duration::from_micros(10));
        let text = metrics.render(&[], &StartupStats::default(), &CorpusSample::default());
        assert!(
            text.contains("requests_total{route=\"GET /weird\\\"\\\\\\nroute\"} 1"),
            "{text}"
        );
        // No raw newline may survive inside any sample line's label.
        assert!(text.lines().all(|l| !l.contains("weird\"")));
    }

    #[test]
    fn every_family_is_declared_before_its_samples() {
        let metrics = Metrics::new();
        metrics.record("GET /healthz", 200, Duration::from_micros(50));
        let text = metrics.render(
            &[("responses", 1, 1)],
            &StartupStats::default(),
            &CorpusSample::default(),
        );
        for fam in [
            "requests_total",
            "errors_total",
            "latency_us",
            "latency_us_quantile",
            "cache_hits_total",
            "cache_misses_total",
            "cache_hit_ratio",
            "index_load_us",
            "snapshot_loads_total",
            "snapshot_load_us",
            "snapshot_mapped_bytes",
            "corpus_records",
            "delta_applies_total",
            "compactions_total",
        ] {
            let type_pos = text
                .find(&format!("# TYPE {fam} "))
                .unwrap_or_else(|| panic!("missing TYPE for {fam}"));
            assert!(
                text.contains(&format!("# HELP {fam} ")),
                "missing HELP {fam}"
            );
            let sample_pos = text
                .lines()
                .scan(0, |acc, l| {
                    let start = *acc;
                    *acc += l.len() + 1;
                    Some((start, l))
                })
                .find(|(_, l)| l.starts_with(fam) && !l.starts_with('#'))
                .map(|(pos, _)| pos)
                .unwrap_or_else(|| panic!("no samples for {fam}"));
            assert!(type_pos < sample_pos, "{fam} declared after its samples");
        }
    }

    #[test]
    fn raw_model_ids_collapse_to_the_pattern() {
        let metrics = Metrics::new();
        // A buggy or external caller reporting concrete ids must not
        // mint one label per model hash.
        metrics.record(
            "GET /models/16c0d3aa91f2b7e4/associate",
            200,
            Duration::from_micros(10),
        );
        metrics.record(
            "GET /models/deadbeefdeadbeef/associate",
            200,
            Duration::from_micros(20),
        );
        metrics.record("POST /models/abc123/whatif", 200, Duration::from_micros(5));
        metrics.record("GET /models/:id/associate", 200, Duration::from_micros(30));
        let text = metrics.render(&[], &StartupStats::default(), &CorpusSample::default());
        assert!(text.contains("requests_total{route=\"GET /models/:id/associate\"} 3"));
        assert!(text.contains("requests_total{route=\"POST /models/:id/whatif\"} 1"));
        assert!(!text.contains("deadbeef"), "raw id leaked into labels");
        // Routes without an id segment pass through untouched.
        metrics.record("POST /models", 200, Duration::from_micros(1));
        let text = metrics.render(&[], &StartupStats::default(), &CorpusSample::default());
        assert!(text.contains("requests_total{route=\"POST /models\"} 1"));
    }
}
