//! `POST /models/:id/campaigns`: exploit-chain campaigns as a service.
//!
//! The request body tunes a [`CampaignRun`] over the built-in testbed
//! named by the model id (`scada` or `water`); the server compiles the
//! matched exploit chains, executes them as staged injections
//! ([`cpssec_campaign::run_campaign_with_progress`]), and serves the
//! verdict report ([`cpssec_analysis::campaign_json`]). The job
//! lifecycle mirrors `POST /scenarios/batch`: `202 Accepted` with a
//! pollable job id by default, `?wait=true` for the finished report in
//! one round trip. Jobs live in their own [`FleetJobs`] registry and
//! age out through the same TTL sweep.
//!
//! Campaigns only run on the built-in testbeds — an uploaded model has
//! no attack scenario library or simulator behind it, so the request is
//! rejected with a `400` naming the valid ids (a missing model is still
//! a `404`).

use std::sync::Arc;

use cpssec_analysis::{campaign_aggregate, campaign_json};
use cpssec_attackdb::json::{parse as parse_json, JsonValue};
use cpssec_campaign::{compile_chains, run_campaign_with_progress, CampaignRun, Testbed};

use crate::http::{Request, Response};
use crate::scenarios::FleetJob;
use crate::AppState;

/// Worker-thread cap per campaign request.
const MAX_THREADS: u64 = 64;

/// Parses the campaign body: `{"seed"?, "threads"?}` (both optional; an
/// empty body is a default run).
fn parse_run(testbed: Testbed, body: &[u8]) -> Result<CampaignRun, String> {
    let mut run = CampaignRun::new(testbed, 42);
    if body.is_empty() {
        return Ok(run);
    }
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let value = parse_json(text).map_err(|e| format!("bad JSON body: {e}"))?;
    let u64_field = |name: &str| -> Result<Option<u64>, String> {
        match value.get(name) {
            None | Some(JsonValue::Null) => Ok(None),
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(JsonValue::Number(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= 1e18 => {
                Ok(Some(*n as u64))
            }
            Some(_) => Err(format!("'{name}' must be a non-negative integer")),
        }
    };
    if let Some(seed) = u64_field("seed")? {
        run.seed = seed;
    }
    if let Some(threads) = u64_field("threads")? {
        if threads == 0 {
            return Err("'threads' must be at least 1".to_owned());
        }
        run.threads = usize::try_from(threads.min(MAX_THREADS)).expect("threads <= 64");
    }
    Ok(run)
}

/// Runs the campaign and publishes the verdict report into the job.
fn execute(job: &FleetJob, run: &CampaignRun) {
    let records = run_campaign_with_progress(run, Some(&job.progress));
    let aggregate = campaign_aggregate(run.testbed.as_str(), &records);
    job.publish(campaign_json(&aggregate).to_text());
}

/// `POST /models/:id/campaigns[?wait=true]`.
#[must_use]
pub fn start(state: &AppState, req: &Request, id: &str) -> Response {
    if state.sessions.get(id).is_none() {
        return Response::error(404, &format!("unknown model '{id}'"));
    }
    let Some(testbed) = Testbed::parse(id) else {
        return Response::error(
            400,
            &format!("campaigns need a built-in testbed model (scada or water), not '{id}'"),
        );
    };
    let run = match parse_run(testbed, &req.body) {
        Ok(run) => run,
        Err(message) => return Response::error(400, &message),
    };
    // A cheap pre-compile sizes the job so progress polls can report
    // completed/total; the executor recompiles identically. Campaigns
    // always run over the pinned seed corpus (not the server's scaled
    // corpus) so the verdict report is machine-independent.
    let total = compile_chains(
        &testbed.model(),
        &cpssec_attackdb::seed::seed_corpus(),
        &testbed.scenario_library(),
        run.chain_limit,
    )
    .len() as u64;
    let job = Arc::new(FleetJob::new(cpssec_obs::mint_trace_id(), total));
    state.campaigns.register(Arc::clone(&job));

    if matches!(req.query_param("wait"), Some("true" | "1")) {
        execute(&job, &run);
        return Response::json(200, job.status_json());
    }
    let worker = Arc::clone(&job);
    let spawned = std::thread::Builder::new()
        .name("cpssec-campaign".to_owned())
        .spawn(move || execute(&worker, &run));
    if spawned.is_err() {
        return Response::error(500, "could not spawn campaign worker");
    }
    Response::json(202, job.status_json())
}

/// `GET /models/:id/campaigns/:job` — progress poll.
#[must_use]
pub fn status(state: &AppState, id: &str) -> Response {
    let Ok(id) = u128::from_str_radix(id, 16) else {
        return Response::error(400, "job id must be hex");
    };
    match state.campaigns.find(id) {
        Some(job) => Response::json(200, job.status_json()),
        None => Response::error(
            404,
            &format!("no campaign job '{id:032x}' (evicted or never started)"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::dispatch;

    fn state() -> Arc<AppState> {
        AppState::new(cpssec_attackdb::seed::seed_corpus())
    }

    fn post(path: &str, body: &str) -> Request {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
    }

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
    }

    #[test]
    fn wait_mode_returns_the_finished_verdict_report() {
        let state = state();
        let req = post("/models/water/campaigns?wait=true", r#"{"threads":2}"#);
        let (route, response) = dispatch(&state, &req);
        assert_eq!(route, "POST /models/:id/campaigns");
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let text = String::from_utf8(response.body).unwrap();
        let value = parse_json(&text).expect("status body parses");
        assert_eq!(value.get("done"), Some(&JsonValue::Bool(true)));
        let result = value.get("result").expect("finished job embeds result");
        assert_eq!(
            result.get("testbed").and_then(JsonValue::as_str),
            Some("water")
        );
        assert!(result.get("recordsHash").is_some());
        assert!(result.get("reachedHazard").is_some());

        // The id is pollable afterwards and serves the same result.
        let id = value.get("id").and_then(JsonValue::as_str).unwrap();
        let (route, response) = dispatch(&state, &get(&format!("/models/water/campaigns/{id}")));
        assert_eq!(route, "GET /models/:id/campaigns/:job");
        assert_eq!(response.status, 200);
        let polled = parse_json(&String::from_utf8(response.body).unwrap()).unwrap();
        assert_eq!(polled.get("result"), value.get("result"));
    }

    #[test]
    fn same_seed_yields_the_same_records_hash_at_any_thread_count() {
        let state = state();
        let hash_of = |threads: u64| {
            let body = format!("{{\"seed\":7,\"threads\":{threads}}}");
            let (_, response) = dispatch(&state, &post("/models/scada/campaigns?wait=true", &body));
            assert_eq!(response.status, 200);
            let value = parse_json(&String::from_utf8(response.body).unwrap()).unwrap();
            value
                .get("result")
                .and_then(|r| r.get("recordsHash"))
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_owned()
        };
        assert_eq!(hash_of(4), hash_of(1));
    }

    #[test]
    fn async_mode_accepts_then_finishes() {
        let state = state();
        let (_, response) = dispatch(&state, &post("/models/water/campaigns", r#"{"threads":2}"#));
        assert_eq!(response.status, 202);
        let value = parse_json(&String::from_utf8(response.body).unwrap()).unwrap();
        assert_eq!(value.get("total"), Some(&JsonValue::Number(42.0)));
        let id = value
            .get("id")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_owned();

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        loop {
            let (_, response) = dispatch(&state, &get(&format!("/models/water/campaigns/{id}")));
            assert_eq!(response.status, 200);
            let polled = parse_json(&String::from_utf8(response.body).unwrap()).unwrap();
            if polled.get("done") == Some(&JsonValue::Bool(true)) {
                assert_eq!(polled.get("completed"), Some(&JsonValue::Number(42.0)));
                assert!(polled.get("result").is_some());
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "campaign job never finished"
            );
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }

    #[test]
    fn bad_models_and_bodies_fail_cleanly() {
        let state = state();
        let (_, response) = dispatch(&state, &post("/models/ghost/campaigns", ""));
        assert_eq!(response.status, 404);

        // A stored model that is not a testbed is rejected with guidance.
        state.sessions.insert(
            "custom",
            cpssec_model::SystemModelBuilder::new("custom")
                .component("only", cpssec_model::ComponentKind::Other)
                .build()
                .unwrap(),
        );
        let (_, response) = dispatch(&state, &post("/models/custom/campaigns", ""));
        assert_eq!(response.status, 400);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("scada or water"), "{body}");

        let (_, response) = dispatch(&state, &post("/models/water/campaigns", "not json"));
        assert_eq!(response.status, 400);
        let (_, response) = dispatch(&state, &post("/models/water/campaigns", r#"{"threads":0}"#));
        assert_eq!(response.status, 400);

        let (_, response) = dispatch(&state, &get("/models/water/campaigns/not-hex"));
        assert_eq!(response.status, 400);
        let (_, response) = dispatch(
            &state,
            &get("/models/water/campaigns/00000000000000000000000000000000"),
        );
        assert_eq!(response.status, 404);
        let (_, response) = dispatch(&state, &get("/models/water/campaigns"));
        assert_eq!(response.status, 405, "GET on the campaigns root is 405");
    }
}
