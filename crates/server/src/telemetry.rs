//! The telemetry tick: every `--tick-ms` (default 1 s) the server
//! snapshots its counters and histograms, diffs them against the
//! previous tick, and feeds the deltas into the time-series store and
//! the SLO burn-rate monitor.
//!
//! Latency quantiles are downsampled by *merging histograms*, never by
//! averaging quantiles: each (route, resolution) keeps a window
//! accumulator [`Snapshot`] that per-tick deltas merge into
//! ([`Snapshot::merge`]); the coarse point is the quantile of the
//! merged window, re-pushed (same-slot replace) every tick so partial
//! slots are already visible to the dashboard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use cpssec_obs::hist::Snapshot;
use cpssec_obs::slo::Transition;
use cpssec_obs::timeseries::RESOLUTIONS;
use cpssec_obs::{Agg, SloConfig, SloMonitor, SlowLog, TimeSeriesStore};

use crate::metrics::{Metrics, RouteObservation};
use crate::pool::PoolStats;

/// Default tick interval in milliseconds.
pub const DEFAULT_TICK_MS: u64 = 1_000;

/// Wall clock as unix milliseconds.
#[must_use]
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// One (route, resolution) latency window being accumulated.
struct WinAcc {
    slot_ts: u64,
    acc: Snapshot,
}

#[derive(Default)]
struct TickInner {
    prev_ts_ms: Option<u64>,
    prev_routes: HashMap<String, RouteObservation>,
    windows: HashMap<String, [Option<WinAcc>; 3]>,
    prev_caches: HashMap<String, (u64, u64)>,
    prev_slow: u64,
}

/// Everything the tick thread owns: the series store, the SLO monitor,
/// and the diffing state between ticks.
pub struct Telemetry {
    /// The multi-resolution series store behind `/metrics/history`.
    pub store: TimeSeriesStore,
    slo: Mutex<SloMonitor>,
    inner: Mutex<TickInner>,
    ticks: AtomicU64,
    last_tick_us: AtomicU64,
    total_tick_us: AtomicU64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("ticks", &self.ticks.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Empty store, no SLOs, no tick history.
    #[must_use]
    pub fn new() -> Telemetry {
        Telemetry {
            store: TimeSeriesStore::new(),
            slo: Mutex::new(SloMonitor::default()),
            inner: Mutex::new(TickInner::default()),
            ticks: AtomicU64::new(0),
            last_tick_us: AtomicU64::new(0),
            total_tick_us: AtomicU64::new(0),
        }
    }

    /// Replace the SLO monitor with one built from `config`.
    pub fn install_slo(&self, config: SloConfig) {
        *self.slo.lock().expect("slo poisoned") = SloMonitor::new(config);
    }

    /// Ticks run so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Cost of the most recent tick, µs.
    pub fn last_tick_us(&self) -> u64 {
        self.last_tick_us.load(Ordering::Relaxed)
    }

    /// Cumulative tick cost, µs — `total / ticks` is the mean.
    pub fn total_tick_us(&self) -> u64 {
        self.total_tick_us.load(Ordering::Relaxed)
    }

    /// JSON for `GET /alerts`.
    pub fn alerts_json(&self) -> String {
        self.slo.lock().expect("slo poisoned").to_json()
    }

    /// Run one tick at wall time `now_ms`. Returns SLO transitions so
    /// the caller can log them.
    pub fn tick(
        &self,
        ts_ms: u64,
        metrics: &Metrics,
        caches: &[(&str, u64, u64)],
        pool: &PoolStats,
        slow: &SlowLog,
    ) -> Vec<Transition> {
        let started = Instant::now();
        let routes = metrics.snapshot_all();
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        let elapsed_ms = inner
            .prev_ts_ms
            .map_or(DEFAULT_TICK_MS, |prev| ts_ms.saturating_sub(prev))
            .max(1);
        inner.prev_ts_ms = Some(ts_ms);

        // Per-route deltas since the previous tick.
        let mut deltas: HashMap<String, RouteObservation> = HashMap::new();
        for (route, obs) in &routes {
            let delta = match inner.prev_routes.get(route) {
                Some(prev) => RouteObservation {
                    count: obs.count.saturating_sub(prev.count),
                    errors: obs.errors.saturating_sub(prev.errors),
                    latency: obs.latency.diff(&prev.latency),
                },
                None => obs.clone(),
            };
            self.store.record(
                &format!("route:{route}:rate"),
                Agg::Mean,
                ts_ms,
                delta.count as f64 * 1_000.0 / elapsed_ms as f64,
            );
            self.store.record(
                &format!("route:{route}:error_rate"),
                Agg::Mean,
                ts_ms,
                delta.errors as f64 * 1_000.0 / elapsed_ms as f64,
            );
            if delta.latency.count > 0 {
                let windows = inner.windows.entry(route.clone()).or_default();
                for (i, res) in RESOLUTIONS.iter().enumerate() {
                    let slot_ts = ts_ms - ts_ms % res.slot_ms;
                    let win = match &mut windows[i] {
                        Some(win) if win.slot_ts == slot_ts => win,
                        slot => slot.insert(WinAcc {
                            slot_ts,
                            acc: cpssec_obs::Histogram::new().snapshot(),
                        }),
                    };
                    win.acc.merge(&delta.latency);
                    self.store.push_at(
                        &format!("route:{route}:p50_us"),
                        i,
                        slot_ts,
                        win.acc.quantile_us(0.50) as f64,
                    );
                    self.store.push_at(
                        &format!("route:{route}:p99_us"),
                        i,
                        slot_ts,
                        win.acc.quantile_us(0.99) as f64,
                    );
                }
            }
            deltas.insert(route.clone(), delta);
        }
        inner.prev_routes = routes.into_iter().collect();

        // Cache hit rates over the tick window.
        for &(name, hits, misses) in caches {
            let (ph, pm) = inner
                .prev_caches
                .insert(name.to_string(), (hits, misses))
                .unwrap_or((0, 0));
            let (dh, dm) = (hits.saturating_sub(ph), misses.saturating_sub(pm));
            if dh + dm > 0 {
                self.store.record(
                    &format!("cache:{name}:hit_rate"),
                    Agg::Mean,
                    ts_ms,
                    dh as f64 / (dh + dm) as f64,
                );
            }
        }

        // Worker-pool saturation gauges.
        self.store
            .record("pool:busy", Agg::Max, ts_ms, pool.busy() as f64);
        self.store
            .record("pool:queued", Agg::Max, ts_ms, pool.queued() as f64);
        self.store
            .record("pool:utilization", Agg::Mean, ts_ms, pool.utilization());

        // Slow-query arrivals this tick.
        let slow_now = slow.observed();
        let slow_delta = slow_now.saturating_sub(inner.prev_slow);
        inner.prev_slow = slow_now;
        self.store
            .record("slow:observed", Agg::Sum, ts_ms, slow_delta as f64);
        drop(inner);

        // SLO burn-rate evaluation on the same per-route deltas.
        let transitions = {
            let mut slo = self.slo.lock().expect("slo poisoned");
            slo.tick(|cfg| {
                let Some(delta) = deltas.get(&cfg.route) else {
                    return (0, 0);
                };
                let over_target = delta
                    .latency
                    .count
                    .saturating_sub(delta.latency.count_le(cfg.target_us));
                let bad = (over_target + delta.errors).min(delta.count);
                (delta.count - bad, bad)
            })
        };

        let cost_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.last_tick_us.store(cost_us, Ordering::Relaxed);
        self.total_tick_us.fetch_add(cost_us, Ordering::Relaxed);
        transitions
    }

    /// Records a point-in-time gauge sample into the series store (Max
    /// aggregation: coarse slots keep the high-water mark). Used by the
    /// tick for the corpus-state gauges, which have no per-route shape.
    pub fn record_gauge(&self, ts_ms: u64, name: &str, value: f64) {
        self.store.record(name, Agg::Max, ts_ms, value);
    }

    /// Prometheus exposition lines for the tick itself, appended to
    /// `/metrics` by the router (own HELP/TYPE, conformance holds).
    pub fn render_prom(&self) -> String {
        let ticks = self.ticks();
        let mean = self.total_tick_us().checked_div(ticks).unwrap_or(0);
        format!(
            "# HELP telemetry_ticks_total Telemetry ticks run.\n\
             # TYPE telemetry_ticks_total counter\n\
             telemetry_ticks_total {ticks}\n\
             # HELP telemetry_tick_cost_us Telemetry tick cost in microseconds.\n\
             # TYPE telemetry_tick_cost_us gauge\n\
             telemetry_tick_cost_us{{window=\"last\"}} {}\n\
             telemetry_tick_cost_us{{window=\"mean\"}} {mean}\n",
            self.last_tick_us(),
        )
    }

    /// JSON for `GET /metrics/history`: the requested series at one
    /// resolution, points as `[unix_ms, value]` pairs oldest-first.
    pub fn history_json(&self, series: &[&str], res: usize) -> String {
        let resolution = RESOLUTIONS[res];
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"res\":\"{}\",\"slot_ms\":{},\"series\":{{",
            resolution.name, resolution.slot_ms
        ));
        for (i, name) in series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            cpssec_attackdb::json::write_escaped(&mut out, name);
            out.push_str(":[");
            for (j, (ts, value)) in self.store.query(name, res).iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                // Values are finite by construction; {} renders them as
                // valid JSON numbers.
                out.push_str(&format!("[{ts},{value}]"));
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// JSON list of every known series name.
    pub fn series_names_json(&self) -> String {
        let mut out = String::from("{\"series\":[");
        for (i, name) in self.store.names().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            cpssec_attackdb::json::write_escaped(&mut out, name);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tick_at(tel: &Telemetry, metrics: &Metrics, ts_ms: u64) -> Vec<Transition> {
        tel.tick(
            ts_ms,
            metrics,
            &[("responses", 0, 0)],
            &PoolStats::new(),
            &SlowLog::new(4, u64::MAX),
        )
    }

    #[test]
    fn deltas_feed_rate_and_quantile_series() {
        let tel = Telemetry::new();
        let metrics = Metrics::new();
        metrics.record("GET /healthz", 200, Duration::from_micros(100));
        tick_at(&tel, &metrics, 10_000);
        metrics.record("GET /healthz", 200, Duration::from_micros(300));
        metrics.record("GET /healthz", 500, Duration::from_micros(300));
        tick_at(&tel, &metrics, 11_000);
        let rate = tel.store.query("route:GET /healthz:rate", 0);
        assert_eq!(rate.len(), 2);
        assert!((rate[0].1 - 1.0).abs() < 1e-9, "first tick: 1 req/s");
        assert!((rate[1].1 - 2.0).abs() < 1e-9, "second tick: 2 req/s");
        let errors = tel.store.query("route:GET /healthz:error_rate", 0);
        assert!((errors[1].1 - 1.0).abs() < 1e-9);
        // p99 of the second tick's window covers only that tick's two
        // samples (~300 µs), not the first tick's 100 µs.
        let p99 = tel.store.query("route:GET /healthz:p99_us", 0);
        assert_eq!(p99.len(), 2);
        assert!(p99[1].1 >= 282.0 && p99[1].1 <= 320.0, "{}", p99[1].1);
        // Coarse resolutions answer too (same-slot replace semantics).
        assert_eq!(tel.store.query("route:GET /healthz:p99_us", 2).len(), 1);
        assert_eq!(tel.ticks(), 2);
    }

    #[test]
    fn coarse_windows_merge_histograms_not_quantiles() {
        let tel = Telemetry::new();
        let metrics = Metrics::new();
        // Two ticks inside one 10 s slot: 9 fast then 1 slow request.
        for _ in 0..9 {
            metrics.record("GET /x", 200, Duration::from_micros(100));
        }
        tick_at(&tel, &metrics, 20_000);
        metrics.record("GET /x", 200, Duration::from_micros(100_000));
        tick_at(&tel, &metrics, 21_000);
        let p99 = tel.store.query("route:GET /x:p99_us", 1);
        assert_eq!(p99.len(), 1);
        // Merged window: p99 of [100×9, 100000] sits in the 100 ms
        // bucket. Averaging per-tick p99s would report ~50 ms.
        assert!(p99[0].1 >= 93_750.0, "p99 {}", p99[0].1);
    }

    #[test]
    fn slo_transitions_fire_and_log_through_tick() {
        let tel = Telemetry::new();
        tel.install_slo(
            SloConfig::parse(
                "[[slo]]\nroute = \"GET /x\"\ntarget_us = 1000\nobjective = 0.9\n\
                 short_ticks = 2\nlong_ticks = 4",
            )
            .unwrap(),
        );
        let metrics = Metrics::new();
        let mut fired = false;
        for i in 0..6u64 {
            metrics.record("GET /x", 200, Duration::from_micros(50_000));
            let transitions = tick_at(&tel, &metrics, 30_000 + i * 1_000);
            if transitions
                .iter()
                .any(|t| t.state == cpssec_obs::AlertState::Firing)
            {
                fired = true;
                break;
            }
        }
        assert!(fired, "alert never fired: {}", tel.alerts_json());
        assert!(tel.alerts_json().contains("\"state\":\"firing\""));
    }

    #[test]
    fn history_json_shape() {
        let tel = Telemetry::new();
        let metrics = Metrics::new();
        metrics.record("GET /healthz", 200, Duration::from_micros(10));
        tick_at(&tel, &metrics, 5_000);
        let json = tel.history_json(&["route:GET /healthz:rate", "nope"], 0);
        assert!(json.starts_with("{\"res\":\"1s\",\"slot_ms\":1000,\"series\":{"));
        assert!(json.contains("\"route:GET /healthz:rate\":[[5000,"));
        assert!(json.contains("\"nope\":[]"));
        assert!(tel.series_names_json().contains("\"pool:busy\""));
        assert!(tel.render_prom().contains("telemetry_ticks_total 1"));
        tel.record_gauge(5_000, "corpus:records", 42.0);
        assert!(tel
            .history_json(&["corpus:records"], 0)
            .contains("\"corpus:records\":[[5000,42]]"));
    }
}
