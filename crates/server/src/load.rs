//! A hand-rolled load generator for the analysis service.
//!
//! `cpssec load` drives a running server with N concurrent clients, each
//! issuing M requests over one keep-alive connection, cycling through the
//! read endpoints plus a what-if POST. Used by CI to prove the concurrent
//! path serves real traffic with zero errors, and by E11 to measure
//! throughput.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Load run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client.
    pub requests: usize,
}

/// Aggregate results of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests that returned 2xx.
    pub ok: u64,
    /// Requests that failed (non-2xx status or transport error).
    pub errors: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Sum of per-request latencies in microseconds.
    pub total_latency_us: u64,
    /// Slowest single request in microseconds.
    pub max_latency_us: u64,
}

impl LoadReport {
    /// Requests per second over the wall clock.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            (self.ok + self.errors) as f64 / secs
        }
    }

    /// Mean latency in microseconds.
    #[must_use]
    pub fn mean_latency_us(&self) -> f64 {
        let n = self.ok + self.errors;
        if n == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / n as f64
        }
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} ok, {} errors, {:.0} req/s, mean {:.0} us, max {} us",
            self.ok,
            self.errors,
            self.throughput(),
            self.mean_latency_us(),
            self.max_latency_us
        )
    }
}

/// A parsed HTTP response (status + headers + body) from the wire.
#[derive(Debug)]
pub struct WireResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl WireResponse {
    /// A header value by (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one HTTP/1.1 response with a `Content-Length` body.
///
/// # Errors
///
/// `InvalidData` on protocol violations, otherwise transport errors.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<WireResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body)?;
    Ok(WireResponse {
        status,
        headers,
        body,
    })
}

/// The what-if body every fourth request posts (a risky-OS edit on the
/// built-in SCADA model).
const WHATIF_BODY: &str = r#"{"changes":[{"op":"add","component":"Temperature sensor","kind":"os","value":"Windows 7","atFidelity":"implementation"}]}"#;

/// One client: `requests` requests over one keep-alive connection,
/// cycling healthz → associate → table1 → what-if.
fn run_client(config: &LoadConfig, report: &SharedCounters) -> io::Result<()> {
    let stream = TcpStream::connect(&config.addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    for turn in 0..config.requests {
        let started = Instant::now();
        match turn % 4 {
            0 => write!(writer, "GET /healthz HTTP/1.1\r\n\r\n")?,
            1 => write!(writer, "GET /models/scada/associate HTTP/1.1\r\n\r\n")?,
            2 => write!(writer, "GET /table1 HTTP/1.1\r\n\r\n")?,
            _ => write!(
                writer,
                "POST /models/scada/whatif HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{WHATIF_BODY}",
                WHATIF_BODY.len()
            )?,
        }
        writer.flush()?;
        let response = read_response(&mut reader)?;
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        report
            .total_latency_us
            .fetch_add(elapsed_us, Ordering::Relaxed);
        report
            .max_latency_us
            .fetch_max(elapsed_us, Ordering::Relaxed);
        if (200..300).contains(&response.status) {
            report.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            report.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    Ok(())
}

#[derive(Default)]
struct SharedCounters {
    ok: AtomicU64,
    errors: AtomicU64,
    total_latency_us: AtomicU64,
    max_latency_us: AtomicU64,
}

/// Runs the load: `clients` threads, each `requests` requests over one
/// keep-alive connection. A client whose connection fails mid-run counts
/// one error for the failure; completed requests stay accounted.
#[must_use]
pub fn run(config: &LoadConfig) -> LoadReport {
    let counters = SharedCounters::default();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.clients.max(1) {
            scope.spawn(|| {
                if run_client(config, &counters).is_err() {
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    LoadReport {
        ok: counters.ok.load(Ordering::Relaxed),
        errors: counters.errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        total_latency_us: counters.total_latency_us.load(Ordering::Relaxed),
        max_latency_us: counters.max_latency_us.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_response_parses_status_and_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\r\nok\n";
        let response = read_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("Content-Type"), Some("text/plain"));
        assert_eq!(response.body, b"ok\n");
    }

    #[test]
    fn report_math_is_sane() {
        let report = LoadReport {
            ok: 90,
            errors: 10,
            elapsed: Duration::from_secs(2),
            total_latency_us: 1_000,
            max_latency_us: 500,
        };
        assert!((report.throughput() - 50.0).abs() < 1e-9);
        assert!((report.mean_latency_us() - 10.0).abs() < 1e-9);
        assert!(report.summary().contains("90 ok"));
    }

    #[test]
    fn load_drives_a_live_server_with_zero_errors() {
        let state = crate::AppState::new(cpssec_attackdb::seed::seed_corpus());
        let server = crate::Server::bind("127.0.0.1:0", 4, state).unwrap();
        let addr = server.local_addr().unwrap();
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let report = run(&LoadConfig {
            addr: addr.to_string(),
            clients: 4,
            requests: 8,
        });
        flag.store(true, std::sync::atomic::Ordering::Relaxed);
        handle.join().unwrap();
        assert_eq!(report.errors, 0, "{}", report.summary());
        assert_eq!(report.ok, 32);
        assert!(report.max_latency_us > 0);
    }
}
