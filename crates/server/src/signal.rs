//! SIGTERM/SIGINT → shutdown flag, with no external crates.
//!
//! The only unsafe code in the workspace: binding libc's `signal(2)`
//! directly. The handler does one async-signal-safe thing — a relaxed
//! store to a process-global `AtomicBool` the accept loop polls.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // OnceLock::get and AtomicBool::store are both lock-free loads/stores;
    // safe inside a signal handler.
    if let Some(flag) = FLAG.get() {
        flag.store(true, Ordering::Relaxed);
    }
}

/// Routes SIGTERM and SIGINT to `flag`. Idempotent: only the first call's
/// flag is registered (the process has one shutdown flag). On non-Unix
/// targets this is a no-op and shutdown relies on the flag being set
/// programmatically.
pub fn install(flag: &Arc<AtomicBool>) {
    let _ = FLAG.set(Arc::clone(flag));
    #[cfg(unix)]
    {
        let handler: extern "C" fn(i32) = on_signal;
        unsafe {
            signal(SIGTERM, handler as usize);
            signal(SIGINT, handler as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn raised_sigterm_sets_the_flag() {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        let flag = Arc::new(AtomicBool::new(false));
        install(&flag);
        unsafe {
            raise(SIGTERM);
        }
        // FLAG is process-global: whichever flag won the OnceLock race is
        // the one handlers write to. Check that one.
        assert!(FLAG.get().expect("installed").load(Ordering::Relaxed));
    }
}
