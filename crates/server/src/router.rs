//! Request routing: URL + query → analysis pipeline → canonical JSON.
//!
//! Every analysis response is produced by the *same* renderers the batch
//! pipeline uses ([`cpssec_analysis::render`]), so a served body is byte
//! for byte what the single-threaded pipeline would print. Responses are
//! memoized in the content-addressed cache: the key concatenates the model
//! content hash, fidelity, scoring model, the canonical filter spec, and
//! any endpoint-specific discriminator (component name, what-if body
//! hash) — all inputs that can influence the bytes.

use std::sync::Arc;

use cpssec_analysis::render::{self, Json};
use cpssec_analysis::{attribute_rows, whatif, AssociationMap, ModelChange, SystemPosture};
use cpssec_attackdb::json::{parse as parse_json, JsonValue};
use cpssec_attackdb::Severity;
use cpssec_model::{fnv1a_64, Attribute, AttributeKind, Fidelity};
use cpssec_search::{Filter, FilterPipeline, ScoringModel};

use crate::http::{Request, Response};
use crate::AppState;

/// The analysis knobs every read endpoint accepts, plus their canonical
/// cache-key rendering.
#[derive(Debug)]
pub struct RequestSpec {
    /// Fidelity level of the projection (default implementation).
    pub fidelity: Fidelity,
    /// Scoring model (default tf-idf).
    pub scoring: ScoringModel,
    /// The filter pipeline, assembled in a fixed order.
    pub filters: FilterPipeline,
    /// Canonical filter-spec string: every knob, defaults included, fixed
    /// order — identical requests produce identical strings.
    pub filter_spec: String,
}

fn parse_severity(raw: &str) -> Option<Severity> {
    match raw {
        "none" => Some(Severity::None),
        "low" => Some(Severity::Low),
        "medium" => Some(Severity::Medium),
        "high" => Some(Severity::High),
        "critical" => Some(Severity::Critical),
        _ => None,
    }
}

/// Parses fidelity/scoring/filter query parameters.
///
/// # Errors
///
/// A client-facing message naming the offending parameter.
pub fn parse_spec(req: &Request) -> Result<RequestSpec, String> {
    let fidelity = match req.query_param("fidelity") {
        Some(raw) => raw
            .parse::<Fidelity>()
            .map_err(|_| format!("unknown fidelity '{raw}'"))?,
        None => Fidelity::Implementation,
    };
    let scoring = match req.query_param("scoring") {
        Some(raw) => raw
            .parse::<ScoringModel>()
            .map_err(|_| format!("unknown scoring model '{raw}'"))?,
        None => ScoringModel::TfIdf,
    };

    let mut filters = FilterPipeline::new();
    let mut spec_parts: Vec<String> = Vec::with_capacity(5);
    // Fixed assembly order: the pipeline stages and the spec string line
    // up, so equal specs mean equal pipelines.
    let min_score = req
        .query_param("minScore")
        .map(|raw| {
            raw.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| format!("bad minScore '{raw}'"))
        })
        .transpose()?;
    if let Some(v) = min_score {
        filters = filters.then(Filter::MinScore(v));
    }
    spec_parts.push(format!(
        "minScore={}",
        min_score.map_or("-".into(), |v| v.to_string())
    ));

    let min_terms = req
        .query_param("minTerms")
        .map(|raw| {
            raw.parse::<usize>()
                .map_err(|_| format!("bad minTerms '{raw}'"))
        })
        .transpose()?;
    if let Some(v) = min_terms {
        filters = filters.then(Filter::MinMatchedTerms(v));
    }
    spec_parts.push(format!(
        "minTerms={}",
        min_terms.map_or("-".into(), |v| v.to_string())
    ));

    let top_k = req
        .query_param("topK")
        .map(|raw| {
            raw.parse::<usize>()
                .map_err(|_| format!("bad topK '{raw}'"))
        })
        .transpose()?;
    if let Some(v) = top_k {
        filters = filters.then(Filter::TopKPerFamily(v));
    }
    spec_parts.push(format!(
        "topK={}",
        top_k.map_or("-".into(), |v| v.to_string())
    ));

    let severity = req
        .query_param("severity")
        .map(|raw| parse_severity(raw).ok_or_else(|| format!("unknown severity '{raw}'")))
        .transpose()?;
    if let Some(v) = severity {
        filters = filters.then(Filter::SeverityAtLeast(v));
    }
    spec_parts.push(format!(
        "severity={}",
        severity.map_or("-".to_owned(), |v| v.as_str().to_ascii_lowercase())
    ));

    let drop_vulns = match req.query_param("dropVulns") {
        Some("true" | "1") => true,
        Some("false" | "0") | None => false,
        Some(raw) => return Err(format!("bad dropVulns '{raw}' (expected true/false)")),
    };
    if drop_vulns {
        filters = filters.then(Filter::DropVulnerabilities);
    }
    spec_parts.push(format!("dropVulns={drop_vulns}"));

    Ok(RequestSpec {
        fidelity,
        scoring,
        filters,
        filter_spec: spec_parts.join(";"),
    })
}

impl RequestSpec {
    /// The shared cache-key prefix: `{model-hash}/{fidelity}/{scoring}/{filters}`.
    #[must_use]
    pub fn key_prefix(&self, model_hash: u64) -> String {
        format!(
            "{model_hash:016x}/{}/{}/{}",
            self.fidelity.as_str(),
            self.scoring.as_str(),
            self.filter_spec
        )
    }
}

/// Parses the what-if request body:
/// `{"changes": [{"op": "add|replace|remove", "component": …, …}]}`.
///
/// # Errors
///
/// A client-facing message for malformed JSON or unknown fields.
pub fn parse_changes(body: &[u8]) -> Result<Vec<ModelChange>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let value = parse_json(text).map_err(|e| format!("bad JSON body: {e}"))?;
    let changes = value
        .get("changes")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "body must be {\"changes\": [...]}".to_owned())?;

    let str_field = |change: &JsonValue, name: &str| -> Result<String, String> {
        change
            .get(name)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("change is missing string field '{name}'"))
    };
    let attribute_of = |change: &JsonValue| -> Result<Attribute, String> {
        let kind_raw = str_field(change, "kind")?;
        let kind = kind_raw
            .parse::<AttributeKind>()
            .map_err(|_| format!("unknown attribute kind '{kind_raw}'"))?;
        let value = str_field(change, "value")?;
        let mut attribute = if kind == AttributeKind::Custom {
            Attribute::custom(str_field(change, "key")?, value)
        } else {
            Attribute::new(kind, value)
        };
        if let Some(raw) = change.get("atFidelity").and_then(JsonValue::as_str) {
            let fidelity = raw
                .parse::<Fidelity>()
                .map_err(|_| format!("unknown fidelity '{raw}'"))?;
            attribute = attribute.at_fidelity(fidelity);
        }
        Ok(attribute)
    };

    changes
        .iter()
        .map(|change| {
            let op = str_field(change, "op")?;
            let component = str_field(change, "component")?;
            match op.as_str() {
                "add" => Ok(ModelChange::AddAttribute {
                    component,
                    attribute: attribute_of(change)?,
                }),
                "replace" => Ok(ModelChange::ReplaceAttribute {
                    component,
                    key: str_field(change, "key")?,
                    with: attribute_of(change)?,
                }),
                "remove" => Ok(ModelChange::RemoveAttribute {
                    component,
                    key: str_field(change, "key")?,
                    value: str_field(change, "value")?,
                }),
                other => Err(format!(
                    "unknown op '{other}' (expected add/replace/remove)"
                )),
            }
        })
        .collect()
}

/// Dispatches one request. Returns the matched route pattern (for metrics)
/// and the response.
#[must_use]
pub fn dispatch(state: &AppState, req: &Request) -> (&'static str, Response) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => ("GET /healthz", Response::text(200, "ok\n")),
        ("GET", ["metrics"]) => ("GET /metrics", metrics(state)),
        ("GET", ["metrics", "history"]) => ("GET /metrics/history", history(state, req)),
        ("GET", ["alerts"]) => (
            "GET /alerts",
            Response::json(200, state.telemetry.alerts_json()),
        ),
        ("GET", ["dashboard"]) => (
            "GET /dashboard",
            Response::with_type(
                200,
                "text/html; charset=utf-8",
                crate::dashboard::DASHBOARD_HTML,
            ),
        ),
        ("GET", ["debug", "slow"]) => {
            ("GET /debug/slow", Response::json(200, state.slow.to_json()))
        }
        ("GET", ["debug", "requests", id]) => ("GET /debug/requests/:id", debug_request(state, id)),
        ("POST", ["debug", "delay"]) => ("POST /debug/delay", set_delay(state, req)),
        ("GET", ["table1"]) => ("GET /table1", table1(state, req)),
        ("POST", ["scenarios", "batch"]) => {
            ("POST /scenarios/batch", crate::scenarios::batch(state, req))
        }
        ("GET", ["scenarios", "batch", id]) => (
            "GET /scenarios/batch/:id",
            crate::scenarios::status(state, id),
        ),
        ("POST", ["corpus", "delta"]) => ("POST /corpus/delta", corpus_delta(state, req)),
        ("POST", ["models"]) => ("POST /models", upload_model(state, req)),
        ("GET", ["models", id, "associate"]) => {
            ("GET /models/:id/associate", associate(state, req, id))
        }
        ("POST", ["models", id, "whatif"]) => {
            ("POST /models/:id/whatif", whatif_route(state, req, id))
        }
        ("POST", ["models", id, "campaigns"]) => (
            "POST /models/:id/campaigns",
            crate::campaigns::start(state, req, id),
        ),
        ("GET", ["models", _, "campaigns", job]) => (
            "GET /models/:id/campaigns/:job",
            crate::campaigns::status(state, job),
        ),
        (_, ["healthz" | "metrics" | "table1" | "alerts" | "dashboard"])
        | (_, ["corpus", "delta"])
        | (_, ["metrics", "history"])
        | (_, ["debug", "slow" | "delay"])
        | (_, ["debug", "requests", _])
        | (_, ["models"])
        | (_, ["models", _, "associate" | "whatif" | "campaigns"])
        | (_, ["models", _, "campaigns", _])
        | (_, ["scenarios", "batch"])
        | (_, ["scenarios", "batch", _]) => (
            "method-not-allowed",
            Response::error(405, "method not allowed"),
        ),
        _ => ("not-found", Response::error(404, "no such endpoint")),
    }
}

fn metrics(state: &AppState) -> Response {
    let (resp_hits, resp_misses) = state.responses.stats();
    let (prior_hits, prior_misses) = state.priors.stats();
    let mut body = state.metrics.render(
        &[
            ("responses", resp_hits, resp_misses),
            ("priors", prior_hits, prior_misses),
        ],
        &state.startup(),
        &state.gauges.sample(),
    );
    body.push_str(&state.telemetry.render_prom());
    Response::with_type(200, crate::metrics::EXPOSITION_CONTENT_TYPE, body)
}

/// `GET /metrics/history?series=a,b&res=1s`. Without `series`, lists
/// every known series name.
fn history(state: &AppState, req: &Request) -> Response {
    let res_name = req.query_param("res").unwrap_or("1s");
    let Some(res) = cpssec_obs::timeseries::resolution_index(res_name) else {
        return Response::error(
            400,
            &format!("unknown resolution '{res_name}' (1s, 10s, 1m)"),
        );
    };
    match req.query_param("series") {
        None => Response::json(200, state.telemetry.series_names_json()),
        Some(list) => {
            let names: Vec<&str> = list.split(',').filter(|s| !s.is_empty()).collect();
            Response::json(200, state.telemetry.history_json(&names, res))
        }
    }
}

/// `GET /debug/requests/:id` — one request's full stage breakdown by
/// (hex) trace id.
fn debug_request(state: &AppState, id: &str) -> Response {
    let Ok(trace_id) = u128::from_str_radix(id, 16) else {
        return Response::error(400, "trace id must be hex");
    };
    match state.requests.find(trace_id) {
        Some(entry) => Response::json(200, entry.to_json()),
        None => Response::error(
            404,
            &format!("no recorded request with trace id '{id}' (evicted or never served)"),
        ),
    }
}

/// `POST /debug/delay?us=N` — the latency-regression test hook.
fn set_delay(state: &AppState, req: &Request) -> Response {
    let Some(raw) = req.query_param("us") else {
        return Response::error(400, "missing ?us=<microseconds> query parameter");
    };
    let Ok(us) = raw.parse::<u64>() else {
        return Response::error(400, &format!("bad us '{raw}'"));
    };
    state
        .test_delay
        .store(us, std::sync::atomic::Ordering::Relaxed);
    Response::json(200, format!("{{\"delay_us\":{us}}}"))
}

/// `POST /corpus/delta` — applies a binary `.cpsdelta` body to the live
/// corpus without a rebuild. A parent-id mismatch (stale or replayed
/// delta) is `409 Conflict`: the client must re-fetch the current
/// `stateId` and rebuild its delta against it; every other rejection is
/// a 400. On success the response carries the new chain anchor.
fn corpus_delta(state: &AppState, req: &Request) -> Response {
    if req.body.is_empty() {
        return Response::error(400, "missing .cpsdelta request body");
    }
    match state.apply_corpus_delta(&req.body) {
        Ok(outcome) => {
            let body = Json::Object(vec![
                ("applied".into(), true.into()),
                ("records".into(), outcome.records.into()),
                (
                    "stateId".into(),
                    format!("{:016x}", outcome.state_id).as_str().into(),
                ),
                ("compacted".into(), outcome.compacted.into()),
            ]);
            Response::json(200, body.to_text())
        }
        Err(e) => {
            let message = e.to_string();
            let status = if message.contains("parent") { 409 } else { 400 };
            Response::error(status, &format!("delta rejected: {message}"))
        }
    }
}

fn upload_model(state: &AppState, req: &Request) -> Response {
    let Some(id) = req.query_param("id").filter(|id| !id.is_empty()) else {
        return Response::error(400, "missing ?id=<name> query parameter");
    };
    if id.contains('/') {
        return Response::error(400, "model id must not contain '/'");
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let model = match cpssec_model::from_graphml(text) {
        Ok(model) => model,
        Err(e) => return Response::error(400, &format!("bad GraphML: {e}")),
    };
    let components = model.components().count();
    let channels = model.channels().count();
    let hash = state.sessions.insert(id, model);
    let body = Json::Object(vec![
        ("id".into(), id.into()),
        ("hash".into(), format!("{hash:016x}").as_str().into()),
        ("components".into(), components.into()),
        ("channels".into(), channels.into()),
    ]);
    Response::json(201, body.to_text())
}

/// Computes (or fetches) the association map for `stored` under `spec`.
/// The map doubles as the *prior* for incremental what-if requests, so it
/// is cached separately from rendered responses.
fn prior_map(
    state: &AppState,
    stored: &crate::session::StoredModel,
    spec: &RequestSpec,
) -> Arc<AssociationMap> {
    let key = format!("prior/{}", spec.key_prefix(stored.hash));
    if let Some(map) = state.priors.get(&key) {
        return map;
    }
    let map = Arc::new(AssociationMap::build(
        &stored.model,
        &state.engine(spec.scoring),
        &state.corpus(),
        spec.fidelity,
        &spec.filters,
    ));
    state.priors.insert(key, Arc::clone(&map));
    map
}

fn associate(state: &AppState, req: &Request, id: &str) -> Response {
    let spec = match parse_spec(req) {
        Ok(spec) => spec,
        Err(message) => return Response::error(400, &message),
    };
    let Some(stored) = state.sessions.get(id) else {
        return Response::error(404, &format!("unknown model '{id}'"));
    };
    cpssec_obs::note_model(stored.hash, spec.fidelity.as_str());
    state.apply_test_delay();
    let component = req.query_param("component");
    let key = format!(
        "assoc/{}/{}",
        spec.key_prefix(stored.hash),
        component.unwrap_or("-")
    );
    if let Some(body) = state.responses.get(&key) {
        cpssec_obs::annotate("cache", "hit");
        return Response::json(200, body.as_str());
    }
    cpssec_obs::annotate("cache", "miss");

    let map = prior_map(state, &stored, &spec);
    let posture = SystemPosture::compute(&stored.model, &state.corpus(), &map);
    let body = match component {
        None => render::association_json(&stored.model, &map, &posture).to_text(),
        Some(name) => {
            let Some(set) = map.matches(name) else {
                return Response::error(404, &format!("unknown component '{name}'"));
            };
            let (patterns, weaknesses, vulnerabilities) = set.counts();
            let mut fields: Vec<(String, Json)> = vec![
                ("model".into(), stored.model.name().into()),
                ("fidelity".into(), map.fidelity().as_str().into()),
                ("name".into(), name.into()),
                ("patterns".into(), patterns.into()),
                ("weaknesses".into(), weaknesses.into()),
                ("vulnerabilities".into(), vulnerabilities.into()),
            ];
            if let Some(p) = posture.component(name) {
                fields.push(("score".into(), p.score.into()));
            }
            Json::Object(fields).to_text()
        }
    };
    state.responses.insert(key, Arc::new(body.clone()));
    Response::json(200, body)
}

fn whatif_route(state: &AppState, req: &Request, id: &str) -> Response {
    let spec = match parse_spec(req) {
        Ok(spec) => spec,
        Err(message) => return Response::error(400, &message),
    };
    let Some(stored) = state.sessions.get(id) else {
        return Response::error(404, &format!("unknown model '{id}'"));
    };
    cpssec_obs::note_model(stored.hash, spec.fidelity.as_str());
    state.apply_test_delay();
    let key = format!(
        "whatif/{}/{:016x}",
        spec.key_prefix(stored.hash),
        fnv1a_64(&req.body)
    );
    if let Some(body) = state.responses.get(&key) {
        cpssec_obs::annotate("cache", "hit");
        return Response::json(200, body.as_str());
    }
    cpssec_obs::annotate("cache", "miss");

    let changes = match parse_changes(&req.body) {
        Ok(changes) => changes,
        Err(message) => return Response::error(400, &message),
    };
    let prior = prior_map(state, &stored, &spec);
    let report = match whatif::evaluate_with_prior(
        &stored.model,
        &changes,
        &prior,
        &state.engine(spec.scoring),
        &state.corpus(),
        &spec.filters,
    ) {
        Ok(report) => report,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let body = render::whatif_json(stored.model.name(), spec.fidelity, &report).to_text();
    state.responses.insert(key, Arc::new(body.clone()));
    Response::json(200, body)
}

fn table1(state: &AppState, req: &Request) -> Response {
    let spec = match parse_spec(req) {
        Ok(spec) => spec,
        Err(message) => return Response::error(400, &message),
    };
    let model_id = req.query_param("model").unwrap_or("scada");
    let Some(stored) = state.sessions.get(model_id) else {
        return Response::error(404, &format!("unknown model '{model_id}'"));
    };
    cpssec_obs::note_model(stored.hash, spec.fidelity.as_str());
    state.apply_test_delay();
    let key = format!("table1/{}", spec.key_prefix(stored.hash));
    if let Some(body) = state.responses.get(&key) {
        cpssec_obs::annotate("cache", "hit");
        return Response::text(200, body.as_str());
    }
    cpssec_obs::annotate("cache", "miss");

    let rows = attribute_rows(
        &stored.model,
        &state.engine(spec.scoring),
        &state.corpus(),
        spec.fidelity,
        &spec.filters,
    );
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.attribute.clone(),
                r.patterns.to_string(),
                r.weaknesses.to_string(),
                r.vulnerabilities.to_string(),
            ]
        })
        .collect();
    let body = render::text_table(
        &[
            "Attribute",
            "Attack Patterns",
            "Weaknesses",
            "Vulnerabilities",
        ],
        &cells,
    );
    state.responses.insert(key, Arc::new(body.clone()));
    Response::text(200, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, target: &str) -> Request {
        let raw = format!("{method} {target} HTTP/1.1\r\n\r\n");
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes()))
            .unwrap()
            .unwrap()
    }

    #[test]
    fn spec_defaults_are_canonical() {
        let spec = parse_spec(&request("GET", "/models/scada/associate")).unwrap();
        assert_eq!(spec.fidelity, Fidelity::Implementation);
        assert_eq!(spec.scoring, ScoringModel::TfIdf);
        assert!(spec.filters.is_empty());
        assert_eq!(
            spec.filter_spec,
            "minScore=-;minTerms=-;topK=-;severity=-;dropVulns=false"
        );
    }

    #[test]
    fn spec_reflects_every_knob() {
        let spec = parse_spec(&request(
            "GET",
            "/x?fidelity=conceptual&scoring=bm25&minScore=0.5&minTerms=2&topK=3&severity=high&dropVulns=true",
        ))
        .unwrap();
        assert_eq!(spec.fidelity, Fidelity::Conceptual);
        assert_eq!(spec.scoring, ScoringModel::Bm25);
        assert_eq!(spec.filters.len(), 5);
        assert_eq!(
            spec.filter_spec,
            "minScore=0.5;minTerms=2;topK=3;severity=high;dropVulns=true"
        );
    }

    #[test]
    fn bad_knobs_are_named_in_the_error() {
        for (target, needle) in [
            ("/x?fidelity=quantum", "fidelity"),
            ("/x?scoring=magic", "scoring"),
            ("/x?minScore=NaN", "minScore"),
            ("/x?minTerms=-1", "minTerms"),
            ("/x?topK=many", "topK"),
            ("/x?severity=extreme", "severity"),
            ("/x?dropVulns=maybe", "dropVulns"),
        ] {
            let err = parse_spec(&request("GET", target)).unwrap_err();
            assert!(err.contains(needle), "{target}: {err}");
        }
    }

    #[test]
    fn changes_parse_all_three_ops() {
        let body = br#"{"changes":[
            {"op":"add","component":"c","kind":"os","value":"Windows 7","atFidelity":"implementation"},
            {"op":"replace","component":"c","key":"os","kind":"os","value":"Linux"},
            {"op":"remove","component":"c","key":"software","value":"Labview"}
        ]}"#;
        let changes = parse_changes(body).unwrap();
        assert_eq!(changes.len(), 3);
        assert!(
            matches!(&changes[0], ModelChange::AddAttribute { component, attribute }
            if component == "c" && attribute.value() == "Windows 7"
               && attribute.fidelity() == Fidelity::Implementation)
        );
        assert!(matches!(&changes[1], ModelChange::ReplaceAttribute { key, .. } if key == "os"));
        assert!(
            matches!(&changes[2], ModelChange::RemoveAttribute { value, .. } if value == "Labview")
        );
    }

    #[test]
    fn change_errors_are_descriptive() {
        assert!(parse_changes(b"not json").unwrap_err().contains("JSON"));
        assert!(parse_changes(b"{}").unwrap_err().contains("changes"));
        assert!(
            parse_changes(br#"{"changes":[{"op":"warp","component":"c"}]}"#)
                .unwrap_err()
                .contains("warp")
        );
        assert!(parse_changes(
            br#"{"changes":[{"op":"add","component":"c","kind":"exotic","value":"x"}]}"#
        )
        .unwrap_err()
        .contains("exotic"));
    }
}
