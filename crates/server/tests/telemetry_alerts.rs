//! SLO burn-rate alerting end to end: an induced latency regression
//! (the `/debug/delay` test hook) must flip `/alerts` to firing within
//! two burn-rate windows of traffic, and clear again after recovery.
//! Also checks `/metrics/history` monotonicity across resolutions and
//! the `/dashboard` page under the same live server.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpssec_attackdb::json::{parse as parse_json, JsonValue};
use cpssec_obs::SloConfig;
use cpssec_server::load::{read_response, WireResponse};
use cpssec_server::{AppState, Server};

/// Tick fast so the burn-rate windows (3 and 6 ticks) elapse in well
/// under a second of wall clock.
const TICK_MS: u64 = 25;

fn start_server() -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let state = AppState::new(cpssec_attackdb::seed::seed_corpus());
    state.telemetry.install_slo(
        SloConfig::parse(
            "[[slo]]\nroute = \"GET /table1\"\ntarget_us = 2000\nobjective = 0.9\n\
             short_ticks = 3\nlong_ticks = 6\nburn_threshold = 2.0",
        )
        .unwrap(),
    );
    let mut server = Server::bind("127.0.0.1:0", 2, state).unwrap();
    server.set_tick_ms(TICK_MS);
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, flag, handle)
}

fn send(addr: SocketAddr, method: &str, target: &str) -> WireResponse {
    let mut stream = TcpStream::connect(addr).unwrap();
    let request = format!("{method} {target} HTTP/1.1\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).unwrap();
    read_response(&mut BufReader::new(stream)).unwrap()
}

fn alerts(addr: SocketAddr) -> JsonValue {
    let response = send(addr, "GET", "/alerts");
    assert_eq!(response.status, 200);
    parse_json(std::str::from_utf8(&response.body).unwrap()).unwrap()
}

fn table1_state(addr: SocketAddr) -> String {
    alerts(addr)
        .get("alerts")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .find(|a| a.get("route").and_then(JsonValue::as_str) == Some("GET /table1"))
        .and_then(|a| a.get("state"))
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_owned()
}

/// Sends table1 traffic until `want` is the alert state or `deadline`
/// passes; returns whether the state was reached.
fn drive_until(addr: SocketAddr, want: &str, deadline: Duration) -> bool {
    let started = Instant::now();
    while started.elapsed() < deadline {
        assert_eq!(send(addr, "GET", "/table1").status, 200);
        if table1_state(addr) == want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn induced_latency_regression_fires_and_recovery_clears() {
    let (addr, flag, handle) = start_server();

    // Baseline: objective configured, nothing firing.
    assert_eq!(table1_state(addr), "ok");

    // Induce the regression: 20 ms per request against a 2 ms target —
    // every request is bad, burn rate 1/(1-0.9) = 10 ≫ threshold 2.
    assert_eq!(send(addr, "POST", "/debug/delay?us=20000").status, 200);
    // Two burn-rate windows at 3+6 ticks × 25 ms ≈ 450 ms of traffic;
    // allow a generous deadline for loaded CI machines.
    assert!(
        drive_until(addr, "firing", Duration::from_secs(20)),
        "alert never fired: {}",
        alerts(addr).get("alerts").is_some()
    );
    let firing = alerts(addr);
    assert_eq!(firing.get("firing"), Some(&JsonValue::Number(1.0)));

    // Recovery: drop the delay; cached table1 responses are fast again,
    // the short window drains, and the alert resolves.
    assert_eq!(send(addr, "POST", "/debug/delay?us=0").status, 200);
    assert!(
        drive_until(addr, "ok", Duration::from_secs(20)),
        "alert never cleared"
    );

    // With traffic recorded, the time-series store answers at multiple
    // resolutions with strictly increasing timestamps.
    for res in ["1s", "10s"] {
        let response = send(
            addr,
            "GET",
            &format!("/metrics/history?series=route:GET%20/table1:rate&res={res}"),
        );
        assert_eq!(response.status, 200);
        let history = parse_json(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(
            history.get("res").and_then(JsonValue::as_str),
            Some(res),
            "{history:?}"
        );
        let points = history
            .get("series")
            .and_then(|s| s.get("route:GET /table1:rate"))
            .and_then(JsonValue::as_array)
            .unwrap();
        assert!(!points.is_empty(), "no {res} points");
        let timestamps: Vec<f64> = points
            .iter()
            .map(|p| match p.as_array().unwrap()[0] {
                JsonValue::Number(n) => n,
                ref other => panic!("non-numeric timestamp: {other:?}"),
            })
            .collect();
        assert!(
            timestamps.windows(2).all(|w| w[0] < w[1]),
            "{res} timestamps not monotone: {timestamps:?}"
        );
    }

    // Unknown series answer empty, unknown resolutions 400, and the
    // bare endpoint lists known names.
    let listing = send(addr, "GET", "/metrics/history");
    assert!(std::str::from_utf8(&listing.body)
        .unwrap()
        .contains("pool:utilization"));
    assert_eq!(send(addr, "GET", "/metrics/history?res=5s").status, 400);

    // The dashboard serves under the same state.
    let page = send(addr, "GET", "/dashboard");
    assert_eq!(page.status, 200);
    assert!(page.header("content-type").unwrap().contains("text/html"));
    assert!(std::str::from_utf8(&page.body)
        .unwrap()
        .contains("cpssec ops"));

    flag.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}
