//! End-to-end request correlation: a caller-supplied `traceparent` (or a
//! server-minted id) must link the response header, the request log
//! (`/debug/requests/:id`), the slow-query log, and the exported Chrome
//! trace — and a pooled worker thread serving request B after a slow
//! request A must not leak A's stage breakdown into B.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cpssec_attackdb::json::{parse as parse_json, JsonValue};
use cpssec_server::load::{read_response, WireResponse};
use cpssec_server::{AppState, Server};

fn start_server(workers: usize) -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let state = AppState::new(cpssec_attackdb::seed::seed_corpus());
    let server = Server::bind("127.0.0.1:0", workers, state).unwrap();
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, flag, handle)
}

/// One request on a fresh connection; extra headers are raw lines.
fn send(addr: SocketAddr, method: &str, target: &str, headers: &[&str]) -> WireResponse {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut request = format!("{method} {target} HTTP/1.1\r\nConnection: close\r\n");
    for header in headers {
        request.push_str(header);
        request.push_str("\r\n");
    }
    request.push_str("\r\n");
    stream.write_all(request.as_bytes()).unwrap();
    read_response(&mut BufReader::new(stream)).unwrap()
}

fn stages_of(entry: &JsonValue) -> Vec<String> {
    entry
        .get("stages")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .map(|s| {
            s.get("stage")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_owned()
        })
        .collect()
}

#[test]
fn traceparent_is_honored_and_reconstructable() {
    // Tracing on: the exported Chrome trace must carry the same id.
    let recorder = cpssec_obs::recorder();
    recorder.enable_spans();
    recorder.enable_trace();
    let (addr, flag, handle) = start_server(2);

    let sent_id = "0af7651916cd43dd8448eb211c80319c";
    let response = send(
        addr,
        "GET",
        "/models/scada/associate",
        &[&format!("traceparent: 00-{sent_id}-b7ad6b7169203331-01")],
    );
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-trace-id"), Some(sent_id));

    // /debug/requests/:id reconstructs the full stage breakdown.
    let detail = send(addr, "GET", &format!("/debug/requests/{sent_id}"), &[]);
    assert_eq!(detail.status, 200);
    let entry = parse_json(std::str::from_utf8(&detail.body).unwrap()).unwrap();
    assert_eq!(
        entry.get("trace_id").and_then(JsonValue::as_str),
        Some(sent_id)
    );
    assert_eq!(entry.get("remote_parent"), Some(&JsonValue::Bool(true)));
    assert_eq!(
        entry.get("route").and_then(JsonValue::as_str),
        Some("GET /models/:id/associate")
    );
    let stages = stages_of(&entry);
    assert!(
        stages.iter().any(|s| s == "serve-request"),
        "stages: {stages:?}"
    );
    assert!(
        entry.get("total_us").is_some() && entry.get("annotations").is_some(),
        "entry: {entry:?}"
    );

    // The same id appears in the --trace export.
    let trace = recorder.trace_json();
    assert!(
        trace.contains(sent_id),
        "trace export missing the request's trace id"
    );

    // A malformed traceparent is ignored: the server mints its own.
    let response = send(
        addr,
        "GET",
        "/healthz",
        &["traceparent: 00-zzzz-b7ad6b7169203331-01"],
    );
    let minted = response.header("x-trace-id").unwrap().to_owned();
    assert_eq!(minted.len(), 32);
    assert_ne!(minted, "0".repeat(32));
    assert_ne!(minted, sent_id);
    let detail = send(addr, "GET", &format!("/debug/requests/{minted}"), &[]);
    assert_eq!(detail.status, 200);
    let entry = parse_json(std::str::from_utf8(&detail.body).unwrap()).unwrap();
    assert_eq!(entry.get("remote_parent"), Some(&JsonValue::Bool(false)));

    // Unknown (evicted or never seen) ids are a 404, junk is a 400.
    assert_eq!(
        send(
            addr,
            "GET",
            &format!("/debug/requests/{}", "f".repeat(32)),
            &[]
        )
        .status,
        404
    );
    assert_eq!(send(addr, "GET", "/debug/requests/nothex", &[]).status, 400);

    flag.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}

#[test]
fn worker_reuse_does_not_leak_stage_breakdowns_between_requests() {
    // One worker: every request is served by the same thread, so request
    // B reuses the exact thread that just served slow request A.
    let (addr, flag, handle) = start_server(1);

    assert_eq!(
        send(addr, "POST", "/debug/delay?us=120000", &[]).status,
        200
    );
    let slow = send(addr, "GET", "/models/scada/associate", &[]);
    assert_eq!(slow.status, 200);
    let slow_id = slow.header("x-trace-id").unwrap().to_owned();

    assert_eq!(send(addr, "POST", "/debug/delay?us=0", &[]).status, 200);
    let fast = send(addr, "GET", "/healthz", &[]);
    assert_eq!(fast.status, 200);
    let fast_id = fast.header("x-trace-id").unwrap().to_owned();

    let detail = send(addr, "GET", &format!("/debug/requests/{slow_id}"), &[]);
    let slow_entry = parse_json(std::str::from_utf8(&detail.body).unwrap()).unwrap();
    let slow_stages = stages_of(&slow_entry);
    assert!(
        slow_stages.iter().any(|s| s == "test-delay"),
        "slow request should carry the induced delay stage: {slow_stages:?}"
    );

    let detail = send(addr, "GET", &format!("/debug/requests/{fast_id}"), &[]);
    let fast_entry = parse_json(std::str::from_utf8(&detail.body).unwrap()).unwrap();
    let fast_stages = stages_of(&fast_entry);
    assert!(
        !fast_stages.iter().any(|s| s == "test-delay"),
        "request B leaked request A's stage breakdown: {fast_stages:?}"
    );
    assert!(
        fast_stages.iter().any(|s| s == "serve-request"),
        "fast stages: {fast_stages:?}"
    );

    // The slow request (120 ms > the 100 ms threshold) also landed in
    // the slow-query log with the same trace id.
    let slow_log = send(addr, "GET", "/debug/slow", &[]);
    let body = std::str::from_utf8(&slow_log.body).unwrap();
    assert!(body.contains(&slow_id), "slow log missing trace id: {body}");

    flag.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}
