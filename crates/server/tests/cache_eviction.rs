//! Eviction behavior of the sharded LRU result caches under a real
//! request mix, driven through `router::dispatch` directly (no sockets)
//! so cache state can be inspected between requests.
//!
//! Uses [`AppState::with_capacities`] to shrink both caches to one entry
//! per shard; a dozen distinct request specs then guarantee evictions
//! without thousands of fill requests.

use std::io::BufReader;

use cpssec_attackdb::seed::seed_corpus;
use cpssec_server::http::{read_request, Request, Response};
use cpssec_server::{router, AppState};

fn request(method: &str, target: &str, body: &str) -> Request {
    let raw = if body.is_empty() {
        format!("{method} {target} HTTP/1.1\r\n\r\n")
    } else {
        format!(
            "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    };
    read_request(&mut BufReader::new(raw.as_bytes()))
        .expect("well-formed request")
        .expect("one request")
}

fn get(state: &AppState, target: &str) -> Response {
    let (_route, response) = router::dispatch(state, &request("GET", target, ""));
    response
}

fn post(state: &AppState, target: &str, body: &str) -> Response {
    let (_route, response) = router::dispatch(state, &request("POST", target, body));
    response
}

/// Twelve distinct associate specs — twelve distinct cache keys.
fn fill_targets() -> Vec<String> {
    (1..=12)
        .map(|k| format!("/models/scada/associate?topK={k}"))
        .collect()
}

/// Reads `name{cache="..."} value` out of the rendered /metrics text.
fn metric(text: &str, name: &str, cache: &str) -> u64 {
    let needle = format!("{name}{{cache=\"{cache}\"}} ");
    text.lines()
        .find_map(|line| line.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("missing {needle} in:\n{text}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable value for {needle}"))
}

#[test]
fn filling_past_capacity_evicts_but_keeps_the_newest_entry() {
    // One entry per shard (8 shards) — 12 distinct keys must overflow.
    let state = AppState::with_capacities(seed_corpus(), 1, 1);
    let targets = fill_targets();
    for target in &targets {
        assert_eq!(get(&state, target).status, 200);
    }
    // Every fill was a miss, and the cache cannot hold all twelve.
    assert_eq!(state.responses.stats(), (0, 12));
    assert!(
        state.responses.len() < targets.len(),
        "expected evictions: {} entries retained",
        state.responses.len()
    );

    // LRU order: the newest entry is never the eviction victim, so the
    // last-filled spec must hit; with fewer slots than keys, at least one
    // older spec must miss.
    let body_of = |target: &str| get(&state, target).body;
    let last = targets.last().unwrap();
    let warm = body_of(last);
    let (hits, _) = state.responses.stats();
    assert_eq!(hits, 1, "most recently inserted entry was evicted");

    let (_, misses_before) = state.responses.stats();
    let mut evicted = 0;
    for target in &targets[..targets.len() - 1] {
        body_of(target);
    }
    let (_, misses_after) = state.responses.stats();
    evicted += misses_after - misses_before;
    assert!(evicted > 0, "no older entry was evicted");

    // Cached and recomputed responses are byte-identical.
    assert_eq!(warm, body_of(last));
}

#[test]
fn metrics_report_the_hit_and_miss_deltas() {
    let state = AppState::with_capacities(seed_corpus(), 1, 1);
    let target = "/models/scada/associate";

    let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
    let hits0 = metric(&text, "cache_hits_total", "responses");
    let misses0 = metric(&text, "cache_misses_total", "responses");
    assert_eq!((hits0, misses0), (0, 0));

    // Miss, then hit, on the same spec.
    assert_eq!(get(&state, target).status, 200);
    assert_eq!(get(&state, target).status, 200);
    let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
    assert_eq!(metric(&text, "cache_hits_total", "responses"), hits0 + 1);
    assert_eq!(
        metric(&text, "cache_misses_total", "responses"),
        misses0 + 1
    );

    // Flood with distinct specs, then re-request: the extra misses from
    // evicted entries show up in the counters, and hits never decrease.
    for t in fill_targets() {
        get(&state, &t);
    }
    get(&state, target);
    let text = String::from_utf8(get(&state, "/metrics").body).unwrap();
    let hits = metric(&text, "cache_hits_total", "responses");
    let misses = metric(&text, "cache_misses_total", "responses");
    assert!(hits > hits0);
    assert!(misses >= misses0 + 13, "flood misses uncounted: {misses}");
    // The priors cache is reported independently.
    assert!(metric(&text, "cache_misses_total", "priors") >= 1);
}

const WHATIF_BODY: &str = r#"{"changes":[{"op":"replace","component":"Programming WS","key":"os","kind":"os","value":"hardened thin client image","atFidelity":"implementation"}]}"#;

#[test]
fn whatif_after_eviction_recomputes_identical_bytes() {
    let state = AppState::with_capacities(seed_corpus(), 1, 1);
    let whatif_target = "/models/scada/whatif";

    let first = post(&state, whatif_target, WHATIF_BODY);
    assert_eq!(first.status, 200);

    // Flood both caches: each distinct associate spec inserts a response
    // *and* a prior, so the what-if's cached response and its prior both
    // face eviction pressure.
    for t in fill_targets() {
        assert_eq!(get(&state, &t).status, 200);
    }
    let (_, prior_misses) = state.priors.stats();
    assert!(prior_misses >= 13, "priors cache saw no pressure");
    assert!(state.priors.len() < 13, "priors cache never evicted");

    // Whether the second what-if is served from cache, recomputed from a
    // surviving prior, or rebuilt from scratch, the bytes must match.
    let second = post(&state, whatif_target, WHATIF_BODY);
    assert_eq!(second.status, 200);
    assert_eq!(first.body, second.body);

    // And a third time after touching the baseline again, for the
    // prior-was-refreshed path.
    assert_eq!(get(&state, "/models/scada/associate").status, 200);
    let third = post(&state, whatif_target, WHATIF_BODY);
    assert_eq!(third.body, first.body);
}
