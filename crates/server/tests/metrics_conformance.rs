//! `/metrics` exposition-format conformance: a strict line parser over
//! the rendered output. Every sample line must parse, every metric
//! family must be declared with `# HELP` and `# TYPE` before its first
//! sample, and label values must be escaped per the format spec
//! (version 0.0.4) — including routes containing backslashes, quotes,
//! and newlines.

use std::collections::HashMap;
use std::time::Duration;

use cpssec_server::metrics::EXPOSITION_CONTENT_TYPE;
use cpssec_server::{http, router, AppState};

fn get(state: &AppState, target: &str) -> http::Response {
    let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
    let request = http::read_request(&mut std::io::BufReader::new(raw.as_bytes()))
        .unwrap()
        .unwrap();
    router::dispatch(state, &request).1
}

/// One parsed sample line.
struct Sample {
    family: String,
    labels: Vec<(String, String)>,
}

/// Parses a sample line strictly: `name{k="v",...} value` or
/// `name value`. Panics (with the offending line) on any violation.
fn parse_sample(line: &str) -> Sample {
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or_else(|| panic!("no separator after metric name: {line:?}"));
    let name = &line[..name_end];
    assert!(!name.is_empty(), "empty metric name: {line:?}");
    assert!(
        name.chars().next().unwrap().is_ascii_alphabetic(),
        "metric name must start with a letter: {line:?}"
    );
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(after_brace) = rest.strip_prefix('{') {
        let mut chars = after_brace.char_indices();
        let mut label_start = 0;
        'outer: loop {
            // label name up to '='
            let eq = loop {
                match chars.next() {
                    Some((i, '=')) => break i,
                    Some((_, c)) if c.is_ascii_alphanumeric() || c == '_' => {}
                    other => panic!("bad label name at {other:?}: {line:?}"),
                }
            };
            let label = &after_brace[label_start..eq];
            assert!(!label.is_empty(), "empty label name: {line:?}");
            assert_eq!(chars.next().map(|(_, c)| c), Some('"'), "{line:?}");
            // quoted value with \\, \", \n escapes only
            let mut value = String::new();
            loop {
                match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        other => panic!("bad escape {other:?}: {line:?}"),
                    },
                    Some((_, '"')) => break,
                    Some((_, '\n')) => panic!("raw newline inside label value: {line:?}"),
                    Some((_, c)) => value.push(c),
                    None => panic!("unterminated label value: {line:?}"),
                }
            }
            labels.push((label.to_owned(), value));
            match chars.next() {
                Some((_, ',')) => {
                    label_start = chars.clone().next().map_or(after_brace.len(), |(i, _)| i);
                }
                Some((i, '}')) => {
                    rest = &after_brace[i + 1..];
                    break 'outer;
                }
                other => panic!("expected ',' or '}}' at {other:?}: {line:?}"),
            }
        }
    }
    let value = rest.trim_start();
    assert!(
        value == "+Inf" || value.parse::<f64>().is_ok(),
        "unparsable sample value {value:?}: {line:?}"
    );
    // The family of `latency_us_bucket` / `_sum` / `_count` is
    // `latency_us`; everything else is its own family.
    let family = ["_bucket", "_sum", "_count"]
        .iter()
        .find_map(|suffix| name.strip_suffix(suffix))
        .filter(|_| name.starts_with("latency_us"))
        .unwrap_or(name);
    Sample {
        family: family.to_owned(),
        labels,
    }
}

#[test]
fn exposition_output_is_strictly_conformant() {
    let state = AppState::new(cpssec_attackdb::seed::seed_corpus());
    // Warm the caches through the real handlers so cache families have
    // data, then record per-route observations (normally done by the
    // connection loop) plus a synthetic route whose label needs every
    // escape the format defines.
    assert_eq!(get(&state, "/table1").status, 200);
    assert_eq!(get(&state, "/models/scada/associate").status, 200);
    state
        .metrics
        .record("GET /healthz", 200, Duration::from_micros(80));
    state
        .metrics
        .record("GET /table1", 200, Duration::from_micros(2_500));
    state
        .metrics
        .record("GET /table1", 500, Duration::from_micros(90_000));
    let nasty = "GET /weird\\route\"quoted\"\nline";
    state.metrics.record(nasty, 200, Duration::from_micros(17));

    let response = get(&state, "/metrics");
    assert_eq!(response.status, 200);
    assert_eq!(response.content_type, EXPOSITION_CONTENT_TYPE);
    let body = String::from_utf8(response.body).unwrap();

    let mut helped: HashMap<String, bool> = HashMap::new();
    let mut typed: HashMap<String, String> = HashMap::new();
    let mut samples = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (family, help) = rest.split_once(' ').expect("HELP needs family + text");
            assert!(!help.is_empty(), "empty HELP text: {line}");
            assert!(
                !helped.contains_key(family),
                "duplicate HELP for {family}: {line}"
            );
            helped.insert(family.to_owned(), true);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest.split_once(' ').expect("TYPE needs family + kind");
            assert!(
                ["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind),
                "bad TYPE kind: {line}"
            );
            assert!(
                helped.contains_key(family),
                "TYPE before HELP for {family}: {line}"
            );
            assert!(
                !typed.contains_key(family),
                "duplicate TYPE for {family}: {line}"
            );
            typed.insert(family.to_owned(), kind.to_owned());
        } else if let Some(comment) = line.strip_prefix('#') {
            panic!("unknown comment form: #{comment}");
        } else {
            samples.push(parse_sample(line));
        }
    }

    assert!(!samples.is_empty());
    for sample in &samples {
        assert!(
            typed.contains_key(&sample.family),
            "sample {0} has no # TYPE declaration",
            sample.family
        );
    }

    // The nasty route round-trips through escaping: after unescaping,
    // the label value is byte-identical to what was recorded.
    let nasty_samples: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.labels.iter().any(|(k, v)| k == "route" && v == nasty))
        .collect();
    assert!(
        !nasty_samples.is_empty(),
        "escaped route label did not round-trip"
    );
    // And the raw text never contains an unescaped newline inside a
    // label (each sample stays on one line).
    assert!(!body.contains("\nline\""), "raw newline leaked into label");

    // Histogram family: buckets must be cumulative and end at +Inf.
    assert_eq!(
        typed.get("latency_us").map(String::as_str),
        Some("histogram")
    );
    let inf_buckets = samples.iter().filter(|s| {
        s.family == "latency_us" && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
    });
    assert!(inf_buckets.count() >= 3, "every route needs a +Inf bucket");

    // Quantiles live in their own gauge family, not inside the
    // histogram (a histogram family must contain only _bucket/_sum/_count).
    assert_eq!(
        typed.get("latency_us_quantile").map(String::as_str),
        Some("gauge")
    );

    // Telemetry self-metrics are appended with their own declarations.
    assert!(typed.contains_key("telemetry_ticks_total"));
}
