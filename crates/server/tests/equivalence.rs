//! The served responses are byte for byte what the single-threaded
//! pipeline produces — sequentially, under eight concurrent clients, and
//! across fidelity/scoring/filter knobs. Determinism is the repo's
//! north-star invariant; a concurrent front-end must not bend it.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cpssec_analysis::render::{association_json, whatif_json};
use cpssec_analysis::{whatif, AssociationMap, SystemPosture};
use cpssec_attackdb::seed::seed_corpus;
use cpssec_model::{Attribute, AttributeKind, Fidelity};
use cpssec_scada::model::{names, scada_model};
use cpssec_search::{Filter, FilterPipeline, MatchConfig, ScoringModel, SearchEngine};
use cpssec_server::load::read_response;
use cpssec_server::{AppState, Server};

struct TestServer {
    addr: SocketAddr,
    flag: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(workers: usize) -> TestServer {
        Self::start_with(workers, AppState::new(seed_corpus()))
    }

    /// Boots a server whose state was thawed from a `.cpsnap` image
    /// instead of built from the corpus.
    fn start_from_snapshot(workers: usize) -> TestServer {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let bytes = cpssec_search::snapshot::encode(&corpus, &engine);
        let state = AppState::from_snapshot(&bytes).expect("thaw");
        Self::start_with(workers, state)
    }

    fn start_with(workers: usize, state: Arc<AppState>) -> TestServer {
        let server = Server::bind("127.0.0.1:0", workers, state).expect("bind");
        let addr = server.local_addr().expect("addr");
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        TestServer {
            addr,
            flag,
            handle: Some(handle),
        }
    }

    fn get(&self, target: &str) -> (u16, Vec<u8>) {
        self.send(&format!(
            "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n"
        ))
    }

    fn post(&self, target: &str, body: &str) -> (u16, Vec<u8>) {
        self.send(&format!(
            "POST {target} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ))
    }

    fn send(&self, raw: &str) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write");
        let response = read_response(&mut BufReader::new(stream)).expect("response");
        (response.status, response.body)
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The direct (no-server) association rendering for the scada model.
fn direct_association(
    fidelity: Fidelity,
    scoring: ScoringModel,
    filters: &FilterPipeline,
) -> String {
    let corpus = seed_corpus();
    let engine = SearchEngine::with_config(
        &corpus,
        MatchConfig {
            scoring,
            ..MatchConfig::default()
        },
    );
    let model = scada_model();
    let map = AssociationMap::build(&model, &engine, &corpus, fidelity, filters);
    let posture = SystemPosture::compute(&model, &corpus, &map);
    association_json(&model, &map, &posture).to_text()
}

const WHATIF_BODY: &str = r#"{"changes":[{"op":"replace","component":"Programming WS","key":"os","kind":"os","value":"hardened thin client image","atFidelity":"implementation"},{"op":"remove","component":"Programming WS","key":"software","value":"Labview"}]}"#;

/// The direct what-if rendering for the same edit `WHATIF_BODY` encodes.
fn direct_whatif() -> String {
    let corpus = seed_corpus();
    let engine = SearchEngine::build(&corpus);
    let model = scada_model();
    let changes = vec![
        cpssec_analysis::ModelChange::ReplaceAttribute {
            component: names::WORKSTATION.into(),
            key: "os".into(),
            with: Attribute::new(AttributeKind::OperatingSystem, "hardened thin client image")
                .at_fidelity(Fidelity::Implementation),
        },
        cpssec_analysis::ModelChange::RemoveAttribute {
            component: names::WORKSTATION.into(),
            key: "software".into(),
            value: "Labview".into(),
        },
    ];
    let report = whatif::evaluate(
        &model,
        &changes,
        &engine,
        &corpus,
        Fidelity::Implementation,
        &FilterPipeline::new(),
    )
    .expect("evaluate");
    whatif_json(model.name(), Fidelity::Implementation, &report).to_text()
}

#[test]
fn associate_is_byte_identical_to_the_direct_pipeline() {
    let server = TestServer::start(2);
    let expected = direct_association(
        Fidelity::Implementation,
        ScoringModel::TfIdf,
        &FilterPipeline::new(),
    );
    // Twice: the second response comes from the result cache and must not
    // differ by a byte either.
    for _ in 0..2 {
        let (status, body) = server.get("/models/scada/associate");
        assert_eq!(status, 200);
        assert_eq!(body, expected.as_bytes());
    }
}

#[test]
fn knobs_stay_byte_identical() {
    let server = TestServer::start(2);
    let filters = FilterPipeline::new().then(Filter::TopKPerFamily(2));
    let expected = direct_association(Fidelity::Conceptual, ScoringModel::Bm25, &filters);
    let (status, body) =
        server.get("/models/scada/associate?fidelity=conceptual&scoring=bm25&topK=2");
    assert_eq!(status, 200);
    assert_eq!(body, expected.as_bytes());
}

#[test]
fn whatif_is_byte_identical_to_the_direct_pipeline() {
    let server = TestServer::start(2);
    let expected = direct_whatif();
    // Cold (computes incrementally from the cached prior) then warm (the
    // response cache): both byte-identical to the batch path.
    for _ in 0..2 {
        let (status, body) = server.post("/models/scada/whatif", WHATIF_BODY);
        assert_eq!(status, 200);
        assert_eq!(body, expected.as_bytes());
    }
}

#[test]
fn eight_concurrent_clients_see_identical_bytes() {
    let server = TestServer::start(4);
    let expected_assoc = direct_association(
        Fidelity::Implementation,
        ScoringModel::TfIdf,
        &FilterPipeline::new(),
    );
    let expected_whatif = direct_whatif();
    std::thread::scope(|scope| {
        for client in 0..8 {
            let server = &server;
            let expected_assoc = &expected_assoc;
            let expected_whatif = &expected_whatif;
            scope.spawn(move || {
                for round in 0..4 {
                    if (client + round) % 2 == 0 {
                        let (status, body) = server.get("/models/scada/associate");
                        assert_eq!(status, 200);
                        assert_eq!(
                            body,
                            expected_assoc.as_bytes(),
                            "client {client} round {round}"
                        );
                    } else {
                        let (status, body) = server.post("/models/scada/whatif", WHATIF_BODY);
                        assert_eq!(status, 200);
                        assert_eq!(
                            body,
                            expected_whatif.as_bytes(),
                            "client {client} round {round}"
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn uploaded_model_is_served_from_its_own_content_hash() {
    let server = TestServer::start(2);
    // Upload the same scada model under a different id: same bytes out.
    let graphml = cpssec_model::to_graphml(&scada_model());
    let (status, body) = server.post("/models?id=copy", &graphml);
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"id\":\"copy\""), "{text}");
    assert!(text.contains("\"components\":8"), "{text}");

    let expected = direct_association(
        Fidelity::Implementation,
        ScoringModel::TfIdf,
        &FilterPipeline::new(),
    );
    let (status, body) = server.get("/models/copy/associate");
    assert_eq!(status, 200);
    assert_eq!(body, expected.as_bytes());
}

#[test]
fn error_paths_speak_json() {
    let server = TestServer::start(1);
    let (status, body) = server.get("/models/ghost/associate");
    assert_eq!(status, 404);
    assert!(String::from_utf8(body).unwrap().contains("ghost"));

    let (status, body) = server.get("/models/scada/associate?fidelity=quantum");
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("quantum"));

    let (status, body) = server.post(
        "/models/scada/whatif",
        "{\"changes\":[{\"op\":\"warp\",\"component\":\"x\"}]}",
    );
    assert_eq!(status, 400);
    assert!(String::from_utf8(body).unwrap().contains("warp"));

    let (status, _) = server.post("/models?id=bad", "<not-graphml");
    assert_eq!(status, 400);
}

#[test]
fn metrics_report_traffic_and_cache_hits() {
    let server = TestServer::start(2);
    for _ in 0..3 {
        let (status, _) = server.get("/models/scada/associate");
        assert_eq!(status, 200);
    }
    let (status, body) = server.get("/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("requests_total{route=\"GET /models/:id/associate\"} 3"),
        "{text}"
    );
    assert!(
        text.contains("cache_hits_total{cache=\"responses\"} 2"),
        "{text}"
    );
    assert!(text.contains("cache_hit_ratio"), "{text}");
    assert!(text.contains("latency_us_bucket"), "{text}");
}

#[test]
fn snapshot_thawed_server_is_byte_identical_to_the_direct_pipeline() {
    let server = TestServer::start_from_snapshot(2);

    // Default knobs and the bm25/conceptual/topK variant: both engines
    // (the thawed TF-IDF one and its BM25 twin) must reproduce the
    // direct pipeline byte for byte.
    let expected = direct_association(
        Fidelity::Implementation,
        ScoringModel::TfIdf,
        &FilterPipeline::new(),
    );
    let (status, body) = server.get("/models/scada/associate");
    assert_eq!(status, 200);
    assert_eq!(body, expected.as_bytes());

    let filters = FilterPipeline::new().then(Filter::TopKPerFamily(2));
    let expected = direct_association(Fidelity::Conceptual, ScoringModel::Bm25, &filters);
    let (status, body) =
        server.get("/models/scada/associate?fidelity=conceptual&scoring=bm25&topK=2");
    assert_eq!(status, 200);
    assert_eq!(body, expected.as_bytes());

    // The warm start is visible in /metrics as a snapshot hit.
    let (status, body) = server.get("/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("snapshot_loads_total{result=\"hit\"} 1"),
        "{text}"
    );
    assert!(text.contains("index_load_us"), "{text}");
}

#[test]
fn table1_matches_the_dashboard_rendering() {
    let server = TestServer::start(1);
    let mut dashboard = cpssec_core::prelude::Dashboard::new(seed_corpus(), scada_model());
    dashboard.set_fidelity(Fidelity::Implementation);
    let expected = dashboard.table_text();
    let (status, body) = server.get("/table1");
    assert_eq!(status, 200);
    assert_eq!(body, expected.as_bytes());
}

#[test]
fn shutdown_drains_in_flight_work() {
    let server = TestServer::start(2);
    // Issue a request, flip the flag mid-life, then confirm the join in
    // Drop completes (the test would hang otherwise) after one last
    // response is served from a fresh connection before the listener
    // notices the flag.
    let (status, _) = server.get("/models/scada/associate");
    assert_eq!(status, 200);
    drop(server); // Drop sets the flag and joins the accept loop + pool.
}
