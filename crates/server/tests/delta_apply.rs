//! Live corpus growth over HTTP: a server booted from a mapped
//! `.cpsnap` image answers immediately, accepts `.cpsdelta` batches on
//! `POST /corpus/delta` without an index rebuild, rejects stale or
//! replayed parents with 409, and compacts (verified byte-identical to
//! a rebuild) every K-th apply.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cpssec_attackdb::seed::seed_corpus;
use cpssec_attackdb::synth;
use cpssec_search::{build_delta, ScoringModel, SearchEngine};
use cpssec_server::load::read_response;
use cpssec_server::{AppState, Server, COMPACTION_EVERY};

struct TestServer {
    addr: SocketAddr,
    state: Arc<AppState>,
    flag: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(state: Arc<AppState>) -> TestServer {
        let server = Server::bind("127.0.0.1:0", 2, Arc::clone(&state)).expect("bind");
        let addr = server.local_addr().expect("addr");
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        TestServer {
            addr,
            state,
            flag,
            handle: Some(handle),
        }
    }

    fn get(&self, target: &str) -> (u16, Vec<u8>) {
        let head = format!("GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n");
        self.send(head.as_bytes(), &[])
    }

    fn post_bytes(&self, target: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let head = format!(
            "POST {target} HTTP/1.1\r\nContent-Type: application/octet-stream\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        self.send(head.as_bytes(), body)
    }

    fn send(&self, head: &[u8], body: &[u8]) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        stream.write_all(head).expect("write head");
        stream.write_all(body).expect("write body");
        let response = read_response(&mut BufReader::new(stream)).expect("response");
        (response.status, response.body)
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn snapshot_bytes() -> Vec<u8> {
    let corpus = seed_corpus();
    let engine = SearchEngine::build(&corpus);
    cpssec_search::snapshot::encode(&corpus, &engine)
}

#[test]
fn mapped_boot_applies_deltas_and_compacts() {
    let bytes = snapshot_bytes();
    let parent = cpssec_search::snapshot::inspect(&bytes)
        .expect("inspect")
        .snapshot_id;
    let mapped: Arc<[u8]> = bytes.into();
    let state = AppState::from_snapshot_mapped(Arc::clone(&mapped)).expect("mapped boot");
    let server = TestServer::start(state);

    // The mapped boot recorded its fast path before the thaw finished.
    let (status, body) = server.get("/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf8");
    assert!(
        text.contains("snapshot_loads_total{result=\"hit\"} 1"),
        "{text}"
    );
    assert!(text.contains("snapshot_load_us "), "{text}");
    assert!(
        text.contains(&format!("snapshot_mapped_bytes {}", mapped.len())),
        "{text}"
    );

    // Corpus-backed endpoints block on the thaw, then answer normally.
    let (status, _) = server.get("/table1");
    assert_eq!(status, 200);
    assert_eq!(server.state.state_id(), parent);
    let before = server.state.corpus().stats().total();

    // The delta's mention token is absent from every generated corpus,
    // so a hit proves the query path sees the appended records.
    let miss = server
        .state
        .engine(ScoringModel::Bm25)
        .match_text(synth::DELTA_MENTION);
    assert!(miss.vulnerabilities.is_empty(), "mention matched pre-delta");

    let mut parent = parent;
    for serial in 0..COMPACTION_EVERY {
        let batch = synth::delta_batch(7, 50, serial);
        let delta = build_delta(parent, &batch);
        let (status, body) = server.post_bytes("/corpus/delta", &delta);
        let text = String::from_utf8(body).expect("utf8");
        assert_eq!(status, 200, "serial {serial}: {text}");
        assert!(text.contains("\"applied\":true"), "{text}");
        assert!(text.contains("\"records\":50"), "{text}");
        // Only the K-th apply compacts.
        let expect_compacted = serial == COMPACTION_EVERY - 1;
        assert!(
            text.contains(&format!("\"compacted\":{expect_compacted}")),
            "serial {serial}: {text}"
        );
        // Replaying the same delta must 409: the anchor advanced.
        let (replay, replay_body) = server.post_bytes("/corpus/delta", &delta);
        assert_eq!(replay, 409, "{}", String::from_utf8_lossy(&replay_body));
        parent = server.state.state_id();
    }

    // The grown corpus serves the appended records through both engines.
    let total = server.state.corpus().stats().total();
    assert_eq!(total, before + 50 * COMPACTION_EVERY as usize);
    for scoring in [ScoringModel::TfIdf, ScoringModel::Bm25] {
        let hits = server
            .state
            .engine(scoring)
            .match_text(synth::DELTA_MENTION);
        assert!(
            !hits.vulnerabilities.is_empty(),
            "{scoring:?}: delta records unreachable"
        );
    }
    let (status, body) = server.get("/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf8");
    assert!(
        text.contains(&format!("delta_applies_total {}", COMPACTION_EVERY)),
        "{text}"
    );
    assert!(text.contains("compactions_total 1"), "{text}");
    assert!(text.contains(&format!("corpus_records {total}")), "{text}");
}

#[test]
fn corpus_built_state_shares_the_delta_chain() {
    // A server that built the seed corpus from source anchors at the
    // same id the encoded snapshot carries, so the same delta applies.
    let state = AppState::new(seed_corpus());
    let bytes = snapshot_bytes();
    let snapshot_id = cpssec_search::snapshot::inspect(&bytes)
        .expect("inspect")
        .snapshot_id;
    assert_eq!(state.state_id(), snapshot_id);

    let batch = synth::delta_batch(11, 20, 0);
    let delta = build_delta(snapshot_id, &batch);
    let outcome = state.apply_corpus_delta(&delta).expect("apply");
    assert_eq!(outcome.records, 20);
    assert_eq!(outcome.state_id, state.state_id());
    assert!(!outcome.compacted);
}

#[test]
fn malformed_and_stale_bodies_are_rejected() {
    let server = TestServer::start(AppState::new(seed_corpus()));
    let (status, _) = server.post_bytes("/corpus/delta", &[]);
    assert_eq!(status, 400);
    let (status, _) = server.post_bytes("/corpus/delta", b"not a delta at all");
    assert_eq!(status, 400);
    // A delta against a bogus parent is a conflict, not a bad request.
    let batch = synth::delta_batch(3, 10, 0);
    let delta = build_delta(0xdead_beef, &batch);
    let (status, body) = server.post_bytes("/corpus/delta", &delta);
    assert_eq!(status, 409, "{}", String::from_utf8_lossy(&body));
    // GET on the endpoint is method-not-allowed, not 404.
    let (status, _) = server.get("/corpus/delta");
    assert_eq!(status, 405);
}
