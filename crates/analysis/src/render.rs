//! Report rendering: text tables, Graphviz DOT, JSON.

use std::fmt::Write as _;

use cpssec_model::SystemModel;

use crate::AssociationMap;

/// Renders an aligned text table with a header row and a separator.
///
/// # Examples
///
/// ```
/// use cpssec_analysis::render::text_table;
/// let table = text_table(
///     &["Attribute", "Vulnerabilities"],
///     &[vec!["Cisco ASA".into(), "3776".into()]],
/// );
/// assert!(table.contains("Cisco ASA"));
/// ```
///
/// # Panics
///
/// Panics if any row has a different number of cells than the header.
#[must_use]
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:<width$}", width = widths[i]);
        }
        // Trim the padding of the last column.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    render_row(&mut out, &header_cells);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

/// Renders the merged system-model + association view as Graphviz DOT —
/// the machine-readable regeneration of the paper's Figure 1.
///
/// Node labels carry the component name and, when an association map is
/// given, the `(patterns / weaknesses / vulnerabilities)` counts. Entry
/// points are drawn as diamonds, safety-critical components with a double
/// border.
#[must_use]
pub fn model_dot(model: &SystemModel, association: Option<&AssociationMap>) -> String {
    let _span = cpssec_obs::span!("render");
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", escape_dot(model.name()));
    out.push_str("  node [shape=box];\n");
    for (id, component) in model.components() {
        let mut label = escape_dot(component.name());
        if let Some(map) = association {
            if let Some(set) = map.matches(component.name()) {
                let (p, w, v) = set.counts();
                let _ = write!(label, "\\n{p} AP / {w} CWE / {v} CVE");
            }
        }
        let mut attrs = format!("label=\"{label}\"");
        if component.is_entry_point() {
            attrs.push_str(", shape=diamond");
        }
        if component.criticality() == cpssec_model::Criticality::SafetyCritical {
            attrs.push_str(", peripheries=2");
        }
        let _ = writeln!(out, "  {id} [{attrs}];");
    }
    for (_, channel) in model.channels() {
        let _ = writeln!(
            out,
            "  {} -- {} [label=\"{}\"];",
            channel.from(),
            channel.to(),
            channel.kind()
        );
    }
    out.push_str("}\n");
    out
}

fn escape_dot(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A minimal JSON value for report artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Serializes to compact JSON text.
    ///
    /// # Panics
    ///
    /// Panics if a number is not finite (JSON cannot represent NaN or
    /// infinities).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                assert!(n.is_finite(), "JSON numbers must be finite");
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::String(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::String(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_owned())
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Serializes the merged view (model + association + posture) as a JSON
/// artifact — the data feed a graphical dashboard like the paper's \[13\]
/// would consume.
#[must_use]
pub fn association_json(
    model: &SystemModel,
    association: &AssociationMap,
    posture: &crate::SystemPosture,
) -> Json {
    let _span = cpssec_obs::span!("render");
    let components = model
        .components()
        .map(|(_, component)| {
            let mut fields: Vec<(String, Json)> = vec![
                ("name".into(), component.name().into()),
                ("kind".into(), component.kind().as_str().into()),
                (
                    "criticality".into(),
                    component.criticality().as_str().into(),
                ),
                ("entryPoint".into(), component.is_entry_point().into()),
            ];
            if let Some(set) = association.matches(component.name()) {
                let (p, w, v) = set.counts();
                fields.push(("patterns".into(), p.into()));
                fields.push(("weaknesses".into(), w.into()));
                fields.push(("vulnerabilities".into(), v.into()));
            }
            if let Some(score) = posture.component(component.name()) {
                fields.push(("score".into(), score.score.into()));
            }
            Json::Object(fields)
        })
        .collect();
    let channels = model
        .channels()
        .map(|(_, channel)| {
            let from = model.component(channel.from()).expect("valid endpoint");
            let to = model.component(channel.to()).expect("valid endpoint");
            Json::Object(vec![
                ("from".into(), from.name().into()),
                ("to".into(), to.name().into()),
                ("kind".into(), channel.kind().as_str().into()),
            ])
        })
        .collect();
    Json::Object(vec![
        ("model".into(), model.name().into()),
        ("fidelity".into(), association.fidelity().as_str().into()),
        ("components".into(), Json::Array(components)),
        ("channels".into(), Json::Array(channels)),
        ("totalVectors".into(), association.total_vectors().into()),
        ("systemScore".into(), posture.total_score.into()),
    ])
}

/// Serializes a what-if comparison as a JSON artifact: before/after scores,
/// the structural diff, and per-component posture pairs. This is the
/// canonical rendering both the analysis service and the batch pipeline
/// produce, so their outputs can be compared byte for byte.
#[must_use]
pub fn whatif_json(
    model_name: &str,
    fidelity: cpssec_model::Fidelity,
    report: &crate::WhatIfReport,
) -> Json {
    let _span = cpssec_obs::span!("render");
    let posture_fields = |p: &crate::ComponentPosture| {
        Json::Object(vec![
            ("patterns".into(), p.patterns.into()),
            ("weaknesses".into(), p.weaknesses.into()),
            ("vulnerabilities".into(), p.vulnerabilities.into()),
            ("score".into(), p.score.into()),
        ])
    };
    let mut names: Vec<&str> = report
        .before
        .components
        .iter()
        .chain(report.after.components.iter())
        .map(|p| p.component.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    let components = names
        .into_iter()
        .map(|name| {
            Json::Object(vec![
                ("name".into(), name.into()),
                (
                    "before".into(),
                    report
                        .before
                        .component(name)
                        .map_or(Json::Null, &posture_fields),
                ),
                (
                    "after".into(),
                    report
                        .after
                        .component(name)
                        .map_or(Json::Null, &posture_fields),
                ),
            ])
        })
        .collect();
    let strings =
        |items: &[String]| Json::Array(items.iter().map(|s| Json::from(s.as_str())).collect());
    Json::Object(vec![
        ("model".into(), model_name.into()),
        ("fidelity".into(), fidelity.as_str().into()),
        ("scoreBefore".into(), report.before.total_score.into()),
        ("scoreAfter".into(), report.after.total_score.into()),
        ("scoreDelta".into(), report.score_delta.into()),
        ("improved".into(), report.is_improvement().into()),
        (
            "addedComponents".into(),
            strings(&report.diff.added_components),
        ),
        (
            "removedComponents".into(),
            strings(&report.diff.removed_components),
        ),
        (
            "changedComponents".into(),
            Json::Array(
                report
                    .diff
                    .changed_components
                    .iter()
                    .map(|c| Json::from(c.name.as_str()))
                    .collect(),
            ),
        ),
        ("components".into(), Json::Array(components)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;
    use cpssec_model::Fidelity;
    use cpssec_scada::model::scada_model;
    use cpssec_search::{FilterPipeline, SearchEngine};

    #[test]
    fn text_table_aligns_columns() {
        let table = text_table(
            &["a", "longer"],
            &[
                vec!["xxxxx".into(), "1".into()],
                vec!["y".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a      longer"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxx  1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let _ = text_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn dot_includes_nodes_edges_and_counts() {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let model = scada_model();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let dot = model_dot(&model, Some(&map));
        assert!(dot.starts_with("graph"));
        assert!(dot.contains("SIS platform"));
        assert!(dot.contains("CVE"));
        assert!(dot.contains("--"));
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_escapes_quotes_in_names() {
        let model = cpssec_model::SystemModelBuilder::new("m \"quoted\"")
            .component("node \"x\"", cpssec_model::ComponentKind::Other)
            .build()
            .unwrap();
        let dot = model_dot(&model, None);
        assert!(dot.contains("graph \"m \\\"quoted\\\"\""));
        assert!(dot.contains("label=\"node \\\"x\\\"\""));
    }

    #[test]
    fn dot_without_association_has_plain_labels() {
        let dot = model_dot(&scada_model(), None);
        assert!(!dot.contains("CVE"));
        assert!(dot.contains("Programming WS"));
    }

    #[test]
    fn json_serializes_nested_structures() {
        let value = Json::Object(vec![
            ("name".into(), "SIS \"platform\"".into()),
            ("count".into(), 7usize.into()),
            ("score".into(), 1.5.into()),
            ("ok".into(), true.into()),
            ("items".into(), Json::Array(vec![Json::Null, 2usize.into()])),
        ]);
        assert_eq!(
            value.to_text(),
            r#"{"name":"SIS \"platform\"","count":7,"score":1.5,"ok":true,"items":[null,2]}"#
        );
    }

    #[test]
    fn json_escapes_control_characters() {
        let value = Json::String("a\nb\tc\u{1}".into());
        assert_eq!(value.to_text(), "\"a\\nb\\tc\\u0001\"");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn json_rejects_nan() {
        let _ = Json::Number(f64::NAN).to_text();
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Number(42.0).to_text(), "42");
        assert_eq!(Json::Number(0.5).to_text(), "0.5");
    }

    #[test]
    fn whatif_json_records_the_comparison() {
        use cpssec_model::{Attribute, AttributeKind};
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let model = scada_model();
        let report = crate::whatif::evaluate(
            &model,
            &[crate::ModelChange::AddAttribute {
                component: cpssec_scada::model::names::TEMP_SENSOR.into(),
                attribute: Attribute::new(AttributeKind::OperatingSystem, "Windows 7")
                    .at_fidelity(Fidelity::Implementation),
            }],
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        )
        .unwrap();
        let json = whatif_json(model.name(), Fidelity::Implementation, &report);
        let text = json.to_text();
        assert!(text.contains("\"improved\":false"));
        assert!(text.contains("\"changedComponents\":[\"Temperature sensor\"]"));
        assert!(text.contains("\"scoreDelta\""));
        cpssec_attackdb::json::parse(&text).expect("artifact parses");
    }

    #[test]
    fn association_json_covers_every_element() {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let model = scada_model();
        let map = AssociationMap::build(
            &model,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        let posture = crate::SystemPosture::compute(&model, &corpus, &map);
        let json = association_json(&model, &map, &posture);
        let text = json.to_text();
        assert!(text.contains("\"SIS platform\""));
        assert!(text.contains("\"fieldbus\""));
        assert!(text.contains("\"systemScore\""));
        assert!(text.contains("\"entryPoint\":true"));
        // The artifact is valid JSON by our own parser's standards too.
        cpssec_attackdb::json::parse(&text).expect("artifact parses");
    }
}
