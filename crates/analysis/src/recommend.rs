//! Mitigation recommendations from the association.
//!
//! The paper's goal is "systems engineers … aware of possible cybersecurity
//! violations without necessarily being security analysts themselves"; the
//! recommendation view turns a component's matched weaknesses into the
//! concrete mitigations the corpus records for them, ranked by match
//! relevance.

use cpssec_attackdb::{Corpus, CweId};

use crate::AssociationMap;

/// One recommended mitigation for a component.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The weakness motivating the mitigation.
    pub weakness: CweId,
    /// The weakness name (for display).
    pub weakness_name: String,
    /// The mitigation text.
    pub mitigation: String,
    /// Relevance: the weakness hit's score on this component.
    pub relevance: f64,
}

/// Ranks mitigations for one component: every mitigation recorded on every
/// matched weakness, best-matching weakness first, deduplicated by text
/// (a mitigation shared by two weaknesses appears once, at its highest
/// relevance).
///
/// Returns an empty list for unknown components or components whose
/// matched weaknesses carry no mitigations.
///
/// # Examples
///
/// ```
/// use cpssec_analysis::{recommend::recommendations_for, AssociationMap};
/// use cpssec_attackdb::seed::seed_corpus;
/// use cpssec_model::Fidelity;
/// use cpssec_search::{FilterPipeline, SearchEngine};
///
/// let corpus = seed_corpus();
/// let engine = SearchEngine::build(&corpus);
/// let model = cpssec_scada::model::scada_model();
/// let map = AssociationMap::build(
///     &model, &engine, &corpus, Fidelity::Implementation, &FilterPipeline::new(),
/// );
/// let recs = recommendations_for(&map, &corpus, "BPCS platform", 10);
/// assert!(!recs.is_empty());
/// ```
#[must_use]
pub fn recommendations_for(
    association: &AssociationMap,
    corpus: &Corpus,
    component: &str,
    limit: usize,
) -> Vec<Recommendation> {
    let Some(matches) = association.matches(component) else {
        return Vec::new();
    };
    let mut recommendations: Vec<Recommendation> = Vec::new();
    for hit in &matches.weaknesses {
        let Some(id) = hit.id.as_weakness() else {
            continue;
        };
        let Some(weakness) = corpus.weakness(id) else {
            continue;
        };
        for mitigation in weakness.mitigations() {
            match recommendations
                .iter_mut()
                .find(|r| &r.mitigation == mitigation)
            {
                Some(existing) => {
                    if hit.score > existing.relevance {
                        existing.relevance = hit.score;
                        existing.weakness = id;
                        existing.weakness_name = weakness.name().to_owned();
                    }
                }
                None => recommendations.push(Recommendation {
                    weakness: id,
                    weakness_name: weakness.name().to_owned(),
                    mitigation: mitigation.clone(),
                    relevance: hit.score,
                }),
            }
        }
    }
    recommendations.sort_by(|a, b| {
        b.relevance
            .partial_cmp(&a.relevance)
            .expect("scores are finite")
            .then_with(|| a.weakness.cmp(&b.weakness))
            .then_with(|| a.mitigation.cmp(&b.mitigation))
    });
    recommendations.truncate(limit);
    recommendations
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;
    use cpssec_model::Fidelity;
    use cpssec_scada::model::names;
    use cpssec_search::{FilterPipeline, SearchEngine};

    fn setup() -> (Corpus, AssociationMap) {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        let map = AssociationMap::build(
            &cpssec_scada::model::scada_model(),
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        );
        (corpus, map)
    }

    #[test]
    fn bpcs_gets_command_injection_mitigations() {
        let (corpus, map) = setup();
        let recs = recommendations_for(&map, &corpus, names::BPCS, 20);
        assert!(
            recs.iter()
                .any(|r| r.weakness == CweId::new(78) || r.mitigation.contains("shell")),
            "{recs:#?}"
        );
    }

    #[test]
    fn recommendations_are_ranked_and_capped() {
        let (corpus, map) = setup();
        let recs = recommendations_for(&map, &corpus, names::BPCS, 3);
        assert!(recs.len() <= 3);
        assert!(recs.windows(2).all(|w| w[0].relevance >= w[1].relevance));
    }

    #[test]
    fn mitigation_texts_are_deduplicated() {
        let (corpus, map) = setup();
        let recs = recommendations_for(&map, &corpus, names::BPCS, 100);
        let mut texts: Vec<&str> = recs.iter().map(|r| r.mitigation.as_str()).collect();
        let before = texts.len();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), before);
    }

    #[test]
    fn unknown_component_yields_nothing() {
        let (corpus, map) = setup();
        assert!(recommendations_for(&map, &corpus, "ghost", 10).is_empty());
    }

    #[test]
    fn component_without_weakness_matches_yields_nothing() {
        let (corpus, map) = setup();
        let recs = recommendations_for(&map, &corpus, names::COOLING, 10);
        assert!(recs.is_empty(), "{recs:?}");
    }
}
