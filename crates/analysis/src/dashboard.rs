//! The interactive dashboard session.
//!
//! Owns a corpus snapshot, its search engine, the current model, the
//! selected fidelity and filter pipeline, and a lazily recomputed
//! association — so that "the systems engineer or security analyst
//! \[can\] change the model on the fly and immediately see the new
//! results" (§3).

use cpssec_attackdb::Corpus;
use cpssec_model::{Attribute, Fidelity, ModelError, SystemModel};
use cpssec_search::{FilterPipeline, SearchEngine};

use crate::whatif::{self, ModelChange, WhatIfReport};
use crate::{associate, render, AssociationMap, AttributeRow, SystemPosture};

/// One analyst session over a model and a corpus.
#[derive(Debug)]
pub struct Dashboard {
    corpus: Corpus,
    engine: SearchEngine,
    model: SystemModel,
    fidelity: Fidelity,
    filters: FilterPipeline,
    association: Option<AssociationMap>,
}

impl Dashboard {
    /// Opens a session: indexes the corpus and loads the model. The initial
    /// view is at [`Fidelity::Implementation`] with no filters.
    #[must_use]
    pub fn new(corpus: Corpus, model: SystemModel) -> Self {
        let engine = SearchEngine::build(&corpus);
        Dashboard {
            corpus,
            engine,
            model,
            fidelity: Fidelity::Implementation,
            filters: FilterPipeline::new(),
            association: None,
        }
    }

    /// The current model.
    #[must_use]
    pub fn model(&self) -> &SystemModel {
        &self.model
    }

    /// The corpus snapshot.
    #[must_use]
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The current fidelity.
    #[must_use]
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Switches the fidelity view; the association recomputes on next read.
    pub fn set_fidelity(&mut self, fidelity: Fidelity) {
        if self.fidelity != fidelity {
            self.fidelity = fidelity;
            self.association = None;
        }
    }

    /// Replaces the filter pipeline; the association recomputes on next read.
    pub fn set_filters(&mut self, filters: FilterPipeline) {
        self.filters = filters;
        self.association = None;
    }

    /// Applies model edits in place; the association recomputes on next
    /// read.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownComponent`] when an edit names a missing
    /// component; the model is left unchanged.
    pub fn edit_model(&mut self, changes: &[ModelChange]) -> Result<(), ModelError> {
        self.model = whatif::apply_changes(&self.model, changes)?;
        self.association = None;
        Ok(())
    }

    /// Adds one attribute to a component (the dashboard's quickest edit).
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownComponent`] when the component does not exist.
    pub fn add_attribute(
        &mut self,
        component: &str,
        attribute: Attribute,
    ) -> Result<(), ModelError> {
        self.edit_model(&[ModelChange::AddAttribute {
            component: component.to_owned(),
            attribute,
        }])
    }

    /// The current association (recomputed if a knob changed since the
    /// last read).
    pub fn association(&mut self) -> &AssociationMap {
        if self.association.is_none() {
            self.association = Some(AssociationMap::build(
                &self.model,
                &self.engine,
                &self.corpus,
                self.fidelity,
                &self.filters,
            ));
        }
        self.association.as_ref().expect("just computed")
    }

    /// Table 1-style rows for the current view.
    #[must_use]
    pub fn attribute_rows(&self) -> Vec<AttributeRow> {
        associate::attribute_rows(
            &self.model,
            &self.engine,
            &self.corpus,
            self.fidelity,
            &self.filters,
        )
    }

    /// The current system posture.
    pub fn posture(&mut self) -> SystemPosture {
        // Split borrows: compute the association first.
        self.association();
        let map = self.association.as_ref().expect("just computed");
        SystemPosture::compute(&self.model, &self.corpus, map)
    }

    /// Evaluates edits without applying them.
    ///
    /// # Errors
    ///
    /// Propagates [`whatif::evaluate`] errors.
    pub fn what_if(&self, changes: &[ModelChange]) -> Result<WhatIfReport, ModelError> {
        whatif::evaluate(
            &self.model,
            changes,
            &self.engine,
            &self.corpus,
            self.fidelity,
            &self.filters,
        )
    }

    /// The merged model + association view as Graphviz DOT (Figure 1).
    pub fn figure_dot(&mut self) -> String {
        self.association();
        render::model_dot(&self.model, self.association.as_ref())
    }

    /// The Table 1 text rendering for the current view.
    #[must_use]
    pub fn table_text(&self) -> String {
        let rows = self.attribute_rows();
        let cells: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.attribute.clone(),
                    r.patterns.to_string(),
                    r.weaknesses.to_string(),
                    r.vulnerabilities.to_string(),
                ]
            })
            .collect();
        render::text_table(
            &[
                "Attribute",
                "Attack Patterns",
                "Weaknesses",
                "Vulnerabilities",
            ],
            &cells,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;
    use cpssec_model::AttributeKind;
    use cpssec_scada::model::{names, scada_model};
    use cpssec_search::Filter;

    fn dashboard() -> Dashboard {
        Dashboard::new(seed_corpus(), scada_model())
    }

    #[test]
    fn association_is_cached_until_a_knob_changes() {
        let mut d = dashboard();
        let total1 = d.association().total_vectors();
        let total2 = d.association().total_vectors();
        assert_eq!(total1, total2);
        d.set_fidelity(Fidelity::Conceptual);
        let total3 = d.association().total_vectors();
        assert!(total3 < total1);
    }

    #[test]
    fn setting_same_fidelity_keeps_cache() {
        let mut d = dashboard();
        d.association();
        d.set_fidelity(Fidelity::Implementation);
        // No panic, association still present (white-box: recompute is fine
        // too, but the view must be identical).
        assert!(d.association().total_vectors() > 0);
    }

    #[test]
    fn edits_immediately_change_the_results() {
        let mut d = dashboard();
        let before = d.association().matches(names::TEMP_SENSOR).unwrap().total();
        d.add_attribute(
            names::TEMP_SENSOR,
            Attribute::new(AttributeKind::OperatingSystem, "Windows 7"),
        )
        .unwrap();
        let after = d.association().matches(names::TEMP_SENSOR).unwrap().total();
        assert!(after > before, "{after} vs {before}");
    }

    #[test]
    fn filters_change_the_view() {
        let mut d = dashboard();
        let unfiltered = d.association().total_vectors();
        d.set_filters(FilterPipeline::new().then(Filter::TopKPerFamily(1)));
        let filtered = d.association().total_vectors();
        assert!(filtered < unfiltered);
    }

    #[test]
    fn table_text_contains_table1_attributes() {
        let d = dashboard();
        let text = d.table_text();
        assert!(text.contains("Cisco ASA"));
        assert!(text.contains("NI cRIO 9063"));
        assert!(text.contains("Vulnerabilities"));
    }

    #[test]
    fn what_if_does_not_mutate_the_session_model() {
        let d = dashboard();
        let report = d
            .what_if(&[ModelChange::RemoveAttribute {
                component: names::WORKSTATION.into(),
                key: "software".into(),
                value: "Labview".into(),
            }])
            .unwrap();
        assert!(report.score_delta <= 0.0);
        // The session model still has LabVIEW.
        assert!(d
            .model()
            .component_by_name(names::WORKSTATION)
            .unwrap()
            .attributes()
            .iter()
            .any(|a| a.value() == "Labview"));
    }

    #[test]
    fn figure_dot_reflects_current_association() {
        let mut d = dashboard();
        let dot = d.figure_dot();
        assert!(dot.contains("CVE"));
    }

    #[test]
    fn unknown_component_edit_is_rejected_and_state_preserved() {
        let mut d = dashboard();
        let before = d.association().total_vectors();
        let err = d
            .add_attribute("ghost", Attribute::new(AttributeKind::Vendor, "x"))
            .unwrap_err();
        assert_eq!(err, ModelError::UnknownComponent("ghost".into()));
        assert_eq!(d.association().total_vectors(), before);
    }

    #[test]
    fn posture_uses_current_view() {
        let mut d = dashboard();
        let concrete = d.posture().total_score;
        d.set_fidelity(Fidelity::Conceptual);
        let abstract_ = d.posture().total_score;
        assert!(abstract_ < concrete);
    }
}
