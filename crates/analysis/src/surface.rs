//! Attack surface and attack path analysis over the model topology.
//!
//! "Security modeling practice has moved from a perspective of hardening a
//! list of assets to representing things as graphs, which is congruent
//! with how attackers operate in reality" (§2). This module walks the
//! architectural graph the way an attacker would: from entry points,
//! across channels, toward safety-critical components.

use cpssec_model::{ComponentId, Criticality, SystemModel};

/// One path an attacker could take from an entry point to a critical
/// component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackPath {
    /// Component names along the path, entry first.
    pub components: Vec<String>,
    /// Number of channels traversed.
    pub hops: usize,
}

/// The attack surface of a model.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSurface {
    /// Names of the entry-point components.
    pub entry_points: Vec<String>,
    /// Names of critical components reachable from any entry point.
    pub reachable_critical: Vec<String>,
    /// Names of critical components no entry point can reach.
    pub unreachable_critical: Vec<String>,
    /// All simple attack paths up to the hop budget, shortest first.
    pub paths: Vec<AttackPath>,
    /// Exposure score: for every reachable critical component,
    /// `criticality weight / shortest distance`, summed. Higher means more
    /// exposed. Zero when nothing critical is reachable.
    pub exposure: f64,
}

/// Computes the attack surface toward components at or above
/// `target_criticality`, enumerating simple paths of at most `max_hops`
/// channels.
///
/// # Examples
///
/// ```
/// use cpssec_analysis::surface::attack_surface;
/// use cpssec_model::Criticality;
///
/// let model = cpssec_scada::model::scada_model();
/// let surface = attack_surface(&model, Criticality::SafetyCritical, 6);
/// assert!(!surface.paths.is_empty());
/// assert!(surface.exposure > 0.0);
/// ```
#[must_use]
pub fn attack_surface(
    model: &SystemModel,
    target_criticality: Criticality,
    max_hops: usize,
) -> AttackSurface {
    let entries = model.entry_points();
    let targets = model.components_at_criticality(target_criticality);
    let name = |id: ComponentId| {
        model
            .component(id)
            .expect("id from model")
            .name()
            .to_owned()
    };

    let mut paths = Vec::new();
    let mut reachable: Vec<ComponentId> = Vec::new();
    let mut exposure = 0.0;
    for &target in &targets {
        let mut best: Option<usize> = None;
        for &entry in &entries {
            if entry == target {
                continue;
            }
            for path in model.simple_paths(entry, target, max_hops) {
                let hops = path.len() - 1;
                best = Some(best.map_or(hops, |b: usize| b.min(hops)));
                paths.push(AttackPath {
                    components: path.iter().map(|&id| name(id)).collect(),
                    hops,
                });
            }
        }
        if let Some(shortest) = best {
            reachable.push(target);
            let weight = model
                .component(target)
                .expect("id from model")
                .criticality()
                .weight();
            exposure += f64::from(weight) / shortest.max(1) as f64;
        }
    }
    paths.sort_by(|a, b| {
        a.hops
            .cmp(&b.hops)
            .then_with(|| a.components.cmp(&b.components))
    });

    let unreachable_critical = targets
        .iter()
        .filter(|t| !reachable.contains(t))
        .map(|&id| name(id))
        .collect();
    AttackSurface {
        entry_points: entries.iter().map(|&id| name(id)).collect(),
        reachable_critical: reachable.iter().map(|&id| name(id)).collect(),
        unreachable_critical,
        paths,
        exposure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_model::{ChannelKind, ComponentKind, SystemModelBuilder};
    use cpssec_scada::model::{names, scada_model};

    #[test]
    fn scada_model_exposes_its_safety_critical_core() {
        let surface = attack_surface(&scada_model(), Criticality::SafetyCritical, 6);
        assert_eq!(surface.entry_points, vec![names::CORPORATE.to_owned()]);
        assert!(surface.reachable_critical.contains(&names::SIS.to_owned()));
        assert!(surface
            .reachable_critical
            .contains(&names::CENTRIFUGE.to_owned()));
        assert!(surface.unreachable_critical.is_empty());
        // Every path starts at the entry point.
        assert!(surface
            .paths
            .iter()
            .all(|p| p.components[0] == names::CORPORATE));
    }

    #[test]
    fn paths_are_sorted_shortest_first() {
        let surface = attack_surface(&scada_model(), Criticality::SafetyCritical, 7);
        assert!(surface.paths.windows(2).all(|w| w[0].hops <= w[1].hops));
    }

    #[test]
    fn hop_budget_limits_paths() {
        let narrow = attack_surface(&scada_model(), Criticality::SafetyCritical, 3);
        let wide = attack_surface(&scada_model(), Criticality::SafetyCritical, 7);
        assert!(narrow.paths.len() < wide.paths.len());
    }

    #[test]
    fn isolated_critical_component_is_reported_unreachable() {
        let model = SystemModelBuilder::new("m")
            .component_with("internet", ComponentKind::Network, |c| {
                c.with_entry_point(true)
            })
            .component("ws", ComponentKind::Workstation)
            .component_with("plc", ComponentKind::Controller, |c| {
                c.with_criticality(Criticality::SafetyCritical)
            })
            .channel("internet", "ws", ChannelKind::Ethernet)
            .build()
            .unwrap();
        let surface = attack_surface(&model, Criticality::SafetyCritical, 5);
        assert_eq!(surface.unreachable_critical, vec!["plc".to_owned()]);
        assert_eq!(surface.exposure, 0.0);
        assert!(surface.paths.is_empty());
    }

    #[test]
    fn exposure_grows_when_a_shortcut_is_added() {
        let base = scada_model();
        let base_surface = attack_surface(&base, Criticality::SafetyCritical, 6);
        // A maintenance laptop bridging corporate directly to the BPCS.
        let mut shortcut = base.clone();
        let corp = shortcut.component_id(names::CORPORATE).unwrap();
        let bpcs = shortcut.component_id(names::BPCS).unwrap();
        shortcut
            .add_channel(corp, bpcs, ChannelKind::Ethernet)
            .unwrap();
        let shortcut_surface = attack_surface(&shortcut, Criticality::SafetyCritical, 6);
        assert!(shortcut_surface.exposure > base_surface.exposure);
        assert!(shortcut_surface.paths.len() > base_surface.paths.len());
    }

    #[test]
    fn no_entry_points_means_empty_surface() {
        let model = SystemModelBuilder::new("m")
            .component_with("plc", ComponentKind::Controller, |c| {
                c.with_criticality(Criticality::SafetyCritical)
            })
            .build()
            .unwrap();
        let surface = attack_surface(&model, Criticality::SafetyCritical, 5);
        assert!(surface.entry_points.is_empty());
        assert_eq!(surface.exposure, 0.0);
        assert_eq!(surface.unreachable_critical, vec!["plc".to_owned()]);
    }
}
