//! STPA-Sec-flavoured loss/hazard/unsafe-control-action structure.
//!
//! The paper closes on the observation that "no *science* of security
//! exists yet to map attack vectors to physical consequences". This module
//! supplies the scaffolding such a mapping needs: losses, hazards linked
//! to losses, and unsafe control actions linked to hazards *and* to the
//! weaknesses (CWE) whose exploitation can cause them. The centrifuge
//! instance ([`centrifuge_analysis`]) also names, for each hazard, the
//! simulation hazard monitor that detects it — which is what lets
//! [`crate::consequence`] tie a simulated excursion back to losses.

use core::fmt;

/// A stakeholder loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loss {
    /// Identifier, e.g. `L-1`.
    pub id: String,
    /// What is lost.
    pub description: String,
}

/// A system-level hazard: a state that can lead to losses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// Identifier, e.g. `H-1`.
    pub id: String,
    /// The hazardous state.
    pub description: String,
    /// Losses this hazard can lead to (by id).
    pub losses: Vec<String>,
    /// The simulation hazard monitor that detects this state, if the
    /// simulated plant models it.
    pub monitor: Option<String>,
}

/// How a control action is unsafe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UcaKind {
    /// Providing the action causes the hazard.
    Provided,
    /// Not providing the action causes the hazard.
    NotProvided,
    /// Providing it too early/late causes the hazard.
    WrongTiming,
    /// Applying it too long or stopping too soon causes the hazard.
    WrongDuration,
}

impl fmt::Display for UcaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            UcaKind::Provided => "provided",
            UcaKind::NotProvided => "not provided",
            UcaKind::WrongTiming => "wrong timing",
            UcaKind::WrongDuration => "wrong duration",
        };
        f.write_str(name)
    }
}

/// An unsafe control action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeControlAction {
    /// Identifier, e.g. `UCA-1`.
    pub id: String,
    /// The controller issuing (or omitting) the action.
    pub controller: String,
    /// The control action.
    pub action: String,
    /// How it is unsafe.
    pub kind: UcaKind,
    /// Hazards it can cause (by id).
    pub hazards: Vec<String>,
    /// Weakness identifiers (e.g. `CWE-78`) whose exploitation can force
    /// this unsafe control action — the attack-vector side of the mapping.
    pub weaknesses: Vec<String>,
}

/// The complete loss/hazard/UCA structure of one system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlStructureAnalysis {
    /// Losses, in id order.
    pub losses: Vec<Loss>,
    /// Hazards, in id order.
    pub hazards: Vec<Hazard>,
    /// Unsafe control actions, in id order.
    pub ucas: Vec<UnsafeControlAction>,
}

impl ControlStructureAnalysis {
    /// Looks up a hazard by id.
    #[must_use]
    pub fn hazard(&self, id: &str) -> Option<&Hazard> {
        self.hazards.iter().find(|h| h.id == id)
    }

    /// Looks up a loss by id.
    #[must_use]
    pub fn loss(&self, id: &str) -> Option<&Loss> {
        self.losses.iter().find(|l| l.id == id)
    }

    /// Hazards detected by a given simulation monitor name.
    #[must_use]
    pub fn hazards_for_monitor(&self, monitor: &str) -> Vec<&Hazard> {
        self.hazards
            .iter()
            .filter(|h| h.monitor.as_deref() == Some(monitor))
            .collect()
    }

    /// The losses a set of hazard ids can lead to, deduplicated, in id
    /// order.
    #[must_use]
    pub fn losses_for_hazards(&self, hazard_ids: &[String]) -> Vec<&Loss> {
        let mut loss_ids: Vec<&str> = self
            .hazards
            .iter()
            .filter(|h| hazard_ids.contains(&h.id))
            .flat_map(|h| h.losses.iter().map(String::as_str))
            .collect();
        loss_ids.sort_unstable();
        loss_ids.dedup();
        loss_ids
            .into_iter()
            .filter_map(|id| self.loss(id))
            .collect()
    }

    /// Unsafe control actions that a given weakness can force.
    #[must_use]
    pub fn ucas_for_weakness(&self, weakness: &str) -> Vec<&UnsafeControlAction> {
        self.ucas
            .iter()
            .filter(|u| u.weaknesses.iter().any(|w| w == weakness))
            .collect()
    }

    /// Checks referential integrity: every hazard id referenced by a UCA
    /// exists, and every loss id referenced by a hazard exists. Returns the
    /// dangling ids.
    #[must_use]
    pub fn dangling_links(&self) -> Vec<String> {
        let mut dangling = Vec::new();
        for hazard in &self.hazards {
            for loss in &hazard.losses {
                if self.loss(loss).is_none() {
                    dangling.push(loss.clone());
                }
            }
        }
        for uca in &self.ucas {
            for hazard in &uca.hazards {
                if self.hazard(hazard).is_none() {
                    dangling.push(hazard.clone());
                }
            }
        }
        dangling
    }
}

/// The STPA-Sec structure of the particle separation centrifuge.
#[must_use]
pub fn centrifuge_analysis() -> ControlStructureAnalysis {
    let losses = vec![
        Loss {
            id: "L-1".into(),
            description: "loss of the manufactured product (batch not useful)".into(),
        },
        Loss {
            id: "L-2".into(),
            description: "damage to or destruction of the centrifuge".into(),
        },
        Loss {
            id: "L-3".into(),
            description: "injury to personnel from explosion or fire".into(),
        },
    ];
    let hazards = vec![
        Hazard {
            id: "H-1".into(),
            description: "solution temperature exceeds the stability threshold".into(),
            losses: vec!["L-1".into(), "L-2".into(), "L-3".into()],
            monitor: Some("explosion".into()),
        },
        Hazard {
            id: "H-2".into(),
            description: "solution temperature above the separation window".into(),
            losses: vec!["L-1".into()],
            monitor: Some("overtemperature".into()),
        },
        Hazard {
            id: "H-3".into(),
            description: "rotor speed exceeds the mechanical limit".into(),
            losses: vec!["L-1".into(), "L-2".into()],
            monitor: Some("rotor-overspeed".into()),
        },
        Hazard {
            id: "H-4".into(),
            description: "rotor speed deviates beyond ±20 rpm of the set point".into(),
            losses: vec!["L-1".into()],
            monitor: None,
        },
        Hazard {
            id: "H-5".into(),
            description: "solution temperature below the separation window".into(),
            losses: vec!["L-1".into()],
            monitor: None,
        },
    ];
    let ucas = vec![
        UnsafeControlAction {
            id: "UCA-1".into(),
            controller: "BPCS platform".into(),
            action: "centrifuge speed set point write".into(),
            kind: UcaKind::Provided,
            hazards: vec!["H-3".into(), "H-4".into()],
            weaknesses: vec!["CWE-78".into(), "CWE-20".into()],
        },
        UnsafeControlAction {
            id: "UCA-2".into(),
            controller: "BPCS platform".into(),
            action: "chiller cooling command".into(),
            kind: UcaKind::NotProvided,
            hazards: vec!["H-1".into(), "H-2".into()],
            weaknesses: vec!["CWE-400".into(), "CWE-311".into(), "CWE-20".into()],
        },
        UnsafeControlAction {
            id: "UCA-3".into(),
            controller: "BPCS platform".into(),
            action: "chiller cooling command".into(),
            kind: UcaKind::Provided,
            hazards: vec!["H-5".into()],
            weaknesses: vec!["CWE-20".into()],
        },
        UnsafeControlAction {
            id: "UCA-4".into(),
            controller: "SIS platform".into(),
            action: "emergency stop".into(),
            kind: UcaKind::NotProvided,
            hazards: vec!["H-1".into(), "H-3".into()],
            weaknesses: vec!["CWE-306".into(), "CWE-78".into(), "CWE-311".into()],
        },
        UnsafeControlAction {
            id: "UCA-5".into(),
            controller: "Programming WS".into(),
            action: "operator set point entry".into(),
            kind: UcaKind::Provided,
            hazards: vec!["H-4".into()],
            weaknesses: vec!["CWE-20".into(), "CWE-287".into()],
        },
    ];
    ControlStructureAnalysis {
        losses,
        hazards,
        ucas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centrifuge_analysis_has_no_dangling_links() {
        assert!(centrifuge_analysis().dangling_links().is_empty());
    }

    #[test]
    fn monitors_map_to_hazards() {
        let a = centrifuge_analysis();
        let explosion = a.hazards_for_monitor("explosion");
        assert_eq!(explosion.len(), 1);
        assert_eq!(explosion[0].id, "H-1");
        assert!(a.hazards_for_monitor("unknown-monitor").is_empty());
    }

    #[test]
    fn losses_for_hazards_deduplicates() {
        let a = centrifuge_analysis();
        let losses = a.losses_for_hazards(&["H-1".into(), "H-3".into()]);
        let ids: Vec<&str> = losses.iter().map(|l| l.id.as_str()).collect();
        assert_eq!(ids, ["L-1", "L-2", "L-3"]);
    }

    #[test]
    fn cwe78_forces_speed_and_estop_ucas() {
        let a = centrifuge_analysis();
        let ucas = a.ucas_for_weakness("CWE-78");
        let ids: Vec<&str> = ucas.iter().map(|u| u.id.as_str()).collect();
        assert!(ids.contains(&"UCA-1"));
        assert!(ids.contains(&"UCA-4"));
    }

    #[test]
    fn dangling_links_are_detected() {
        let mut a = centrifuge_analysis();
        a.ucas[0].hazards.push("H-99".into());
        a.hazards[0].losses.push("L-99".into());
        let dangling = a.dangling_links();
        assert!(dangling.contains(&"H-99".to_owned()));
        assert!(dangling.contains(&"L-99".to_owned()));
    }

    #[test]
    fn uca_kind_display() {
        assert_eq!(UcaKind::NotProvided.to_string(), "not provided");
        assert_eq!(UcaKind::WrongTiming.to_string(), "wrong timing");
    }

    #[test]
    fn uca_controllers_match_model_component_names() {
        let model = cpssec_scada::model::scada_model();
        for uca in centrifuge_analysis().ucas {
            assert!(
                model.component_by_name(&uca.controller).is_some(),
                "UCA controller `{}` not in model",
                uca.controller
            );
        }
    }
}
