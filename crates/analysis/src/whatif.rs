//! What-if architecture comparison.
//!
//! "In the dashboard we allow for the systems engineer or security analyst
//! to change the model on the fly and immediately see the new results. The
//! dashboard acts as a what-if analysis, where different architectures are
//! evaluated by experts iteratively to lead to an acceptably secured
//! system" (§3).

use cpssec_attackdb::Corpus;
use cpssec_model::{Attribute, Fidelity, ModelDiff, ModelError, SystemModel};
use cpssec_search::{FilterPipeline, SearchEngine};

use crate::{AssociationMap, SystemPosture};

/// One model edit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelChange {
    /// Remove every value of `key` on `component`, then add `with`.
    ReplaceAttribute {
        /// Component name.
        component: String,
        /// Attribute key whose values are removed.
        key: String,
        /// The replacement attribute.
        with: Attribute,
    },
    /// Add one attribute to `component`.
    AddAttribute {
        /// Component name.
        component: String,
        /// The attribute to add.
        attribute: Attribute,
    },
    /// Remove one `(key, value)` attribute from `component`.
    RemoveAttribute {
        /// Component name.
        component: String,
        /// Attribute key.
        key: String,
        /// Attribute value.
        value: String,
    },
}

/// Applies edits to a copy of `model`.
///
/// # Errors
///
/// [`ModelError::UnknownComponent`] when an edit names a component that
/// does not exist.
pub fn apply_changes(
    model: &SystemModel,
    changes: &[ModelChange],
) -> Result<SystemModel, ModelError> {
    let mut edited = model.clone();
    for change in changes {
        match change {
            ModelChange::ReplaceAttribute {
                component,
                key,
                with,
            } => {
                let comp = edited
                    .component_by_name_mut(component)
                    .ok_or_else(|| ModelError::UnknownComponent(component.clone()))?;
                let values: Vec<String> =
                    comp.attributes().get_all(key).map(str::to_owned).collect();
                for value in values {
                    comp.attributes_mut().remove(key, &value);
                }
                comp.attributes_mut().insert(with.clone());
            }
            ModelChange::AddAttribute {
                component,
                attribute,
            } => {
                edited
                    .component_by_name_mut(component)
                    .ok_or_else(|| ModelError::UnknownComponent(component.clone()))?
                    .attributes_mut()
                    .insert(attribute.clone());
            }
            ModelChange::RemoveAttribute {
                component,
                key,
                value,
            } => {
                edited
                    .component_by_name_mut(component)
                    .ok_or_else(|| ModelError::UnknownComponent(component.clone()))?
                    .attributes_mut()
                    .remove(key, value);
            }
        }
    }
    Ok(edited)
}

/// The result of comparing a baseline architecture against an edited one.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfReport {
    /// Structural difference, baseline → edited.
    pub diff: ModelDiff,
    /// Posture of the baseline.
    pub before: SystemPosture,
    /// Posture of the edited architecture.
    pub after: SystemPosture,
    /// Change in total score (negative = the edit improved the posture).
    pub score_delta: f64,
}

impl WhatIfReport {
    /// Whether the edited architecture has the better posture.
    #[must_use]
    pub fn is_improvement(&self) -> bool {
        self.score_delta < 0.0
    }
}

/// Evaluates `changes` against `model`: re-associates the edited model and
/// compares postures.
///
/// # Errors
///
/// Propagates [`apply_changes`] errors.
pub fn evaluate(
    model: &SystemModel,
    changes: &[ModelChange],
    engine: &SearchEngine,
    corpus: &Corpus,
    level: Fidelity,
    filters: &FilterPipeline,
) -> Result<WhatIfReport, ModelError> {
    let mut span = cpssec_obs::span!("whatif");
    span.add_items(changes.len() as u64);
    let edited = apply_changes(model, changes)?;
    let before_map = AssociationMap::build(model, engine, corpus, level, filters);
    let after_map = AssociationMap::build(&edited, engine, corpus, level, filters);
    let before = SystemPosture::compute(model, corpus, &before_map);
    let after = SystemPosture::compute(&edited, corpus, &after_map);
    let score_delta = after.total_score - before.total_score;
    Ok(WhatIfReport {
        diff: ModelDiff::between(model, &edited),
        before,
        after,
        score_delta,
    })
}

/// [`evaluate`] with a precomputed association of the baseline model: the
/// baseline is not re-associated at all, and the edited model is
/// re-associated *incrementally* ([`AssociationMap::rebuild`]) — only
/// components whose query text changed are re-queried. This is the hot
/// path behind the analysis service's what-if endpoint.
///
/// `prior` must have been built from `model` with the same `engine`,
/// `corpus`, and `filters`; the report is then identical to
/// [`evaluate`] at `prior.fidelity()`.
///
/// # Errors
///
/// Propagates [`apply_changes`] errors.
pub fn evaluate_with_prior(
    model: &SystemModel,
    changes: &[ModelChange],
    prior: &AssociationMap,
    engine: &SearchEngine,
    corpus: &Corpus,
    filters: &FilterPipeline,
) -> Result<WhatIfReport, ModelError> {
    let mut span = cpssec_obs::span!("whatif");
    span.add_items(changes.len() as u64);
    let edited = apply_changes(model, changes)?;
    let diff = ModelDiff::between(model, &edited);
    let after_map = AssociationMap::rebuild(prior, model, &edited, &diff, engine, corpus, filters);
    let before = SystemPosture::compute(model, corpus, prior);
    let after = SystemPosture::compute(&edited, corpus, &after_map);
    let score_delta = after.total_score - before.total_score;
    Ok(WhatIfReport {
        diff,
        before,
        after,
        score_delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpssec_attackdb::seed::seed_corpus;
    use cpssec_model::AttributeKind;
    use cpssec_scada::model::{names, scada_model};

    fn setup() -> (SystemModel, SearchEngine, Corpus) {
        let corpus = seed_corpus();
        let engine = SearchEngine::build(&corpus);
        (scada_model(), engine, corpus)
    }

    fn harden_workstation() -> Vec<ModelChange> {
        // Swap the Windows 7 workstation for a hardened thin client with no
        // LabVIEW install: fewer matching vectors.
        vec![
            ModelChange::ReplaceAttribute {
                component: names::WORKSTATION.into(),
                key: "os".into(),
                with: Attribute::new(AttributeKind::OperatingSystem, "hardened thin client image")
                    .at_fidelity(Fidelity::Implementation),
            },
            ModelChange::RemoveAttribute {
                component: names::WORKSTATION.into(),
                key: "software".into(),
                value: "Labview".into(),
            },
        ]
    }

    #[test]
    fn hardening_the_workstation_improves_posture() {
        let (model, engine, corpus) = setup();
        let report = evaluate(
            &model,
            &harden_workstation(),
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        )
        .unwrap();
        assert!(report.is_improvement(), "delta {}", report.score_delta);
        let ws_before = report.before.component(names::WORKSTATION).unwrap();
        let ws_after = report.after.component(names::WORKSTATION).unwrap();
        assert!(ws_after.total_vectors() < ws_before.total_vectors());
    }

    #[test]
    fn adding_risky_software_worsens_posture() {
        let (model, engine, corpus) = setup();
        let changes = vec![ModelChange::AddAttribute {
            component: names::TEMP_SENSOR.into(),
            attribute: Attribute::new(AttributeKind::OperatingSystem, "Windows 7")
                .at_fidelity(Fidelity::Implementation),
        }];
        let report = evaluate(
            &model,
            &changes,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        )
        .unwrap();
        assert!(!report.is_improvement());
        assert!(report.score_delta > 0.0);
    }

    #[test]
    fn diff_records_the_edit() {
        let (model, engine, corpus) = setup();
        let report = evaluate(
            &model,
            &harden_workstation(),
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        )
        .unwrap();
        assert_eq!(report.diff.changed_components.len(), 1);
        assert_eq!(report.diff.changed_components[0].name, names::WORKSTATION);
    }

    #[test]
    fn unknown_component_is_an_error() {
        let (model, engine, corpus) = setup();
        let changes = vec![ModelChange::RemoveAttribute {
            component: "ghost".into(),
            key: "os".into(),
            value: "x".into(),
        }];
        let err = evaluate(
            &model,
            &changes,
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        )
        .unwrap_err();
        assert_eq!(err, ModelError::UnknownComponent("ghost".into()));
    }

    #[test]
    fn prior_based_evaluation_matches_the_full_path() {
        let (model, engine, corpus) = setup();
        let filters = FilterPipeline::new();
        let prior =
            AssociationMap::build(&model, &engine, &corpus, Fidelity::Implementation, &filters);
        let full = evaluate(
            &model,
            &harden_workstation(),
            &engine,
            &corpus,
            Fidelity::Implementation,
            &filters,
        )
        .unwrap();
        let incremental = evaluate_with_prior(
            &model,
            &harden_workstation(),
            &prior,
            &engine,
            &corpus,
            &filters,
        )
        .unwrap();
        assert_eq!(incremental, full);
    }

    #[test]
    fn no_changes_is_a_zero_delta() {
        let (model, engine, corpus) = setup();
        let report = evaluate(
            &model,
            &[],
            &engine,
            &corpus,
            Fidelity::Implementation,
            &FilterPipeline::new(),
        )
        .unwrap();
        assert_eq!(report.score_delta, 0.0);
        assert!(report.diff.is_empty());
    }

    #[test]
    fn replace_attribute_removes_all_old_values() {
        let (model, _, _) = setup();
        let edited = apply_changes(
            &model,
            &[ModelChange::ReplaceAttribute {
                component: names::SIS.into(),
                key: "hardware".into(),
                with: Attribute::new(AttributeKind::Hardware, "custom safety PLC"),
            }],
        )
        .unwrap();
        let sis = edited.component_by_name(names::SIS).unwrap();
        let values: Vec<&str> = sis.attributes().get_all("hardware").collect();
        assert_eq!(values, ["custom safety PLC"]);
    }
}
